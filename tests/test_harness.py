"""Tests for the experiment harness (runner, figure drivers, reporting)."""

import numpy as np
import pytest

from repro.harness import (
    Geomean,
    ascii_table,
    bar,
    clear_cache,
    experiment_config,
    fig6_affine_potential,
    fig16_speedup,
    fig17_instruction_counts,
    fig18_coverage,
    fig19_affine_loads,
    fig20_mta_coverage,
    fig21_energy,
    run_benchmark,
    run_one,
    table2_classification,
)
from repro.workloads import COMPUTE_ORDER, MEMORY_ORDER

CFG = experiment_config(num_sms=2)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_run_one_caches(self):
        a = run_one("CP", "baseline", "tiny", CFG)
        b = run_one("CP", "baseline", "tiny", CFG)
        assert a is b

    def test_run_benchmark_cross_checks(self):
        results = run_benchmark("LIB", "tiny", CFG,
                                techniques=("baseline", "dac"))
        assert set(results) == {"baseline", "dac"}
        ref = results["baseline"].extra["memory_words"]
        assert np.array_equal(ref, results["dac"].extra["memory_words"])

    def test_geomean(self):
        g = Geomean()
        g.add(2.0)
        g.add(8.0)
        assert g.mean == pytest.approx(4.0)

    def test_geomean_empty_is_nan(self):
        assert np.isnan(Geomean().mean)

    def test_experiment_config_scales_l2(self):
        cfg = experiment_config(num_sms=3)
        assert cfg.num_sms == 3
        assert cfg.l2.size_bytes < 768 * 1024


class TestReport:
    def test_ascii_table(self):
        text = ascii_table(["a", "bb"], [["x", 1.5], ["y", 2.0]], "T")
        assert "T" in text and "1.500" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_bar(self):
        assert len(bar(2.0)) == 20
        assert bar(0.0) == ""
        assert len(bar(99.0)) == 20              # clamped


class TestFigureDrivers:
    """Each driver must produce the right keys and plausible ranges.
    Uses tiny scale on the 2-SM machine for speed."""

    def test_fig6(self):
        data = fig6_affine_potential()
        assert set(data) == set(COMPUTE_ORDER + MEMORY_ORDER + ["MEAN"])
        for values in data.values():
            assert set(values) == {"arithmetic", "memory", "branch"}
            assert all(0 <= v <= 1 for v in values.values())

    def test_fig16(self):
        data = fig16_speedup("tiny", CFG)
        assert set(data.per_bench) == set(COMPUTE_ORDER + MEMORY_ORDER)
        assert set(data.means) == {"compute", "memory", "all"}
        for entry in data.per_bench.values():
            for technique in ("cae", "mta", "dac"):
                assert 0.3 < entry[technique] < 10

    def test_fig17(self):
        data = fig17_instruction_counts("tiny", CFG)
        for abbr, v in data.items():
            if abbr == "MEAN":
                continue
            assert 0 < v["nonaffine"] <= 1.001
            assert v["affine"] >= 0
        assert data["MEAN"]["total"] <= 1.05

    def test_fig18(self):
        data = fig18_coverage("tiny", CFG)
        assert set(data) == set(COMPUTE_ORDER + ["MEAN"])
        for v in data.values():
            assert 0 <= v["dac"] <= 1 and 0 <= v["cae"] <= 1

    def test_fig19(self):
        data = fig19_affine_loads("tiny", CFG)
        assert set(data) == set(MEMORY_ORDER + ["MEAN"])
        assert all(0 <= v <= 1 for v in data.values())
        # Irregular benchmarks decouple few loads.
        assert data["BT"] < data["LIB"]

    def test_fig20(self):
        data = fig20_mta_coverage("tiny", CFG)
        assert all(0 <= v <= 1 for v in data.values())

    def test_fig21(self):
        data = fig21_energy("tiny", CFG)
        for abbr, v in data.items():
            if abbr == "MEAN":
                continue
            assert v["total"] > 0
            assert v["dac_overhead"] < 0.2

    def test_table2_keys(self):
        data = table2_classification("tiny", CFG)
        assert set(data) == set(COMPUTE_ORDER + MEMORY_ORDER)
        for v in data.values():
            assert v["measured"] in ("compute", "memory")
            assert v["perfect_speedup"] >= 0.9
