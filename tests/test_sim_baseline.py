"""End-to-end functional tests of the baseline timing simulator against
numpy references."""

import numpy as np
import pytest

from repro.isa import parse_kernel
from repro.sim import (
    DeadlockError,
    GPUConfig,
    GlobalMemory,
    KernelLaunch,
    simulate,
)

CFG = GPUConfig(num_sms=2)


def run(source, params, grid=(1, 1, 1), block=(64, 1, 1), shared_words=0,
        mem=None, config=CFG, name="t"):
    kernel = parse_kernel(source, name=name, params=tuple(params))
    mem = mem or GlobalMemory(1 << 20)
    launch = KernelLaunch(kernel, grid, block, params, mem, shared_words)
    result = simulate(launch, config)
    return result, mem


PROLOGUE = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
"""


class TestStraightLine:
    def test_vector_add(self):
        mem = GlobalMemory(1 << 20)
        a = mem.alloc_array(np.arange(128))
        b = mem.alloc_array(np.arange(128) * 2)
        c = mem.alloc(128)
        src = PROLOGUE + """
            mul r1, tid, 4;
            add aaddr, param.A, r1;
            ld.global av, [aaddr];
            add baddr, param.B, r1;
            ld.global bv, [baddr];
            add cv, av, bv;
            add caddr, param.C, r1;
            st.global [caddr], cv;
        """
        _, mem = run(src, dict(A=a, B=b, C=c), grid=(2, 1, 1), mem=mem)
        np.testing.assert_array_equal(mem.read_array(c, 128),
                                      np.arange(128) * 3)

    def test_special_registers(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(128)
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul v, %ctaid.x, 1000;
            add v, v, %tid.x;
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """
        _, mem = run(src, dict(out=out), grid=(2, 1, 1))
        got = mem.read_array(out, 128)
        expected = np.concatenate([np.arange(64), 1000 + np.arange(64)])
        np.testing.assert_array_equal(got, expected)

    def test_2d_thread_indices(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(128)
        src = """
            mul v, %tid.y, 100;
            add v, v, %tid.x;
            mul r1, %tid.y, %ntid.x;
            add r2, r1, %tid.x;
            mul r3, r2, 4;
            add oaddr, param.out, r3;
            st.global [oaddr], v;
        """
        _, mem = run(src, dict(out=out), block=(16, 8, 1))
        got = mem.read_array(out, 128).reshape(8, 16)
        expected = np.arange(16)[None, :] + 100 * np.arange(8)[:, None]
        np.testing.assert_array_equal(got, expected)


class TestControlFlow:
    def test_uniform_loop(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            mov acc, 0;
            mov i, 0;
        LOOP:
            add acc, acc, i;
            add i, i, 1;
            setp.lt p0, i, 10;
            @p0 bra LOOP;
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], acc;
        """
        _, mem = run(src, dict(out=out))
        np.testing.assert_array_equal(mem.read_array(out, 64),
                                      np.full(64, 45.0))

    def test_divergent_if_else(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            setp.lt p0, tid, 20;
            @!p0 bra ELSE;
            mov v, 111;
            bra DONE;
        ELSE:
            mov v, 222;
        DONE:
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """
        _, mem = run(src, dict(out=out))
        got = mem.read_array(out, 64)
        expected = np.where(np.arange(64) < 20, 111.0, 222.0)
        np.testing.assert_array_equal(got, expected)

    def test_divergent_loop_trip_counts(self):
        # Each thread iterates tid % 4 + 1 times.
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            rem r1, tid, 4;
            add bound, r1, 1;
            mov acc, 0;
            mov i, 0;
        LOOP:
            add acc, acc, 1;
            add i, i, 1;
            setp.lt p0, i, bound;
            @p0 bra LOOP;
            mul r2, tid, 4;
            add oaddr, param.out, r2;
            st.global [oaddr], acc;
        """
        _, mem = run(src, dict(out=out))
        expected = (np.arange(64) % 4 + 1).astype(float)
        np.testing.assert_array_equal(mem.read_array(out, 64), expected)

    def test_nested_divergence(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            mov v, 0;
            setp.lt p0, tid, 32;
            @!p0 bra OUTER_ELSE;
            setp.lt p1, tid, 16;
            @!p1 bra INNER_ELSE;
            mov v, 1;
            bra INNER_DONE;
        INNER_ELSE:
            mov v, 2;
        INNER_DONE:
            bra DONE;
        OUTER_ELSE:
            mov v, 3;
        DONE:
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """
        _, mem = run(src, dict(out=out))
        tid = np.arange(64)
        expected = np.where(tid < 16, 1, np.where(tid < 32, 2, 3)).astype(
            float)
        np.testing.assert_array_equal(mem.read_array(out, 64), expected)

    def test_guarded_execution_without_branch(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            mov v, 5;
            setp.ge p0, tid, 32;
            @p0 mov v, 9;
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """
        _, mem = run(src, dict(out=out))
        expected = np.where(np.arange(64) >= 32, 9.0, 5.0)
        np.testing.assert_array_equal(mem.read_array(out, 64), expected)


class TestSharedAndBarriers:
    def test_block_reduction(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(2)
        src = """
            mul r1, %tid.x, 4;
            st.shared [r1], %tid.x;
            bar.sync;
            mov k, 32;
        RED:
            setp.lt p1, %tid.x, k;
            add r2, %tid.x, k;
            mul r3, r2, 4;
            @p1 ld.shared a, [r3];
            @p1 ld.shared b, [r1];
            @p1 add c, a, b;
            @p1 st.shared [r1], c;
            bar.sync;
            shr k, k, 1;
            setp.ge p0, k, 1;
            @p0 bra RED;
            setp.eq p2, %tid.x, 0;
            mul r4, %ctaid.x, 4;
            add oaddr, param.out, r4;
            @p2 st.global [oaddr], c;
        """
        _, mem = run(src, dict(out=out), grid=(2, 1, 1), shared_words=64)
        np.testing.assert_array_equal(mem.read_array(out, 2),
                                      [2016.0, 2016.0])

    def test_atomics(self):
        mem = GlobalMemory(1 << 20)
        counter = mem.alloc(1)
        src = PROLOGUE + """
            atom.global [param.c], 1;
        """
        _, mem = run(src, dict(c=counter), grid=(2, 1, 1))
        assert mem.read_array(counter, 1)[0] == 128.0


class TestTimingSanity:
    def test_perfect_memory_faster(self):
        def build():
            mem = GlobalMemory(1 << 20)
            data = mem.alloc_array(np.arange(4096))
            out = mem.alloc(256)
            src = PROLOGUE + """
                mov acc, 0;
                mov i, 0;
            LOOP:
                mul r1, i, param.nb;
                mul r2, tid, 4;
                add r3, r1, r2;
                add a1, param.data, r3;
                ld.global v, [a1];
                add acc, acc, v;
                add i, i, 1;
                setp.lt p0, i, 16;
                @p0 bra LOOP;
                mul r4, tid, 4;
                add oaddr, param.out, r4;
                st.global [oaddr], acc;
            """
            kernel = parse_kernel(src, name="t", params=("data", "out", "nb"))
            return KernelLaunch(kernel, (2, 1, 1), (128, 1, 1),
                                dict(data=data, out=out, nb=1024), mem)

        slow = simulate(build(), CFG)
        fast = simulate(build(), CFG.with_perfect_memory())
        assert fast.cycles < slow.cycles

    def test_more_parallelism_does_not_slow_down(self):
        def build(blocks):
            mem = GlobalMemory(1 << 20)
            out = mem.alloc(blocks * 64)
            src = PROLOGUE + """
                mul v, tid, 2;
                mul r1, tid, 4;
                add oaddr, param.out, r1;
                st.global [oaddr], v;
            """
            kernel = parse_kernel(src, name="t", params=("out",))
            return KernelLaunch(kernel, (blocks, 1, 1), (64, 1, 1),
                                dict(out=out), mem)

        one = simulate(build(1), CFG)
        many = simulate(build(8), CFG)
        # 8x the work should take far less than 8x the time.
        assert many.cycles < one.cycles * 6

    def test_lrr_scheduler_works(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], tid;
        """
        kernel = parse_kernel(src, name="t", params=("out",))
        launch = KernelLaunch(kernel, (1, 1, 1), (64, 1, 1),
                              dict(out=out), mem)
        result = simulate(launch, GPUConfig(num_sms=1, scheduler="lrr"))
        np.testing.assert_array_equal(mem.read_array(out, 64),
                                      np.arange(64))

    def test_max_cycles_guard(self):
        import dataclasses
        mem = GlobalMemory(1 << 20)
        src = """
        LOOP:
            mov r0, 1;
            bra LOOP;
        """
        kernel = parse_kernel(src, name="t", params=())
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1), {}, mem)
        config = dataclasses.replace(CFG, max_cycles=2000)
        with pytest.raises(DeadlockError):
            simulate(launch, config)

    def test_stats_populated(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        src = PROLOGUE + """
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], tid;
        """
        result, _ = run(src, dict(out=out))
        stats = result.stats
        assert stats["warp_instructions"] == 2 * 6    # incl. exit
        assert stats["thread_instructions"] == 2 * 6 * 32
        assert stats["gmem_stores"] == 2
        assert result.cycles > 0
