"""Property tests: symexec closed forms, concretized at the launch's
(tid, ctaid, param) points, must match the functional executor on
randomly generated straight-line and single-loop kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.symexec import concretize, symexec
from repro.isa import KernelBuilder
from repro.sim import GlobalMemory, KernelLaunch
from repro.sim.functional import run_functional

#: (opcode tag, immediate range) — immediates stay small so value chains
#: cannot overflow 32-bit arithmetic even six operations deep.
_OPS = ("add", "sub", "mul_imm", "mad", "min", "max", "shl", "rem", "div")

_op = st.tuples(st.sampled_from(_OPS),
                st.integers(0, 7),       # first operand pick
                st.integers(0, 7),       # second operand pick
                st.integers(1, 8))       # immediate

_settings = settings(max_examples=25, deadline=None)


def _apply(kb, vals, op):
    name, i1, i2, imm = op
    a = vals[i1 % len(vals)]
    b = vals[i2 % len(vals)]
    if name == "add":
        return kb.add(a, b)
    if name == "sub":
        return kb.sub(a, b)
    if name == "mul_imm":
        return kb.mul(a, imm)
    if name == "mad":
        return kb.mad(a, imm, b)
    if name == "min":
        return kb.min(a, b)
    if name == "max":
        return kb.max(a, b)
    if name == "shl":
        return kb.shl(a, imm % 4)
    if name == "rem":
        return kb.rem(a, imm)
    return kb.div(a, imm)


def _lane_env(launch):
    bx = launch.block_dim[0]
    gx = launch.grid_dim[0]
    env = {
        "tid.x": np.tile(np.arange(bx), gx),
        "ctaid.x": np.repeat(np.arange(gx), bx),
        "ntid.x": bx,
        "nctaid.x": gx,
    }
    for name, value in launch.params.items():
        env[f"param:{name}"] = value
    return env


def _run_and_compare(kernel, params):
    memory = GlobalMemory(4096)
    memory.words[:] = (5 * np.arange(len(memory.words),
                                     dtype=memory.words.dtype)) % 89
    launch = KernelLaunch(kernel=kernel, grid_dim=(2, 1, 1),
                          block_dim=(16, 1, 1), params=params,
                          memory=memory)
    expected = launch.memory.words.copy()

    sym = symexec(kernel)
    env = _lane_env(launch)
    store_idx, site = next(
        (i, s) for i, s in sym.sites.items() if s.kind == "store")
    addr = np.broadcast_to(
        concretize(site.value, env), env["tid.x"].shape).astype(np.int64)
    value = np.broadcast_to(
        concretize(sym.value_at(store_idx, site.inst.srcs[0]), env),
        env["tid.x"].shape)
    expected[addr // 4] = value

    run_functional(launch)
    np.testing.assert_array_equal(launch.memory.words, expected)


@_settings
@given(ops=st.lists(_op, min_size=0, max_size=6), n=st.integers(0, 40))
def test_straightline_kernels(ops, n):
    kb = KernelBuilder("propline", params=("O", "n"))
    gtid = kb.global_tid_x()
    vals = [gtid, kb.mov(3), kb.param("n")]
    for op in ops:
        vals.append(_apply(kb, vals, op))
    kb.store(kb.mad(gtid, 4, kb.param("O")), vals[-1])
    _run_and_compare(kb.build(), {"O": 2048, "n": n})


@_settings
@given(ops=st.lists(_op, min_size=0, max_size=3),
       bound=st.integers(1, 5), stride=st.integers(0, 4),
       n=st.integers(0, 40))
def test_single_loop_kernels(ops, bound, stride, n):
    kb = KernelBuilder("proploop", params=("O", "n"))
    gtid = kb.global_tid_x()
    vals = [gtid, kb.mov(2), kb.param("n")]
    acc = kb.mov(0)
    i = kb.loop_counter(bound)
    kb.assign(acc, kb.add(acc, kb.mad(i, stride, gtid)))
    kb.end_loop()
    vals.append(acc)
    for op in ops:
        vals.append(_apply(kb, vals, op))
    kb.store(kb.mad(gtid, 4, kb.param("O")), vals[-1])
    _run_and_compare(kb.build(), {"O": 2048, "n": n})


@_settings
@given(bound_mod=st.integers(1, 4), step=st.integers(1, 3))
def test_divergent_trip_count_kernels(bound_mod, step):
    kb = KernelBuilder("propragged", params=("O",))
    gtid = kb.global_tid_x()
    bound = kb.add(kb.rem(gtid, bound_mod), 1)
    acc = kb.mov(0)
    kb.loop_counter(bound)
    kb.assign(acc, kb.add(acc, step))
    kb.end_loop()
    kb.store(kb.mad(gtid, 4, kb.param("O")), acc)
    _run_and_compare(kb.build(), {"O": 2048})
