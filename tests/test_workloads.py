"""Tests for the benchmark registry and the 29 workloads (Table 2)."""

import numpy as np
import pytest

from repro.compiler.decouple import decouple
from repro.workloads import (
    ALL_BENCHMARKS,
    BY_ABBR,
    COMPUTE_ORDER,
    MEMORY_ORDER,
    by_category,
    get,
    table2,
)


class TestRegistry:
    def test_twenty_nine_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 29

    def test_category_split_matches_table2(self):
        assert len(by_category("compute")) == 11
        assert len(by_category("memory")) == 18

    def test_orders_cover_everything(self):
        assert sorted(COMPUTE_ORDER + MEMORY_ORDER) == sorted(BY_ABBR)

    def test_get_is_case_insensitive(self):
        assert get("bfs").abbr == "BFS"
        with pytest.raises(KeyError):
            get("NOPE")

    def test_bad_category(self):
        with pytest.raises(ValueError):
            by_category("weird")

    def test_table2_renders(self):
        text = table2()
        assert "Compute Intensive" in text and "Memory Intensive" in text
        for b in ALL_BENCHMARKS:
            assert b.abbr in text

    def test_suites_are_papers(self):
        assert {b.suite for b in ALL_BENCHMARKS} <= {"G", "R", "C", "P"}


class TestLaunchConstruction:
    @pytest.mark.parametrize("abbr", sorted(BY_ABBR))
    def test_tiny_launch_builds(self, abbr):
        launch = get(abbr).launch("tiny")
        assert launch.num_blocks >= 1
        assert 32 <= launch.threads_per_block <= 1024
        assert launch.memory.size_bytes > 0

    @pytest.mark.parametrize("abbr", sorted(BY_ABBR))
    def test_launches_are_fresh(self, abbr):
        a = get(abbr).launch("tiny")
        b = get(abbr).launch("tiny")
        assert a.memory is not b.memory
        np.testing.assert_array_equal(a.memory.words, b.memory.words)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get("CP").launch("huge")


class TestKernelStructure:
    @pytest.mark.parametrize("abbr", sorted(BY_ABBR))
    def test_kernel_decouples_cleanly(self, abbr):
        """The decoupler must run without error on every benchmark and
        produce paired streams when it decouples at all."""
        program = decouple(get(abbr).launch("tiny").kernel)
        if program.is_decoupled:
            assert len(program.affine) > 0
            assert program.nonaffine.instructions[-1].is_exit

    def test_irregular_benchmarks_decouple_little(self):
        """BFS and BT are the paper's low-coverage cases (§5.5)."""
        for abbr in ("BFS", "BT"):
            program = decouple(get(abbr).launch("tiny").kernel)
            total = len(program.original)
            assert program.removed_instructions <= total * 0.35

    def test_streaming_benchmarks_decouple_heavily(self):
        for abbr in ("LIB", "MT", "KM"):
            program = decouple(get(abbr).launch("tiny").kernel)
            assert program.removed_instructions >= len(program.original) * 0.3

    def test_mt_exercises_mod_tuples(self):
        from repro.isa import Opcode
        kernel = get("MT").launch("tiny").kernel
        assert any(i.opcode is Opcode.REM for i in kernel.instructions)
        program = decouple(kernel)
        assert program.decoupled_loads >= 1

    def test_hs_pf_exercise_clamps(self):
        from repro.isa import Opcode
        for abbr in ("HS", "PF"):
            kernel = get(abbr).launch("tiny").kernel
            ops = {i.opcode for i in kernel.instructions}
            assert Opcode.MIN in ops or Opcode.MAX in ops

    def test_bp_uses_16_wide_blocks(self):
        launch = get("BP").launch("paper")
        assert launch.block_dim[0] == 16      # CAE's weak spot (§5.4)

    def test_barrier_benchmarks(self):
        for abbr in ("BP", "HI", "SP", "PF"):
            kernel = get(abbr).launch("tiny").kernel
            assert kernel.has_barrier()
