"""Chaos campaign against the experiment daemon (acceptance criterion).

Every scenario here ends the same way: the full grid is materialized,
journal-replayed cells are not re-simulated, and the results are
bit-identical to a serial reference run.  The scenarios:

* a worker SIGKILL'd mid-cell (watchdog respawns, cell retried);
* the daemon SIGKILL'd mid-grid, then restarted (journal replay);
* injected hangs — bounded (retry succeeds) and unbounded (circuit
  breaker quarantines with partial results);
* two concurrent clients sharing one cache (each cell simulated once,
  no corrupt entries);
* ``run_grid`` routing through the daemon transparently, and falling
  back to the local path when no daemon answers.

Chaos is injected via the ``REPRO_CHAOS*`` environment variables
(:mod:`repro.faults.chaos`) passed to the daemon subprocess only — the
pytest process itself simulates chaos-free serial references.  The
``REPRO_CHAOS_LOG`` census proves the exactly-once claims: cache and
journal hits never log, so every line is a genuine re-simulation.

Socket paths live under a short ``/tmp`` scratch dir, not pytest's
``tmp_path`` — ``AF_UNIX`` paths are capped at ~107 bytes.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import chaos
from repro.harness import clear_cache, configure_cache, experiment_config
from repro.harness import runner
from repro.harness.client import (
    SOCKET_ENV,
    ServiceClient,
    try_connect,
)
from repro.harness.parallel import GridReport, run_grid
from repro.service.protocol import job_digest

pytestmark = pytest.mark.resilience

CFG = experiment_config(num_sms=2)
SCALE = "tiny"
SRC = str(Path(__file__).resolve().parent.parent / "src")

GRID = [("CP", "baseline", CFG), ("CP", "dac", CFG),
        ("ST", "baseline", CFG), ("ST", "dac", CFG)]


@pytest.fixture(autouse=True)
def _no_disk_cache():
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()


@pytest.fixture
def svc():
    root = Path(tempfile.mkdtemp(prefix="rsvc-", dir="/tmp"))
    box = SimpleNamespace(
        root=root,
        sock=root / "d.sock",
        state=root / "state",
        cache=root / "cache",
        log=root / "sim.log",
        tokens=root / "tokens",
        procs=[],
    )
    yield box
    for proc in box.procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    shutil.rmtree(root, ignore_errors=True)


def start_daemon(svc, *, workers=2, timeout=60.0, strikes=2,
                 chaos_spec=None, queue_limit=64):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CHAOS_LOG"] = str(svc.log)
    env.pop("REPRO_CHAOS", None)
    if chaos_spec:
        env["REPRO_CHAOS"] = chaos_spec
        env["REPRO_CHAOS_DIR"] = str(svc.tokens)
    stderr = open(svc.root / "daemon.log", "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(svc.sock), "--state", str(svc.state),
         "--cache-dir", str(svc.cache), "--workers", str(workers),
         "--timeout", str(timeout), "--strikes", str(strikes),
         "--queue-limit", str(queue_limit)],
        env=env, stdout=stderr, stderr=stderr)
    stderr.close()
    svc.procs.append(proc)
    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited at startup (rc={proc.returncode}): "
                f"{(svc.root / 'daemon.log').read_text()}")
        client = try_connect(svc.sock, timeout=10.0)
        if client is not None:
            client.close()
            return proc
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("daemon never answered a ping")


def stop_daemon(svc, proc) -> int:
    """Graceful shutdown via the wire, falling back to SIGKILL."""
    try:
        with ServiceClient(svc.sock, timeout=30.0) as client:
            client.shutdown()
    except Exception:
        pass
    try:
        return proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


def serial_reference(tasks):
    """Chaos-free, cache-free in-process runs — the bit-identity oracle."""
    clear_cache()
    ref = {}
    for abbr, technique, config in tasks:
        ref[(abbr, technique)] = runner.run_one(
            abbr, technique, SCALE, config, use_cache=False)
    clear_cache()
    return ref


def assert_bit_identical(result, ref):
    assert result.cycles == ref.cycles
    assert result.stats.as_dict() == ref.stats.as_dict()
    assert np.array_equal(result.extra["memory_words"],
                          ref.extra["memory_words"])


def sim_counts(svc) -> Counter:
    return Counter(chaos.read_log(svc.log))


# ---------------------------------------------------------------------------
# Scenario 1: worker SIGKILL mid-cell


def test_worker_sigkill_mid_cell_grid_completes(svc):
    # A per-cell delay widens the window so the kill lands mid-cell.
    proc = start_daemon(svc, workers=2, chaos_spec="delay:*/*:0.75")
    victim = None
    with ServiceClient(svc.sock) as client:
        client.submit(GRID, SCALE)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and victim is None:
            for worker in client.status()["workers"]:
                if worker["busy"] is not None and worker["alive"]:
                    victim = worker
                    break
            time.sleep(0.02)
        assert victim is not None, "no worker ever went busy"
        os.kill(victim["pid"], signal.SIGKILL)

        results, quarantined, failures = client.run_tasks(GRID, SCALE)
        assert quarantined == [] and failures == {}
        assert set(results) == set(GRID)
        status = client.status()
        assert sum(w["respawns"] for w in status["workers"]) >= 1
        assert all(w["alive"] for w in status["workers"])

    ref = serial_reference(GRID)
    for (abbr, technique, _cfg), result in results.items():
        assert_bit_identical(result, ref[(abbr, technique)])

    # Every cell simulated at least once; only the killed cell may have
    # needed a second attempt.
    counts = sim_counts(svc)
    assert {key for key in counts} == {(a, t) for a, t, _ in GRID}
    assert sum(counts.values()) <= len(GRID) + 1
    assert stop_daemon(svc, proc) == 0


# ---------------------------------------------------------------------------
# Scenario 2: daemon SIGKILL mid-grid, restart, journal replay


def test_daemon_sigkill_and_restart_replays_journal(svc):
    grid = GRID + [("HI", "baseline", CFG), ("HI", "dac", CFG)]
    digests = {job_digest(task, SCALE): task for task in grid}

    proc1 = start_daemon(svc, workers=2, chaos_spec="delay:*/*:0.3")
    with ServiceClient(svc.sock) as client:
        client.submit(grid, SCALE)
        deadline = time.monotonic() + 60.0
        status = None
        # report.completed increments strictly after the journal fsync
        # (unlike the supervisor's own counts), so >= 2 here guarantees
        # at least two durable "done" records survive the SIGKILL.
        while time.monotonic() < deadline:
            status = client.status()
            if status["report"]["completed"] >= 2:
                break
            time.sleep(0.05)
        assert status is not None and status["report"]["completed"] >= 2
        worker_pids = [w["pid"] for w in status["workers"] if w["alive"]]
    proc1.kill()                       # SIGKILL: no drain, no cleanup
    proc1.wait()

    # Orphaned workers finish their in-flight cell (into the shared disk
    # cache) and exit on the broken pipe; wait so generation 2 observes a
    # quiet world and the exactly-once census below is deterministic.
    deadline = time.monotonic() + 60.0
    alive = list(worker_pids)
    while alive and time.monotonic() < deadline:
        survivors = []
        for pid in alive:
            try:
                os.kill(pid, 0)
                survivors.append(pid)
            except (ProcessLookupError, PermissionError):
                pass
        alive = survivors
        if alive:
            time.sleep(0.1)
    assert not alive, f"orphan workers survived: {alive}"

    proc2 = start_daemon(svc, workers=2)       # same journal, no chaos
    with ServiceClient(svc.sock) as client:
        results, quarantined, failures = client.run_tasks(grid, SCALE)
        assert quarantined == [] and failures == {}
        assert set(results) == set(grid)
        report = GridReport.from_dict(client.status()["report"])
        assert report.resumed >= 2     # journal replay answered instantly

    ref = serial_reference(grid)
    for (abbr, technique, _cfg), result in results.items():
        assert_bit_identical(result, ref[(abbr, technique)])

    # The census: across both daemon generations, every cell was
    # simulated exactly once — journal/cache replay, never re-work.
    counts = sim_counts(svc)
    assert counts == Counter({(a, t): 1 for a, t, _ in grid})
    assert len(digests) == len(grid)
    assert stop_daemon(svc, proc2) == 0


# ---------------------------------------------------------------------------
# Scenario 3: injected hangs — bounded retry, then breaker quarantine


def test_single_hang_is_killed_and_retried_to_completion(svc):
    grid = [("CP", "baseline", CFG), ("ST", "baseline", CFG),
            ("ST", "dac", CFG)]
    proc = start_daemon(svc, workers=2, timeout=2.0, strikes=3,
                        chaos_spec="hang:ST/dac:60@1")
    with ServiceClient(svc.sock) as client:
        results, quarantined, failures = client.run_tasks(grid, SCALE)
        assert quarantined == [] and failures == {}
        assert set(results) == set(grid)
        status = client.status()
        report = GridReport.from_dict(status["report"])
        assert report.timeouts >= 1 and report.retries >= 1
        assert sum(w["respawns"] for w in status["workers"]) >= 1

    ref = serial_reference(grid)
    for (abbr, technique, _cfg), result in results.items():
        assert_bit_identical(result, ref[(abbr, technique)])
    assert stop_daemon(svc, proc) == 0


def test_repeated_hang_trips_breaker_with_partial_results(svc):
    grid = [("CP", "baseline", CFG), ("ST", "baseline", CFG),
            ("HI", "dac", CFG)]
    proc = start_daemon(svc, workers=2, timeout=1.5, strikes=2,
                        chaos_spec="hang:HI/dac:60")    # unbounded
    with ServiceClient(svc.sock) as client:
        results, quarantined, failures = client.run_tasks(
            grid, SCALE, wait_timeout=5.0)
        assert {t[:2] for t in results} == {("CP", "baseline"),
                                            ("ST", "baseline")}
        assert [t[:2] for t in quarantined] == [("HI", "dac")]
        reason = failures[("HI", "dac", CFG)]
        assert "circuit breaker" in reason and "job_timeout" in reason
        report = GridReport.from_dict(client.status()["report"])
        assert [t[:2] for t in report.quarantined] == [("HI", "dac")]
        assert report.timeouts >= 2    # one per strike

    ref = serial_reference([t for t in grid if t[0] != "HI"])
    for (abbr, technique, _cfg), result in results.items():
        assert_bit_identical(result, ref[(abbr, technique)])
    assert stop_daemon(svc, proc) == 0


# ---------------------------------------------------------------------------
# Scenario 4: two concurrent clients, one cache


def test_two_clients_share_one_cache_without_duplicates(svc):
    proc = start_daemon(svc, workers=2)
    outcomes = {}

    def one_client(name):
        with ServiceClient(svc.sock) as client:
            outcomes[name] = client.run_tasks(GRID, SCALE)

    threads = [threading.Thread(target=one_client, args=(n,))
               for n in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert set(outcomes) == {"a", "b"}

    ref = serial_reference(GRID)
    for name in ("a", "b"):
        results, quarantined, failures = outcomes[name]
        assert quarantined == [] and failures == {}
        assert set(results) == set(GRID)
        for (abbr, technique, _cfg), result in results.items():
            assert_bit_identical(result, ref[(abbr, technique)])

    # Content-digest dedup: the double submission cost zero extra work.
    assert sim_counts(svc) == Counter({(a, t): 1 for a, t, _ in GRID})
    assert not list(svc.cache.glob("*.corrupt"))
    assert stop_daemon(svc, proc) == 0


# ---------------------------------------------------------------------------
# Scenario 5: transparent run_grid routing and local fallback


def test_run_grid_routes_through_daemon_transparently(svc, monkeypatch):
    proc = start_daemon(svc, workers=2)
    monkeypatch.setenv(SOCKET_ENV, str(svc.sock))

    def boom(*args, **kwargs):
        raise AssertionError("service routing must not simulate locally")

    monkeypatch.setattr(runner, "simulate_launch", boom)
    report = GridReport()
    results = run_grid(GRID, SCALE, jobs=4, report=report)
    assert set(results) == set(GRID)
    assert report.completed == len(GRID)

    # The daemon's results land in the local memo cache: a serial
    # follow-up is pure hits even with simulation booby-trapped.
    again = runner.run_one("CP", "baseline", SCALE, CFG)
    assert again.cycles == results[("CP", "baseline", CFG)].cycles
    assert stop_daemon(svc, proc) == 0


def test_run_grid_falls_back_without_a_daemon(svc, monkeypatch):
    monkeypatch.setenv(SOCKET_ENV, str(svc.root / "absent.sock"))
    report = GridReport()
    results = run_grid(GRID[:2], SCALE, jobs=1, use_cache=False,
                       report=report)
    assert set(results) == set(GRID[:2])
    assert report.completed == 2

    ref = serial_reference(GRID[:2])
    for (abbr, technique, _cfg), result in results.items():
        assert_bit_identical(result, ref[(abbr, technique)])


# ---------------------------------------------------------------------------
# Backpressure: bounded queue answers busy, client backoff recovers


def test_bounded_queue_reports_busy_and_recovers(svc):
    proc = start_daemon(svc, workers=1, queue_limit=2,
                        chaos_spec="delay:*/*:0.5")
    with ServiceClient(svc.sock) as client:
        replies = client.submit(GRID, SCALE)
        states = Counter(reply["state"] for reply in replies)
        assert states["queued"] == 2          # bounded admission
        assert states["busy"] == 2
        busy = [r for r in replies if r["state"] == "busy"]
        assert all(r["retry_after"] > 0 for r in busy)

        # The client-side backoff loop drains the rest through the same
        # bounded queue.
        results, quarantined, failures = client.run_tasks(GRID, SCALE)
        assert quarantined == [] and failures == {}
        assert set(results) == set(GRID)
    assert stop_daemon(svc, proc) == 0
