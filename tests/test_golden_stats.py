"""Golden-Stats regression matrix: bit-identity against committed fixtures.

Every cell of the perf harness's golden matrix (six workloads x four
techniques, tiny scale) plus one traced and one fault-injected run must
reproduce the committed Stats under ``tests/goldens/stats`` exactly.  A
diff here means the timing semantics changed — that is never a refactor,
and the goldens must only be regenerated (tests/goldens/generate.py) for
an intentional model change that the commit message calls out.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec, RuntimeCheckers
from repro.harness.bench import (
    FAULT_GOLDEN,
    GOLDEN_MATRIX,
    TRACED_GOLDEN,
    diff_stats,
    golden_name,
    load_golden,
    run_cell,
)
from repro.harness.runner import experiment_config
from repro.trace import STALL_REASONS, stall_buckets

CONFIG = experiment_config()

#: Both warp datapaths must reproduce the *same* committed goldens: the
#: goldens are a property of the timing model, and the vector datapath is
#: required to be bit-identical to the scalar oracle.
DATAPATHS = ("scalar", "vector")

#: Likewise both issue engines: the batched engine is a pure
#: reformulation of the walk's timing semantics.
ENGINES = ("walk", "batched")


def _assert_matches_golden(result, name):
    golden = load_golden(name)
    assert golden is not None, (
        f"missing golden {name!r}; run tests/goldens/generate.py")
    diff = diff_stats(result.stats.as_dict(), golden)
    assert not diff, "Stats diverged from golden:\n" + "\n".join(diff)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("datapath", DATAPATHS)
@pytest.mark.parametrize("abbr,technique,scale", GOLDEN_MATRIX,
                         ids=[golden_name(*cell) for cell in GOLDEN_MATRIX])
def test_matrix_cell_matches_golden(abbr, technique, scale, datapath,
                                    engine):
    result = run_cell(abbr, technique, scale,
                      CONFIG.with_datapath(datapath)
                      .with_issue_engine(engine))
    _assert_matches_golden(result, golden_name(abbr, technique, scale))


@pytest.mark.parametrize("datapath", DATAPATHS)
def test_traced_run_matches_golden_and_keeps_stall_invariant(datapath):
    """Tracing must not perturb timing, and the stall-attribution buckets
    must still sum to exactly one entry per scheduler slot per cycle."""
    abbr, technique, scale = TRACED_GOLDEN
    result = run_cell(abbr, technique, scale,
                      CONFIG.with_datapath(datapath), trace=True)
    _assert_matches_golden(
        result, "traced_" + golden_name(abbr, technique, scale))
    buckets = stall_buckets(result.stats)
    slots = result.cycles * CONFIG.num_sms * CONFIG.num_schedulers
    assert sum(buckets.values()) == slots
    assert set(buckets) <= set(STALL_REASONS)


def test_traced_equals_untraced():
    """The tracer is pure observation: same cell with and without tracing
    must produce identical Stats (modulo the trace-only ``issue.*``
    stall-attribution buckets, which only a tracing run records)."""
    abbr, technique, scale = TRACED_GOLDEN
    traced = run_cell(abbr, technique, scale, CONFIG, trace=True).stats
    plain = run_cell(abbr, technique, scale, CONFIG).stats
    traced_dict = {k: v for k, v in traced.as_dict().items()
                   if not k.startswith("issue.")}
    plain_dict = {k: v for k, v in plain.as_dict().items()
                  if not k.startswith("issue.")}
    diff = diff_stats(traced_dict, plain_dict)
    assert not diff, "tracing changed timing:\n" + "\n".join(diff)


@pytest.mark.parametrize("datapath", DATAPATHS)
def test_fault_injected_run_matches_golden(datapath):
    abbr, technique, scale = FAULT_GOLDEN
    plan = FaultPlan(specs=(FaultSpec("expand_delay", 0, 4),
                            FaultSpec("dram_delay", 0, 8)))
    result = run_cell(abbr, technique, scale,
                      CONFIG.with_datapath(datapath),
                      faults=FaultInjector(plan), checkers=RuntimeCheckers())
    _assert_matches_golden(
        result, "fault_" + golden_name(abbr, technique, scale))
