"""Closed-form numpy references for selected workloads.

The cross-technique tests prove the four machines agree with each other;
these prove they compute the *right thing*, against independent numpy
implementations of the kernels' math.
"""

import numpy as np

from repro.sim import GPUConfig, run_functional
from repro.workloads import get

CFG = GPUConfig(num_sms=2)


def _inputs(launch, name, count):
    addr = int(launch.params[name])
    return launch.memory.read_array(addr, count)


def _run(abbr):
    launch = get(abbr).launch("tiny")
    before = {k: v for k, v in launch.params.items()}
    snapshot = launch.memory.words.copy()
    run_functional(launch)
    return launch, before, snapshot


class TestClosedForms:
    def test_lud_row_elimination(self):
        launch, params, before = _run("LUD")
        n = launch.num_blocks * launch.threads_per_block
        cols = int(params["cols"])
        pivot = before[int(params["pivot"]) // 4:
                       int(params["pivot"]) // 4 + cols]
        mat = before[int(params["mat"]) // 4:
                     int(params["mat"]) // 4 + n * cols].reshape(n, cols)
        expected = -(mat * pivot).sum(axis=1)
        got = launch.memory.read_array(int(params["out"]), n)
        np.testing.assert_allclose(got, expected)

    def test_sp_dot_product(self):
        launch, params, before = _run("SP")
        blocks = launch.num_blocks
        threads = launch.threads_per_block
        n = blocks * threads
        chunks = int(params["chunks"])
        a = before[int(params["A"]) // 4:int(params["A"]) // 4 + n * chunks]
        b = before[int(params["B"]) // 4:int(params["B"]) // 4 + n * chunks]
        per_thread = (a.reshape(chunks, n) * b.reshape(chunks, n)).sum(0)
        expected = per_thread.reshape(blocks, threads).sum(1)
        got = launch.memory.read_array(int(params["out"]), blocks)
        np.testing.assert_allclose(got, expected)

    def test_km_argmin(self):
        launch, params, before = _run("KM")
        n = launch.num_blocks * launch.threads_per_block
        nfeat, ncl = int(params["nfeat"]), int(params["nclusters"])
        feat = before[int(params["feat"]) // 4:
                      int(params["feat"]) // 4 + n * nfeat] \
            .reshape(nfeat, n)
        cent = before[int(params["cent"]) // 4:
                      int(params["cent"]) // 4 + ncl * nfeat] \
            .reshape(ncl, nfeat)
        dists = ((feat.T[:, None, :] - cent[None, :, :]) ** 2).sum(axis=2)
        expected = np.argmin(dists, axis=1).astype(float)
        got = launch.memory.read_array(int(params["assign"]), n)
        np.testing.assert_array_equal(got, expected)

    def test_sc_min_distance(self):
        launch, params, before = _run("SC")
        n = launch.num_blocks * launch.threads_per_block
        ncenters = int(params["ncenters"])
        pts = before[int(params["pts"]) // 4:
                     int(params["pts"]) // 4 + n * 2 * ncenters]
        centers = before[int(params["centers"]) // 4:
                         int(params["centers"]) // 4 + ncenters * 2] \
            .reshape(ncenters, 2)
        best = np.full(n, 1e6)
        for c in range(ncenters):
            px = pts[c * n * 2 + np.arange(n) * 2]
            py = pts[c * n * 2 + np.arange(n) * 2 + 1]
            d2 = (px - centers[c, 0]) ** 2 + (py - centers[c, 1]) ** 2
            best = np.minimum(best, d2)
        got = launch.memory.read_array(int(params["out"]), n)
        np.testing.assert_allclose(got, best)

    def test_img_histogram(self):
        launch, params, before = _run("IMG")
        n = launch.num_blocks * launch.threads_per_block
        iters = int(params["iters"])
        pix = before[int(params["pix"]) // 4:
                     int(params["pix"]) // 4 + n * iters]
        expected = np.bincount(pix.astype(np.int64) & 63, minlength=64)
        got = launch.memory.read_array(int(params["hist"]), 64)
        np.testing.assert_array_equal(got, expected)

    def test_cs_convolution(self):
        launch, params, before = _run("CS")
        n = launch.num_blocks * launch.threads_per_block
        taps, rows = int(params["taps"]), int(params["rows"])
        border = int(params["border"])
        row_words = int(params["rowbytes"]) // 4
        inp = before[int(params["inp"]) // 4:
                     int(params["inp"]) // 4 + row_words * rows]
        coef = before[int(params["coef"]) // 4:
                      int(params["coef"]) // 4 + taps]
        tid = np.arange(n)
        start = np.where(tid < border, 0, tid)
        expected = np.zeros(n)
        for r in range(rows):
            for k in range(taps):
                expected += coef[k] * inp[r * row_words + start + k]
        got = launch.memory.read_array(int(params["out"]), n)
        np.testing.assert_allclose(got, expected)

    def test_bfs_frontier_update(self):
        launch, params, before = _run("BFS")
        n = launch.num_blocks * launch.threads_per_block
        degree = int(params["degree"])
        cur = params["cur"]
        levels0 = before[int(params["levels"]) // 4:
                         int(params["levels"]) // 4 + n]
        edges = before[int(params["edges"]) // 4:
                       int(params["edges"]) // 4 + n * degree] \
            .astype(np.int64).reshape(n, degree)
        expected = levels0.copy()
        frontier = np.where(levels0 == cur)[0]
        for node in frontier:
            for nb in edges[node]:
                if expected[nb] > cur + 1:
                    expected[nb] = cur + 1
        got = launch.memory.read_array(int(params["levels"]), n)
        np.testing.assert_array_equal(got, expected)
