"""Unit and differential tests for the symbolic evaluator
(:mod:`repro.analysis.symexec`)."""

import numpy as np
import pytest

from repro.analysis.symexec import (
    NotConcretizable,
    Pred,
    concretize,
    const,
    symbol,
    symbols_of,
    symexec,
    uncertifiable_kinds,
)
from repro.isa import CmpOp, KernelBuilder
from repro.sim import GlobalMemory, KernelLaunch
from repro.sim.functional import run_functional


def _gtid():
    return symbol("tid.x") + symbol("ctaid.x") * symbol("ntid.x")


def _lane_env(launch):
    """Symbol environment with one entry per lane of a 1-D launch."""
    bx = launch.block_dim[0]
    gx = launch.grid_dim[0]
    env = {
        "tid.x": np.tile(np.arange(bx), gx),
        "ctaid.x": np.repeat(np.arange(gx), bx),
        "ntid.x": bx,
        "nctaid.x": gx,
    }
    for name, value in launch.params.items():
        env[f"param:{name}"] = value
    return env


def _launch(kernel, params, grid=2, block=16):
    memory = GlobalMemory(4096)
    memory.words[:] = (13 * np.arange(len(memory.words),
                                      dtype=memory.words.dtype)) % 97
    return KernelLaunch(kernel=kernel, grid_dim=(grid, 1, 1),
                        block_dim=(block, 1, 1), params=params,
                        memory=memory)


# ---------------------------------------------------------------------------
# Expression domain.
# ---------------------------------------------------------------------------

class TestDomain:
    def test_polynomial_canonicalization(self):
        a, b = symbol("a"), symbol("b")
        assert a + b == b + a
        assert a * b == b * a
        assert (a + b) * (a + b) == a * a + const(2) * a * b + b * b
        assert a - a == const(0)
        assert const(3) * a - a - a - a == const(0)

    def test_constant_folding(self):
        assert const(2) + const(3) == const(5)
        assert const(2) * const(3) == const(6)
        assert symbols_of(const(7)) == set()

    def test_cmp_pred_folds_constants(self):
        from repro.analysis.symexec import FALSE, TRUE, cmp_pred
        assert cmp_pred(CmpOp.LT, const(1), const(2)) == TRUE
        assert cmp_pred(CmpOp.GE, const(1), const(2)) == FALSE
        a = symbol("a")
        assert cmp_pred(CmpOp.EQ, a, a) == TRUE

    def test_concretize_polynomial(self):
        x = symbol("x")
        expr = x * x + const(3) * x + const(2)
        vals = np.arange(5)
        np.testing.assert_array_equal(concretize(expr, {"x": vals}),
                                      vals * vals + 3 * vals + 2)

    def test_concretize_raises_on_opaque(self):
        from repro.analysis.symexec import atom_expr
        expr = atom_expr("opaque", ("loop", "L", "r"))
        with pytest.raises(NotConcretizable):
            concretize(expr, {"x": np.arange(2)})
        assert uncertifiable_kinds(expr) == {"opaque"}


# ---------------------------------------------------------------------------
# Closed forms of whole kernels.
# ---------------------------------------------------------------------------

class TestClosedForms:
    def test_straightline_store_address(self):
        kb = KernelBuilder("lin", params=("A",))
        gtid = kb.global_tid_x()
        addr = kb.mad(gtid, 4, kb.param("A"))
        kb.store(addr, gtid)
        sym = symexec(kb.build())
        site = next(s for s in sym.sites.values() if s.kind == "store")
        assert site.value == symbol("param:A") + const(4) * _gtid()
        assert site.guard is None
        assert site.path == frozenset()
        assert site.loops == ()

    def test_divergent_guard_is_path_condition(self):
        kb = KernelBuilder("guarded", params=("A", "n"))
        gtid = kb.global_tid_x()
        p = kb.setp(CmpOp.LT, gtid, kb.param("n"))
        with kb.if_then(p):
            kb.store(kb.mad(gtid, 4, kb.param("A")), gtid)
        sym = symexec(kb.build())
        site = next(s for s in sym.sites.values() if s.kind == "store")
        assert site.path, "guarded store must carry a path condition"
        (cond, polarity), = site.path
        assert polarity is True
        assert cond == Pred("cmp", (CmpOp.LT, _gtid(), symbol("param:n")))

    def test_loop_counter_widens_to_iteration_form(self):
        kb = KernelBuilder("loopy", params=("A",))
        gtid = kb.global_tid_x()
        base = kb.mad(gtid, 16, kb.param("A"))
        i = kb.loop_counter(4)
        kb.store(kb.add(base, kb.shl(i, 2)), i)
        kb.end_loop()
        sym = symexec(kb.build())
        site = next(s for s in sym.sites.values() if s.kind == "store")
        assert len(site.loops) == 1
        loop = sym.loops[site.loops[0]]
        assert loop.trip == const(4)
        itersym = symbol(loop.sym)
        expected = symbol("param:A") + const(16) * _gtid() \
            + const(4) * itersym
        assert site.value == expected

    def test_quadratic_accumulator_widens(self):
        kb = KernelBuilder("quad", params=("O",))
        gtid = kb.global_tid_x()
        acc = kb.mov(0)
        i = kb.loop_counter(5)
        kb.assign(acc, kb.add(acc, kb.mad(i, 2, gtid)))
        kb.end_loop()
        kb.store(kb.mad(gtid, 4, kb.param("O")), acc)
        sym = symexec(kb.build())
        store_idx, inst = next(
            (i, s.inst) for i, s in sym.sites.items() if s.kind == "store")
        value = sym.value_at(store_idx, inst.srcs[0])
        # sum_{i=0..4} (2i + gtid) = 20 + 5*gtid
        assert value == const(20) + const(5) * _gtid()


# ---------------------------------------------------------------------------
# Differential: concretized closed forms vs the functional executor.
# ---------------------------------------------------------------------------

def _check_single_store(kernel, params, grid=2, block=16):
    """The kernel's one top-level unguarded store, concretized, must
    reproduce the functional executor's memory image."""
    launch = _launch(kernel, params, grid=grid, block=block)
    expected = launch.memory.words.copy()

    sym = symexec(kernel)
    env = _lane_env(launch)
    store_idx, site = next(
        (i, s) for i, s in sym.sites.items() if s.kind == "store")
    addr = concretize(site.value, env).astype(np.int64)
    value = concretize(sym.value_at(store_idx, site.inst.srcs[0]), env)
    expected[addr // 4] = value

    run_functional(launch)
    np.testing.assert_array_equal(launch.memory.words, expected)


class TestDifferential:
    def test_affine_chain(self):
        kb = KernelBuilder("chain", params=("O", "n"))
        gtid = kb.global_tid_x()
        t = kb.mad(gtid, 3, kb.param("n"))
        u = kb.sub(kb.shl(t, 1), gtid)
        kb.store(kb.mad(gtid, 4, kb.param("O")), u)
        _check_single_store(kb.build(), {"O": 2048, "n": 5})

    def test_mod_and_div_atoms(self):
        kb = KernelBuilder("modal", params=("O",))
        gtid = kb.global_tid_x()
        t = kb.add(kb.rem(gtid, 7), kb.div(gtid, 3))
        u = kb.mul(kb.min(t, 9), kb.max(gtid, 2))
        kb.store(kb.mad(gtid, 4, kb.param("O")), u)
        _check_single_store(kb.build(), {"O": 2048})

    def test_loop_accumulator(self):
        kb = KernelBuilder("acc", params=("O", "n"))
        gtid = kb.global_tid_x()
        acc = kb.mov(0)
        i = kb.loop_counter(6)
        kb.assign(acc, kb.add(acc, kb.mad(i, 3, gtid)))
        kb.end_loop()
        kb.store(kb.mad(gtid, 4, kb.param("O")), acc)
        _check_single_store(kb.build(), {"O": 2048, "n": 6})

    def test_divergent_guarded_store(self):
        kb = KernelBuilder("div", params=("O", "n"))
        gtid = kb.global_tid_x()
        p = kb.setp(CmpOp.LT, gtid, kb.param("n"))
        with kb.if_then(p):
            kb.store(kb.mad(gtid, 4, kb.param("O")), kb.add(gtid, 100))
        kernel = kb.build()
        launch = _launch(kernel, {"O": 2048, "n": 19})
        expected = launch.memory.words.copy()

        sym = symexec(kernel)
        env = _lane_env(launch)
        store_idx, site = next(
            (i, s) for i, s in sym.sites.items() if s.kind == "store")
        from repro.analysis.symexec import _conc_condset
        shape = env["tid.x"].shape
        mask = _conc_condset(site.path, env, shape)
        addr = concretize(site.value, env).astype(np.int64)
        value = concretize(sym.value_at(store_idx, site.inst.srcs[0]), env)
        expected[addr[mask] // 4] = value[mask]

        run_functional(launch)
        np.testing.assert_array_equal(launch.memory.words, expected)

    def test_per_lane_divergent_trip_counts(self):
        kb = KernelBuilder("ragged", params=("O",))
        gtid = kb.global_tid_x()
        bound = kb.add(kb.rem(gtid, 3), 1)
        acc = kb.mov(0)
        kb.loop_counter(bound)
        kb.assign(acc, kb.add(acc, 2))
        kb.end_loop()
        kb.store(kb.mad(gtid, 4, kb.param("O")), acc)
        _check_single_store(kb.build(), {"O": 2048})
