"""Unit tests for the DAC hardware structures: queues, expansion units,
the affine warp executor, and the two-level affine SIMT stack."""

import numpy as np
import pytest

from repro.affine import scalar
from repro.core import run_dac
from repro.core.queues import ATQ, BarrierMarker, PerWarpQueue, TupleEntry
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch

CFG = GPUConfig(num_sms=1)


class TestQueues:
    def test_atq_budget(self):
        atq = ATQ(2)
        atq.register_cta(1)
        atq.register_cta(2)
        entry = lambda: TupleEntry("data", 0, scalar(0),
                                   np.ones(32, dtype=bool))
        atq.push(1, entry())
        atq.push(2, entry())
        assert not atq.has_space()
        with pytest.raises(RuntimeError):
            atq.push(1, entry())
        atq.pop(1)
        assert atq.has_space()

    def test_atq_barrier_markers_do_not_consume_budget(self):
        atq = ATQ(1)
        atq.register_cta(1)
        atq.push(1, BarrierMarker(1))
        assert atq.has_space()
        assert isinstance(atq.head(1), BarrierMarker)

    def test_atq_drop_cta_returns_leftovers(self):
        atq = ATQ(4)
        atq.register_cta(1)
        atq.push(1, TupleEntry("data", 0, scalar(0),
                               np.ones(32, dtype=bool)))
        leftovers = atq.drop_cta(1)
        assert len(leftovers) == 1
        assert len(atq) == 0

    def test_per_warp_queue_capacity(self):
        q = PerWarpQueue(2)
        q.push("a")
        q.push("b")
        assert q.full()
        with pytest.raises(RuntimeError):
            q.push("c")
        assert q.pop() == "a"
        assert q.head() == "b"


def _run_dac_kernel(source, params_spec, grid=(1, 1, 1), block=(64, 1, 1),
                    shared_words=0, setup=None, config=CFG):
    mem = GlobalMemory(1 << 20)
    params = setup(mem) if setup else dict(params_spec)
    kernel = parse_kernel(source, name="t", params=tuple(params))
    launch = KernelLaunch(kernel, grid, block, params, mem, shared_words)
    result = run_dac(launch, config)
    return result, mem, params


SAXPY = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add xaddr, param.X, r1;
    ld.global xv, [xaddr];
    add yaddr, param.Y, r1;
    ld.global yv, [yaddr];
    mad v, xv, 2, yv;
    add oaddr, param.O, r1;
    st.global [oaddr], v;
"""


class TestDACEndToEnd:
    def test_saxpy_correct(self):
        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64)),
                        Y=mem.alloc_array(np.arange(64) * 10),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(SAXPY, None, setup=setup)
        got = mem.read_array(params["O"], 64)
        np.testing.assert_array_equal(got, np.arange(64) * 12)
        stats = result.stats
        assert stats["dac.affine_loads"] == 2 * 2     # 2 loads x 2 warps
        assert stats["dac.deq_loads"] == 4
        assert stats["dac.deq_stores"] == 2

    def test_early_requests_lock_and_unlock(self):
        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64)),
                        Y=mem.alloc_array(np.arange(64) * 10),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(SAXPY, None, setup=setup)
        # All locks must be released by the matching dequeues.
        assert result.stats["dac.leftover_records"] == 0
        assert result.stats["dac.affine_unfinished"] == 0

    def test_guarded_enq_matches_guarded_deq(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            setp.lt p1, tid, 40;
            mul r1, tid, 4;
            add xaddr, param.X, r1;
            @p1 ld.global xv, [xaddr];
            add oaddr, param.O, r1;
            @p1 st.global [oaddr], xv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64) + 5),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        got = mem.read_array(params["O"], 64)
        expected = np.where(np.arange(64) < 40, np.arange(64) + 5.0, 0.0)
        np.testing.assert_array_equal(got, expected)
        # Warp 1 (tids 32..63) gets a partial record; warp 0 a full one.
        assert result.stats["dac.records"] > 0

    def test_fully_inactive_warp_gets_no_record(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            setp.lt p1, tid, 32;
            mul r1, tid, 4;
            add xaddr, param.X, r1;
            @p1 ld.global xv, [xaddr];
            add oaddr, param.O, r1;
            @p1 st.global [oaddr], xv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64) + 5),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        # Only warp 0 is active: one load record + one store record.
        assert result.stats["dac.affine_loads"] == 1
        assert result.stats["dac.affine_store_records"] == 1
        got = mem.read_array(params["O"], 64)
        expected = np.where(np.arange(64) < 32, np.arange(64) + 5.0, 0.0)
        np.testing.assert_array_equal(got, expected)

    def test_peu_tiers_scalar_loop(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mov i, 0;
            mov acc, 0;
        LOOP:
            mul r2, i, 4;
            add a1, param.X, r2;
            ld.global v, [a1];
            add acc, acc, v;
            add i, i, 1;
            setp.lt p0, i, 4;
            @p0 bra LOOP;
            mul r3, tid, 4;
            add oaddr, param.O, r3;
            st.global [oaddr], acc;
        """

        def setup(mem):
            return dict(X=mem.alloc_array([1.0, 2.0, 3.0, 4.0]),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      np.full(64, 10.0))
        # The loop predicate is scalar: the single-comparison tier (§4.3).
        assert result.stats["dac.peu_scalar"] > 0
        assert result.stats["dac.peu_simt"] == 0

    def test_peu_endpoint_tier(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            setp.lt p1, tid, 40;
            mul r1, tid, 4;
            add xaddr, param.X, r1;
            @p1 ld.global xv, [xaddr];
            add oaddr, param.O, r1;
            @p1 st.global [oaddr], xv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64)),
                        O=mem.alloc(64))

        result, _, _ = _run_dac_kernel(src, None, setup=setup)
        # tid < 40: warp 0 all-true (endpoint uniform), warp 1 mixed (SIMT).
        assert result.stats["dac.peu_endpoint"] >= 1
        assert result.stats["dac.peu_simt"] >= 1

    def test_divergent_tuple_expansion(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            setp.lt p1, tid, 16;
            mul off, tid, 4;
            @p1 mov off, 0;
            add xaddr, param.X, off;
            ld.global xv, [xaddr];
            mul r1, tid, 4;
            add oaddr, param.O, r1;
            st.global [oaddr], xv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64) * 100),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        tid = np.arange(64)
        expected = np.where(tid < 16, 0.0, tid * 100.0)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      expected)
        assert result.stats["dac.divergent_expansions"] > 0
        assert result.stats["dac.dcrf_writes"] > 0

    def test_mod_tuple_load(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 4;
            rem r2, r1, 64;
            add xaddr, param.X, r2;
            ld.global xv, [xaddr];
            add oaddr, param.O, r1;
            st.global [oaddr], xv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(16) + 1),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        expected = (np.arange(64) % 16 + 1).astype(float)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      expected)
        assert result.extra["program"].decoupled_loads == 1

    def test_barrier_gates_expansion(self):
        src = """
            mul r1, %tid.x, 4;
            add xaddr, param.X, r1;
            ld.global xv, [xaddr];
            st.shared [r1], xv;
            bar.sync;
            mov r2, %ntid.x;
            sub r3, r2, 1;
            sub r4, r3, %tid.x;
            mul r5, r4, 4;
            ld.shared yv, [r5];
            add oaddr, param.O, r1;
            st.global [oaddr], yv;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64)),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup,
                                              shared_words=64)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      np.arange(64)[::-1])

    def test_undecoupled_kernel_falls_back(self):
        src = """
            ld.global i1, [param.P];
            mul r2, i1, 4;
            add a2, param.P, r2;
            ld.global v, [a2];
            mul r3, v, 4;
            add a3, param.P, r3;
            atom.global [a3], 1;
        """

        def setup(mem):
            return dict(P=mem.alloc_array(np.zeros(64)))

        result, _, _ = _run_dac_kernel(src, None, setup=setup)
        # The scalar param load decouples; the chased loads do not, and
        # the run completes without DAC machinery for them.
        assert result.cycles > 0

    def test_multiple_ctas_interleave(self):
        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(256)),
                        Y=mem.alloc_array(np.arange(256) * 10),
                        O=mem.alloc(256))

        result, mem, params = _run_dac_kernel(SAXPY, None, grid=(4, 1, 1),
                                              setup=setup)
        np.testing.assert_array_equal(mem.read_array(params["O"], 256),
                                      np.arange(256) * 12)
        assert result.stats["dac.affine_unfinished"] == 0


class TestAffineStackAccounting:
    def test_wls_and_pws_counters(self):
        # Divergence along tid.x: mixed warps must write PWS entries.
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mov v, 1;
            setp.lt p1, tid, 48;
            @!p1 bra SKIP;
            mul r1, tid, 4;
            add xaddr, param.X, r1;
            ld.global v, [xaddr];
        SKIP:
            mul r2, tid, 4;
            add oaddr, param.O, r2;
            st.global [oaddr], v;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64) + 7),
                        O=mem.alloc(64))

        result, mem, params = _run_dac_kernel(src, None, setup=setup)
        tid = np.arange(64)
        expected = np.where(tid < 48, tid + 7.0, 1.0)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      expected)
        assert result.stats["dac.wls_writes"] >= 1
        assert result.stats["dac.pws_writes"] >= 1
