"""Integration: every benchmark must produce bit-identical memory images
under baseline, CAE, MTA, and DAC (the functional cross-check the paper's
simulator gets for free from its functional front-end)."""

import numpy as np
import pytest

from repro.core import run_dac
from repro.sim import GPUConfig, simulate
from repro.workloads import BY_ABBR, get

CFG = GPUConfig(num_sms=2)


@pytest.mark.parametrize("abbr", sorted(BY_ABBR))
def test_all_techniques_agree(abbr):
    benchmark = get(abbr)
    reference = None
    for technique in ("baseline", "cae", "mta", "dac"):
        launch = benchmark.launch("tiny")
        if technique == "dac":
            run_dac(launch, CFG)
        else:
            simulate(launch, CFG.with_technique(technique))
        if reference is None:
            reference = launch.memory.words
        else:
            assert np.array_equal(reference, launch.memory.words), \
                f"{abbr}: {technique} diverged from baseline"


@pytest.mark.parametrize("abbr", ["LIB", "CP", "BP", "HI", "MT", "CS"])
def test_dac_stat_invariants(abbr):
    """Queue conservation: every record expanded is eventually dequeued,
    every lock released."""
    launch = get(abbr).launch("tiny")
    result = run_dac(launch, CFG)
    s = result.stats
    if not result.extra["program"].is_decoupled:
        pytest.skip("not decoupled")
    assert s["dac.leftover_records"] == 0
    assert s["dac.affine_unfinished"] == 0
    assert s["dac.deq_loads"] == s["dac.affine_loads"]
    assert s["dac.deq_stores"] == s["dac.affine_store_records"]
    assert s["dac.deq_preds"] == s["dac.pred_records"]
    assert s["dac.deq_load_lines"] == s["dac.affine_load_lines"]


def test_perfect_memory_classification_runs():
    launch = get("LIB").launch("tiny")
    result = simulate(launch, CFG.with_perfect_memory())
    assert result.cycles > 0
