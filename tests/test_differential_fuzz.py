"""Differential fuzzing: random mini-kernels, functional oracle vs every
timing model.

The generator (:mod:`repro.workloads.fuzz`) only emits programs whose
final memory image is deterministic — integer-exact arithmetic,
thread-exclusive output slots, order-independent atomics — so the
functional interpreter's memory is a bit-exact oracle for baseline, CAE,
MTA, and DAC alike."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.harness.runner import TECHNIQUES, simulate_launch
from repro.sim.functional import run_functional
from repro.workloads.fuzz import build_fuzz_launch

SEEDS = range(100)


@pytest.fixture(scope="module")
def config():
    return GPUConfig(num_sms=1)


@pytest.fixture(scope="module")
def oracle_memory():
    """Final memory image per seed, from the functional interpreter."""
    images = {}
    for seed in SEEDS:
        launch = build_fuzz_launch(seed)
        run_functional(launch)
        images[seed] = launch.memory.words
    return images


class TestGenerator:
    def test_same_seed_same_kernel(self):
        a = build_fuzz_launch(7)
        b = build_fuzz_launch(7)
        assert [str(i) for i in a.kernel.instructions] \
            == [str(i) for i in b.kernel.instructions]
        assert np.array_equal(a.memory.words, b.memory.words)
        assert a.memory.words is not b.memory.words   # fresh images

    def test_seeds_vary(self):
        kernels = {tuple(str(i) for i in build_fuzz_launch(s)
                         .kernel.instructions)
                   for s in range(20)}
        assert len(kernels) > 10

    def test_structures_covered(self):
        """Across the seed set the generator exercises every construct."""
        text = "\n".join(
            "\n".join(str(i) for i in build_fuzz_launch(s)
                      .kernel.instructions)
            for s in SEEDS)
        assert "ld.global" in text
        assert "bra" in text
        assert "bar" in text
        assert "atom" in text
        assert "st.global" in text


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_differential(technique, config, oracle_memory):
    for seed in SEEDS:
        launch = build_fuzz_launch(seed)
        simulate_launch(launch, technique, config)
        if not np.array_equal(oracle_memory[seed], launch.memory.words):
            diff = np.nonzero(oracle_memory[seed]
                              != launch.memory.words)[0]
            raise AssertionError(
                f"seed {seed}: {technique} memory differs from the "
                f"functional oracle at words {diff[:8].tolist()}")
