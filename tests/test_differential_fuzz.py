"""Differential fuzzing: random mini-kernels, three-way oracle.

The generator (:mod:`repro.workloads.fuzz`) only emits programs whose
final memory image is deterministic — integer-exact arithmetic,
thread-exclusive output slots, order-independent atomics — so the
functional interpreter's memory is a bit-exact oracle for baseline, CAE,
MTA, and DAC alike.

Since the vector datapath landed, every timing technique is checked
*three ways* per seed:

1. scalar-datapath memory  == functional-oracle memory
2. vector-datapath memory  == scalar-datapath memory (bit-for-bit)
3. vector-datapath Stats   == scalar-datapath Stats  (every counter)

The scalar datapath is the reference implementation; any divergence in
the vector path — a mask popcount off by one, a blend touching an
inactive lane — shows up as a Stats or memory diff here long before it
would surface in the golden matrix.
"""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.harness.runner import TECHNIQUES, simulate_launch
from repro.sim.functional import run_functional
from repro.workloads.fuzz import build_fuzz_launch

SEEDS = range(100)


@pytest.fixture(scope="module")
def config():
    return GPUConfig(num_sms=1)


@pytest.fixture(scope="module")
def vector_config():
    return GPUConfig(num_sms=1, datapath="vector")


@pytest.fixture(scope="module")
def oracle_memory():
    """Final memory image per seed, from the functional interpreter."""
    images = {}
    for seed in SEEDS:
        launch = build_fuzz_launch(seed)
        run_functional(launch)
        images[seed] = launch.memory.words
    return images


class TestGenerator:
    def test_same_seed_same_kernel(self):
        a = build_fuzz_launch(7)
        b = build_fuzz_launch(7)
        assert [str(i) for i in a.kernel.instructions] \
            == [str(i) for i in b.kernel.instructions]
        assert np.array_equal(a.memory.words, b.memory.words)
        assert a.memory.words is not b.memory.words   # fresh images

    def test_seeds_vary(self):
        kernels = {tuple(str(i) for i in build_fuzz_launch(s)
                         .kernel.instructions)
                   for s in range(20)}
        assert len(kernels) > 10

    def test_structures_covered(self):
        """Across the seed set the generator exercises every construct."""
        text = "\n".join(
            "\n".join(str(i) for i in build_fuzz_launch(s)
                      .kernel.instructions)
            for s in SEEDS)
        assert "ld.global" in text
        assert "bra" in text
        assert "bar" in text
        assert "atom" in text
        assert "st.global" in text


def test_functional_vector_matches_scalar(oracle_memory):
    """The functional interpreter's vector datapath reproduces the scalar
    one's memory image exactly (same oracle, different lane storage)."""
    for seed in SEEDS:
        launch = build_fuzz_launch(seed)
        run_functional(launch, datapath="vector")
        assert np.array_equal(oracle_memory[seed], launch.memory.words), \
            f"seed {seed}: vector functional memory differs from scalar"


def _stats_diff(a: dict, b: dict) -> list[str]:
    return [f"{k}: scalar={a.get(k)!r} vector={b.get(k)!r}"
            for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)]


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_differential(technique, config, vector_config, oracle_memory):
    """Three-way check per seed: scalar timing vs functional memory, then
    vector timing vs scalar timing on memory, cycles, and every Stats
    counter."""
    for seed in SEEDS:
        launch = build_fuzz_launch(seed)
        scalar = simulate_launch(launch, technique, config)
        if not np.array_equal(oracle_memory[seed], launch.memory.words):
            diff = np.nonzero(oracle_memory[seed]
                              != launch.memory.words)[0]
            raise AssertionError(
                f"seed {seed}: {technique} memory differs from the "
                f"functional oracle at words {diff[:8].tolist()}")

        vlaunch = build_fuzz_launch(seed)
        vector = simulate_launch(vlaunch, technique, vector_config)
        if not np.array_equal(launch.memory.words, vlaunch.memory.words):
            diff = np.nonzero(launch.memory.words
                              != vlaunch.memory.words)[0]
            raise AssertionError(
                f"seed {seed}: {technique} vector-datapath memory differs "
                f"from scalar at words {diff[:8].tolist()}")
        assert scalar.cycles == vector.cycles, (
            f"seed {seed}: {technique} cycles diverged "
            f"(scalar {scalar.cycles}, vector {vector.cycles})")
        diff = _stats_diff(scalar.stats.as_dict(), vector.stats.as_dict())
        assert not diff, (
            f"seed {seed}: {technique} Stats diverged between datapaths:\n"
            + "\n".join(diff))
