"""Unit tests for the affine warp executor (AffineCTAExec) in isolation."""

import numpy as np

from repro.affine import AffinePredicate, DivergentSet
from repro.compiler.cfg import CFG
from repro.core.affine_warp import AffineCTAExec, ConcreteExpr
from repro.core.queues import ATQ, BarrierMarker, TupleEntry
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch
from repro.sim.launch import CTAState
from repro.stats import Stats
from repro.faults import NULL_FAULTS
from repro.trace import NULL_TRACER


class _FakeSM:
    """Just enough SM surface for AffineCTAExec."""

    def __init__(self):
        self.stats = Stats()
        self.warps = []
        self.atq_mem = ATQ(64)
        self.atq_pred = ATQ(64)
        self.config = GPUConfig(num_sms=1)
        self.trace_on = False
        self.tracer = NULL_TRACER
        self.faults = NULL_FAULTS


def make_exec(source, params=(), block=(64, 1, 1), param_values=None):
    kernel = parse_kernel(source, name="aff", params=params)
    mem = GlobalMemory(1 << 16)
    launch = KernelLaunch(kernel, (1, 1, 1), block, param_values or {}, mem)
    cta = CTAState((0, 0, 0), launch)
    sm = _FakeSM()
    sm.atq_mem.register_cta(id(cta))
    sm.atq_pred.register_cta(id(cta))
    exec_ = AffineCTAExec(sm, cta, kernel, CFG(kernel))
    return exec_, sm, cta


def run_to_completion(exec_, limit=1000):
    for _ in range(limit):
        if exec_.done:
            return
        assert exec_.ready(0)
        exec_.step(0)
    raise AssertionError("affine stream did not finish")


class TestTupleExecution:
    def test_address_chain(self):
        exec_, sm, cta = make_exec("""
            mul r1, %tid.x, 4;
            add addr, param.A, r1;
            enq.data.global addr;
        """, params=("A",), param_values=dict(A=0x1000))
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert isinstance(entry, TupleEntry)
        assert entry.expr.base == 0x1000
        assert entry.expr.offsets[0] == 4.0

    def test_ctaid_folds_into_base(self):
        exec_, sm, cta = make_exec("""
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 4;
            enq.addr.global r1;
        """)
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        # ctaid.x == 0 for this CTA; offset from tid.x survives.
        assert entry.expr.offsets[0] == 4.0

    def test_scalar_loop_executes_n_times(self):
        exec_, sm, cta = make_exec("""
            mov i, 0;
        LOOP:
            mul r1, i, 4;
            add a1, param.A, r1;
            enq.data.global a1;
            add i, i, 1;
            setp.lt p0, i, 5;
            @p0 bra LOOP;
        """, params=("A",), param_values=dict(A=0))
        run_to_completion(exec_)
        entries = []
        while sm.atq_mem.head(id(cta)) is not None:
            entries.append(sm.atq_mem.pop(id(cta)))
        assert len(entries) == 5
        assert [e.expr.base for e in entries] == [0, 4, 8, 12, 16]

    def test_affine_branch_diverges_stack(self):
        exec_, sm, cta = make_exec("""
            setp.lt p1, %tid.x, 16;
            @!p1 bra SKIP;
            mul r1, %tid.x, 4;
            enq.addr.global r1;
        SKIP:
            exit;
        """)
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert entry.mask.sum() == 16               # only tid < 16 enqueued
        assert sm.stats["dac.wls_writes"] >= 1

    def test_guarded_enq_with_empty_mask_skipped(self):
        exec_, sm, cta = make_exec("""
            setp.lt p1, %tid.x, 0;
            mul r1, %tid.x, 4;
            @p1 enq.addr.global r1;
        """)
        run_to_completion(exec_)
        assert sm.atq_mem.head(id(cta)) is None

    def test_barrier_pushes_markers_to_both_lanes(self):
        exec_, sm, cta = make_exec("""
            bar.sync;
            mul r1, %tid.x, 4;
            enq.addr.global r1;
        """)
        run_to_completion(exec_)
        assert isinstance(sm.atq_mem.head(id(cta)), BarrierMarker)
        assert isinstance(sm.atq_pred.head(id(cta)), BarrierMarker)
        assert exec_.barriers_seen == 1

    def test_divergent_merge_creates_set_and_dcrf(self):
        exec_, sm, cta = make_exec("""
            setp.lt p1, %tid.x, 8;
            mul off, %tid.x, 4;
            @p1 mov off, 0;
            enq.addr.global off;
        """)
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert isinstance(entry.expr, DivergentSet)
        assert sm.stats["dac.dcrf_writes"] == 1
        values = entry.expr.evaluate_with(exec_.tx, exec_.ty, exec_.tz,
                                          exec_.dcrf)
        expected = np.where(np.arange(64) < 8, 0.0, np.arange(64) * 4.0)
        np.testing.assert_array_equal(values, expected)

    def test_concrete_fallback_on_unsupported_op(self):
        # Re-modding a mod tuple is not tuple-expressible: §3 fallback.
        exec_, sm, cta = make_exec("""
            mul r1, %tid.x, 4;
            rem r2, r1, 64;
            mul r3, r2, 4;
            rem r4, r3, 32;
            enq.addr.global r4;
        """)
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert isinstance(entry.expr, ConcreteExpr)
        expected = np.mod(np.mod(np.arange(64) * 4, 64) * 4, 32)
        np.testing.assert_array_equal(entry.expr.values, expected)

    def test_enq_pred_scalar(self):
        exec_, sm, cta = make_exec("""
            setp.lt p0, 3, 5;
            enq.pred p0;
        """)
        run_to_completion(exec_)
        entry = sm.atq_pred.head(id(cta))
        assert isinstance(entry.expr, AffinePredicate)
        assert entry.expr.is_scalar and entry.expr.scalar_value

    def test_ready_false_when_atq_full(self):
        exec_, sm, cta = make_exec("""
            mul r1, %tid.x, 4;
            enq.addr.global r1;
        """)
        sm.atq_mem = ATQ(0)
        sm.atq_mem.register_cta(id(cta))
        exec_.step(0)                               # mul
        assert not exec_.ready(0)                   # enq blocked

    def test_mem_ref_displacement(self):
        exec_, sm, cta = make_exec("""
            mul r1, %tid.x, 4;
            enq.data.global [r1+8];
        """, params=())
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert entry.expr.base == 8.0

    def test_2d_block_offsets(self):
        exec_, sm, cta = make_exec("""
            mul ry, %tid.y, 100;
            add v, ry, %tid.x;
            enq.addr.global v;
        """, block=(16, 4, 1))
        run_to_completion(exec_)
        entry = sm.atq_mem.head(id(cta))
        assert entry.expr.offsets == (1.0, 100.0, 0.0)
