"""Tests for the persistent result store: keying, hit/miss/invalidation
semantics, atomic writes, serialization round-trips, and the warm-suite
guarantee (a second run_suite performs zero simulations)."""

import dataclasses
import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.harness import (
    DiskCache,
    cache_key,
    clear_cache,
    configure_cache,
    disk_cache,
    experiment_config,
    result_from_json,
    result_to_json,
    run_one,
    run_suite,
)
from repro.harness import runner
from repro.sim.gpu import RunResult
from repro.stats import Stats
from repro.workloads import get

CFG = experiment_config(num_sms=2)


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path):
    """Every test gets a fresh memo cache and its own disk cache dir."""
    clear_cache()
    configure_cache(tmp_path / "cache")
    yield
    configure_cache(enabled=False)
    clear_cache()


def _count_simulations(monkeypatch):
    calls = []
    real = runner.simulate_launch

    def counting(launch, technique, config):
        calls.append((launch.kernel.name, technique))
        return real(launch, technique, config)

    monkeypatch.setattr(runner, "simulate_launch", counting)
    return calls


class TestCacheKey:
    def test_deterministic_across_rebuilds(self):
        a = cache_key(get("CP").launch("tiny"), "baseline", CFG)
        b = cache_key(get("CP").launch("tiny"), "baseline", CFG)
        assert a == b and len(a) == 64

    def test_sensitive_to_every_component(self):
        base = cache_key(get("CP").launch("tiny"), "baseline", CFG)
        assert cache_key(get("CP").launch("tiny"), "dac", CFG) != base
        assert cache_key(get("LIB").launch("tiny"), "baseline", CFG) != base
        assert cache_key(get("CP").launch("paper"), "baseline", CFG) != base
        other = dataclasses.replace(CFG, alu_latency=CFG.alu_latency + 1)
        assert cache_key(get("CP").launch("tiny"), "baseline", other) != base

    def test_sensitive_to_memory_image(self):
        launch = get("CP").launch("tiny")
        base = cache_key(launch, "baseline", CFG)
        launch.memory.words[0] = 123.0
        assert cache_key(launch, "baseline", CFG) != base


class TestDiskCache:
    def _result(self):
        return runner.simulate_launch(get("CP").launch("tiny"),
                                      "baseline", CFG)

    def test_store_load_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path / "d")
        result = self._result()
        cache.store("k1", result)
        loaded = cache.load("k1")
        assert loaded is not result
        assert loaded.cycles == result.cycles
        assert loaded.kernel_name == result.kernel_name
        assert loaded.config == result.config
        assert loaded.stats.as_dict() == result.stats.as_dict()
        assert np.array_equal(loaded.extra["memory_words"],
                              result.extra["memory_words"])
        assert cache.hits == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = DiskCache(tmp_path / "d")
        assert cache.load("nope") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = DiskCache(tmp_path / "d")
        cache.store("k1", self._result())
        cache._path("k1").write_bytes(b"not a pickle")
        assert cache.load("k1") is None
        assert "k1" not in cache
        assert cache.misses == 1

    def test_invalidate_and_clear(self, tmp_path):
        cache = DiskCache(tmp_path / "d")
        result = self._result()
        cache.store("k1", result)
        cache.store("k2", result)
        assert len(cache) == 2 and cache.keys() == ["k1", "k2"]
        assert cache.invalidate("k1")
        assert not cache.invalidate("k1")
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path / "d")
        for i in range(3):
            cache.store(f"k{i}", self._result())
        leftovers = [p for p in cache.root.iterdir()
                     if not p.name.endswith(DiskCache.SUFFIX)]
        assert leftovers == []


_HAMMER = textwrap.dedent("""
    import sys
    import numpy as np
    from repro.config import GPUConfig
    from repro.harness.diskcache import DiskCache
    from repro.sim.gpu import RunResult
    from repro.stats import Stats

    root, wid = sys.argv[1], int(sys.argv[2])
    cache = DiskCache(root)
    stats = Stats()
    stats.add("writer", float(wid))
    for i in range(150):
        slot = i % 6
        result = RunResult(cycles=1000 + slot, stats=stats,
                           config=GPUConfig(), kernel_name=f"kern{slot}",
                           extra={"memory_words": np.zeros(16384)})
        cache.store(f"k{slot}", result)
        loaded = cache.load(f"k{slot}")
        # A concurrent reader sees the old entry or the new one — never
        # a torn write.
        assert loaded is not None, f"torn read at {i}"
        assert loaded.kernel_name == f"kern{slot}"
        assert loaded.cycles == 1000 + slot
    assert cache.corrupt == 0
    print("ok")
""")


@pytest.mark.resilience
def test_two_process_writers_never_corrupt_the_cache(tmp_path):
    """Satellite acceptance: two processes hammering the same keys leave
    only whole, loadable entries — no torn reads, no ``.corrupt``
    quarantine files, no leftover temporaries."""
    root = tmp_path / "shared"
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen(
        [sys.executable, "-c", _HAMMER, str(root), str(wid)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        for wid in range(2)]
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out.decode()
        assert b"ok" in out
    cache = DiskCache(root)
    for slot in range(6):
        loaded = cache.load(f"k{slot}")
        assert loaded is not None and loaded.cycles == 1000 + slot
        # The survivor is one writer's complete entry, never a blend.
        assert loaded.stats.as_dict()["writer"] in (0.0, 1.0)
    assert cache.corrupt == 0
    assert not list(root.glob(f"*{DiskCache.CORRUPT_SUFFIX}"))
    leftovers = [p for p in root.iterdir()
                 if not p.name.endswith(DiskCache.SUFFIX)]
    assert leftovers == []


class TestWiring:
    def test_run_one_populates_disk(self):
        run_one("CP", "baseline", "tiny", CFG)
        assert len(disk_cache()) == 1

    def test_warm_run_skips_simulation(self, monkeypatch):
        run_one("CP", "baseline", "tiny", CFG)
        clear_cache()                      # drop the in-process memo
        calls = _count_simulations(monkeypatch)
        warm = run_one("CP", "baseline", "tiny", CFG)
        assert calls == []
        assert warm.cycles > 0

    def test_use_cache_false_bypasses_disk(self, monkeypatch):
        run_one("CP", "baseline", "tiny", CFG)
        clear_cache()
        calls = _count_simulations(monkeypatch)
        run_one("CP", "baseline", "tiny", CFG, use_cache=False)
        assert len(calls) == 1
        assert disk_cache().hits == 0

    def test_warm_suite_performs_zero_simulations(self, monkeypatch):
        """Acceptance criterion: a warm second run_suite over >= 5
        benchmarks loads every result from disk."""
        abbrs = ["CP", "LIB", "ST", "BFS", "HS"]
        techniques = ("baseline", "dac")
        cold = run_suite(abbrs, "tiny", CFG, techniques=techniques)
        clear_cache()
        calls = _count_simulations(monkeypatch)
        warm = run_suite(abbrs, "tiny", CFG, techniques=techniques)
        assert calls == []
        for abbr in abbrs:
            for tech in techniques:
                assert warm[abbr][tech].cycles == cold[abbr][tech].cycles
                assert warm[abbr][tech].stats.as_dict() == \
                    cold[abbr][tech].stats.as_dict()

    def test_invalidation_forces_resimulation(self, monkeypatch):
        run_one("CP", "baseline", "tiny", CFG)
        clear_cache()
        disk = disk_cache()
        key = cache_key(get("CP").launch("tiny"), "baseline", CFG)
        assert disk.invalidate(key)
        calls = _count_simulations(monkeypatch)
        run_one("CP", "baseline", "tiny", CFG)
        assert len(calls) == 1


class TestSerialization:
    def _result(self):
        result = runner.simulate_launch(get("LIB").launch("tiny"),
                                        "dac", CFG)
        result.extra["abbr"] = "LIB"
        return result

    def test_pickle_roundtrip(self):
        result = self._result()
        for obj in (result.stats, result.config, result):
            copy = pickle.loads(pickle.dumps(obj))
            if isinstance(obj, Stats):
                assert copy.as_dict() == obj.as_dict()
            elif isinstance(obj, GPUConfig):
                assert copy == obj
        copy = pickle.loads(pickle.dumps(result))
        assert copy.cycles == result.cycles
        assert copy.stats.as_dict() == result.stats.as_dict()
        assert np.array_equal(copy.extra["memory_words"],
                              result.extra["memory_words"])

    def test_json_roundtrip(self):
        result = self._result()
        copy = result_from_json(result_to_json(result))
        assert isinstance(copy, RunResult)
        assert copy.cycles == result.cycles
        assert copy.kernel_name == result.kernel_name
        assert copy.config == result.config
        assert copy.stats.as_dict() == result.stats.as_dict()
        assert copy.extra["abbr"] == "LIB"
        assert np.array_equal(copy.extra["memory_words"],
                              result.extra["memory_words"])
        # Non-JSON-able extras (the decoupled program) are dropped, not
        # mangled.
        assert "program" in result.extra
        assert "program" not in copy.extra

    def test_stats_from_dict(self):
        stats = Stats()
        stats.add("x", 2.5)
        assert Stats.from_dict(stats.as_dict()).as_dict() == {"x": 2.5}

    def test_config_from_dict(self):
        config = experiment_config(num_sms=3).with_technique("mta")
        copy = GPUConfig.from_dict(dataclasses.asdict(config))
        assert copy == config
