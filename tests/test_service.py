"""Units of the experiment service below the daemon: wire protocol,
chaos directives, write-ahead journal replay, lossless wire forms of
``SimulationHang``/``GridReport``, and the supervised worker pool.

The supervisor tests spawn real worker processes and are marked
``resilience``; everything else is pure and fast.  The full daemon —
socket, backpressure, crash/restart — is exercised end-to-end in
``test_service_chaos.py``.
"""

import json
import threading
import time

import pytest

from repro.config import GPUConfig
from repro.faults import chaos
from repro.harness import clear_cache, configure_cache, experiment_config
from repro.harness import runner
from repro.harness.parallel import GridReport
from repro.service.journal import JobJournal
from repro.service.protocol import (
    ProtocolError,
    decode,
    encode,
    job_digest,
    task_from_wire,
    task_to_wire,
)
from repro.service.supervisor import Supervisor
from repro.sim.gpu import SimulationHang

CFG = experiment_config(num_sms=2)
TASK = ("CP", "baseline", CFG)
SCALE = "tiny"


@pytest.fixture(autouse=True)
def _no_disk_cache():
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# Wire protocol


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "jobs": [1, 2], "nested": {"a": None}}
        line = encode(message)
        assert line.endswith(b"\n")
        assert decode(line) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]\n")           # frames must be objects

    def test_task_wire_roundtrip_preserves_config(self):
        wire = task_to_wire(TASK, SCALE)
        back_task, back_scale = task_from_wire(json.loads(json.dumps(wire)))
        assert back_task == TASK
        assert isinstance(back_task[2], GPUConfig)
        assert back_scale == SCALE

    def test_malformed_job_raises(self):
        with pytest.raises(ProtocolError):
            task_from_wire({"abbr": "CP"})

    def test_job_digest_is_content_addressed(self):
        a = job_digest(TASK, SCALE)
        assert a == job_digest(TASK, SCALE)
        assert a != job_digest(TASK, "paper")
        assert a != job_digest(("CP", "dac", CFG), SCALE)
        other = experiment_config(num_sms=4)
        assert a != job_digest(("CP", "baseline", other), SCALE)


# ---------------------------------------------------------------------------
# Chaos directives


class TestChaosSpec:
    def test_parse_full_spec(self):
        die, delay = chaos.parse_spec("die:CP/dac@1; delay:*/*:0.1")
        assert (die.kind, die.abbr, die.technique, die.limit) == \
            ("die", "CP", "dac", 1)
        assert (delay.kind, delay.arg, delay.limit) == ("delay", 0.1, None)
        assert die.matches("CP", "dac") and not die.matches("CP", "mta")
        assert delay.matches("ST", "baseline")

    def test_parse_rejects_malformed_specs(self):
        for bad in ("die", "die:CP", "explode:CP/dac", "die:CP/dac:x",
                    "die:CP/dac@soon"):
            with pytest.raises(chaos.ChaosSpecError):
                chaos.parse_spec(bad)

    def test_limit_tokens_are_claimed_atomically(self, tmp_path):
        (directive,) = chaos.parse_spec("delay:CP/dac:0@2")
        assert chaos._claim_token(directive, str(tmp_path))
        assert chaos._claim_token(directive, str(tmp_path))
        assert not chaos._claim_token(directive, str(tmp_path))

    def test_exhausted_directive_does_not_fire(self, tmp_path):
        directives = chaos.parse_spec("hang:CP/dac:60@1")
        assert chaos._claim_token(directives[0], str(tmp_path))  # use it up
        start = time.monotonic()
        chaos.maybe_fire("CP", "dac", directives, str(tmp_path))
        assert time.monotonic() - start < 1.0

    def test_log_roundtrip(self, tmp_path):
        path = tmp_path / "sim.log"
        chaos.log_simulation("CP", "dac", str(path))
        chaos.log_simulation("ST", "baseline", str(path))
        assert chaos.read_log(path) == [("CP", "dac"), ("ST", "baseline")]
        assert chaos.read_log(tmp_path / "absent.log") == []


# ---------------------------------------------------------------------------
# Lossless wire forms


class TestWireForms:
    def test_simulation_hang_roundtrip_restores_int_sm_keys(self):
        hang = SimulationHang(
            "no_progress", 1234, 1100,
            {"scoreboard": 7.0, "issue.stall": 3.0},
            {0: {"atq": 3, "pwaq": 1}, 2: {"atq": 0}},
            ["sm0 warp0 waiting", "sm2 warp1 ready"])
        back = SimulationHang.from_dict(json.loads(json.dumps(
            hang.to_dict())))
        assert back.reason == hang.reason
        assert back.cycle == hang.cycle
        assert back.last_progress_cycle == hang.last_progress_cycle
        assert back.stall_snapshot == hang.stall_snapshot
        assert back.queue_occupancy == hang.queue_occupancy
        assert all(isinstance(k, int) for k in back.queue_occupancy)
        assert back.warp_states == hang.warp_states
        assert str(back) == str(hang)

    def test_real_hang_survives_the_wire(self):
        import dataclasses

        from repro.isa import parse_kernel
        from repro.sim import GlobalMemory, KernelLaunch, simulate

        kernel = parse_kernel("LOOP:\n mov r0, 1;\n bra LOOP;\n",
                              name="t", params=())
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1), {},
                              GlobalMemory(1 << 20))
        config = dataclasses.replace(GPUConfig(num_sms=1),
                                     max_cycles=2000)
        with pytest.raises(SimulationHang) as info:
            simulate(launch, config)
        hang = info.value
        back = SimulationHang.from_dict(json.loads(json.dumps(
            hang.to_dict())))
        assert str(back) == str(hang)
        assert back.queue_occupancy == hang.queue_occupancy

    def test_grid_report_roundtrip(self):
        report = GridReport(total=4, completed=2, resumed=1, retries=3,
                            timeouts=2)
        report.quarantined = [("HI", "dac", CFG)]
        report.failures = {("HI", "dac", CFG): "circuit breaker tripped"}
        back = GridReport.from_dict(json.loads(json.dumps(
            report.to_dict())))
        assert back == report
        assert isinstance(back.quarantined[0][2], GPUConfig)
        assert back.summary() == report.summary()
        assert "quarantined" in back.summary()


# ---------------------------------------------------------------------------
# Write-ahead journal


class TestJournal:
    def test_replay_lifecycle(self, tmp_path):
        digest = job_digest(TASK, SCALE)
        with JobJournal(tmp_path) as journal:
            journal.record_submit(digest, task_to_wire(TASK, SCALE))
            job = journal.replay()[digest]
            assert job["status"] == "pending" and job["strikes"] == 0

            journal.record_strike(digest, "worker died")
            assert journal.replay()[digest]["strikes"] == 1

            journal.record_quarantine(digest, TASK, "breaker tripped")
            job = journal.replay()[digest]
            assert job["status"] == "quarantined"
            assert job["error"] == "breaker tripped"

            journal.record_unquarantine(digest)
            job = journal.replay()[digest]
            assert job["status"] == "pending" and job["strikes"] == 0

            result = runner.run_one(*TASK[:2], SCALE, CFG, use_cache=False)
            journal.record_done(digest, TASK, result)
            assert journal.replay()[digest]["status"] == "done"
            assert journal.load_result(digest).cycles == result.cycles

    def test_done_without_blob_degrades_to_pending(self, tmp_path):
        digest = job_digest(TASK, SCALE)
        with JobJournal(tmp_path) as journal:
            journal.record_submit(digest, task_to_wire(TASK, SCALE))
            journal._append({"op": "done", "digest": digest})  # no blob
            assert journal.replay()[digest]["status"] == "pending"

    def test_torn_tail_and_garbage_lines_are_skipped(self, tmp_path):
        digest = job_digest(TASK, SCALE)
        with JobJournal(tmp_path) as journal:
            journal.record_submit(digest, task_to_wire(TASK, SCALE))
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write("null\n")
            handle.write('{"op": "done", "dig')       # crash mid-append
        with JobJournal(tmp_path) as journal:
            jobs = journal.replay()
            assert list(jobs) == [digest]
            assert jobs[digest]["status"] == "pending"

    def test_journal_dir_is_a_run_grid_checkpoint(self, tmp_path):
        """The daemon's journal directory doubles as a ``run_grid``
        checkpoint: a grid pointed at it resumes the daemon's work."""
        from repro.harness.parallel import run_grid

        digest = job_digest(TASK, SCALE)
        with JobJournal(tmp_path) as journal:
            result = runner.run_one(*TASK[:2], SCALE, CFG, use_cache=False)
            journal.record_done(digest, TASK, result)
        clear_cache()
        report = GridReport()
        results = run_grid([TASK], SCALE, jobs=1, use_cache=False,
                           checkpoint=tmp_path, report=report,
                           service=False)
        assert report.resumed == 1 and report.completed == 0
        assert results[TASK].cycles == result.cycles


# ---------------------------------------------------------------------------
# Supervised worker pool (real processes)


def _wait_until(predicate, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("condition not reached in time")


@pytest.mark.resilience
def test_supervisor_completes_grid_and_dedups():
    done: dict = {}
    lock = threading.Lock()

    def on_done(digest, task, scale, result):
        with lock:
            done[digest] = (task, result)

    sup = Supervisor(workers=2, cache_dir=None, job_timeout=120.0,
                     on_done=on_done)
    try:
        tasks = [("CP", "baseline", CFG), ("ST", "baseline", CFG)]
        digests = [job_digest(task, SCALE) for task in tasks]
        for digest, task in zip(digests, tasks):
            assert sup.submit(digest, task, SCALE) == "queued"
        # Idempotent: resubmitting a known digest reports, never requeues.
        assert sup.submit(digests[0], tasks[0], SCALE) in \
            ("queued", "running", "done")
        _wait_until(lambda: len(done) == len(tasks))
        assert sup.queue_depth() == 0
        assert sup.counts()["done"] == len(tasks)
        for digest, task in zip(digests, tasks):
            ref = runner.run_one(*task[:2], SCALE, task[2],
                                 use_cache=False)
            assert done[digest][1].cycles == ref.cycles
            assert done[digest][1].stats.as_dict() == ref.stats.as_dict()
    finally:
        sup.close()


@pytest.mark.resilience
def test_supervisor_propagates_deterministic_failure():
    failures: list = []
    sup = Supervisor(workers=1, cache_dir=None,
                     on_failed=lambda *args: failures.append(args))
    try:
        digest = job_digest(("NOPE", "baseline", CFG), SCALE)
        sup.submit(digest, ("NOPE", "baseline", CFG), SCALE)
        _wait_until(lambda: failures)
        failed_digest, kind, message, hang = failures[0]
        assert failed_digest == digest
        assert kind == "KeyError" and "NOPE" in message
        assert hang is None
        assert sup.state(digest) == "failed"
        assert sup.job_error(digest)[0] == "KeyError"
    finally:
        sup.close()


@pytest.mark.resilience
def test_supervisor_strikes_preload_the_breaker(monkeypatch):
    """Journal-replayed strike counts must survive into the breaker: a
    cell one strike from quarantine stays one strike from quarantine
    after a daemon restart."""
    monkeypatch.setenv(chaos.ENV_SPEC, "hang:CP/baseline:60")
    quarantined: list = []
    retried: list = []
    sup = Supervisor(workers=1, cache_dir=None, job_timeout=1.0,
                     max_strikes=2,
                     on_retry=lambda digest: retried.append(digest),
                     on_quarantined=lambda digest, task, scale, error:
                     quarantined.append((digest, error)))
    try:
        digest = job_digest(TASK, SCALE)
        sup.submit(digest, TASK, SCALE, strikes=1)   # replayed strike
        _wait_until(lambda: quarantined, timeout=30.0)
        assert retried == []                         # went straight to trip
        assert "circuit breaker" in quarantined[0][1]
        assert sup.state(digest) == "quarantined"
    finally:
        sup.close(drain=False)
