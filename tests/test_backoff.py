"""The shared retry schedule: capped exponential growth, deterministic
jitter, and the zero-base escape hatch the fast tests rely on."""

import pytest

from repro.harness.backoff import (
    backoff_delay,
    backoff_schedule,
    jitter_fraction,
)


def test_unjittered_schedule_doubles_then_caps():
    delays = backoff_schedule(8, base=0.5, cap=10.0, jitter=0.0)
    assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 10.0, 10.0, 10.0]


def test_zero_base_disables_sleeping():
    assert backoff_delay(5, base=0.0) == 0.0
    assert backoff_schedule(4, base=-1.0) == [0.0] * 4


def test_jitter_stays_within_bounds_and_under_cap():
    for attempt in range(10):
        raw = min(30.0, 0.5 * 2 ** attempt)
        delay = backoff_delay(attempt, base=0.5, cap=30.0, jitter=0.25,
                              seed="abc")
        assert raw <= delay <= min(30.0, raw * 1.25)
    assert backoff_delay(40, base=0.5, cap=30.0, jitter=0.25,
                         seed="abc") <= 30.0


def test_same_seed_and_attempt_is_deterministic():
    a = backoff_schedule(6, seed="digest-1")
    b = backoff_schedule(6, seed="digest-1")
    assert a == b


def test_different_seeds_decorrelate():
    a = backoff_schedule(6, seed="digest-1")
    b = backoff_schedule(6, seed="digest-2")
    # Two clients with different job digests must not sleep in lock-step.
    assert a != b


def test_jitter_fraction_is_uniformish_in_unit_interval():
    values = [jitter_fraction(f"seed-{i}", i) for i in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert len(set(values)) == len(values)          # no collisions here
    mean = sum(values) / len(values)
    assert 0.4 < mean < 0.6


def test_negative_attempt_clamps_to_base():
    assert backoff_delay(-3, base=0.5, jitter=0.0) == 0.5


@pytest.mark.parametrize("attempts", [0, 1, 5])
def test_schedule_length(attempts):
    assert len(backoff_schedule(attempts)) == attempts
