"""Tests for the memory subsystem: coalescer, caches, MSHRs, locking, DRAM."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, DRAMConfig
from repro.events import EventQueue
from repro.memory import (
    DRAM,
    LatencyChannel,
    PerfectMemory,
    SetAssocCache,
    coalesce,
    line_of,
    word_mask,
)
from repro.stats import Stats


class _Backing:
    """Fixed-latency endpoint recording requests."""

    def __init__(self, events, latency=100):
        self.events = events
        self.latency = latency
        self.reads = []
        self.writes = []

    def read(self, line, now, callback):
        self.reads.append((line, now))
        self.events.schedule(now + self.latency, callback)

    def write(self, line, now):
        self.writes.append((line, now))


def _drain(events):
    while len(events):
        events.run_until(events.next_time())


def make_cache(size=4096, ways=4, mshrs=4, latency=10):
    events = EventQueue()
    stats = Stats()
    backing = _Backing(events)
    cache = SetAssocCache(
        "l1", CacheConfig(size_bytes=size, ways=ways, hit_latency=latency,
                          num_mshrs=mshrs), backing, events, stats)
    return cache, backing, events, stats


class TestCoalescer:
    def test_contiguous_warp_is_one_line(self):
        addrs = np.arange(32) * 4.0 + 0x1000
        active = np.ones(32, dtype=bool)
        assert coalesce(addrs, active) == [0x1000]

    def test_stride_eight_is_two_lines(self):
        addrs = np.arange(32) * 8.0 + 0x1000
        active = np.ones(32, dtype=bool)
        assert coalesce(addrs, active) == [0x1000, 0x1080]

    def test_inactive_threads_ignored(self):
        addrs = np.arange(32) * 4.0
        active = np.zeros(32, dtype=bool)
        assert coalesce(addrs, active) == []

    def test_same_address_all_threads(self):
        addrs = np.full(32, 0x2004)
        active = np.ones(32, dtype=bool)
        assert coalesce(addrs, active) == [0x2000]

    def test_word_mask_stride4(self):
        addrs = np.arange(32) * 4.0 + 0x1000
        active = np.ones(32, dtype=bool)
        assert word_mask(0x1000, addrs, active) == (1 << 32) - 1

    def test_word_mask_stride8(self):
        addrs = np.arange(32) * 8.0 + 0x1000
        active = np.ones(32, dtype=bool)
        mask = word_mask(0x1000, addrs, active)
        assert mask == int("01" * 16, 2) or mask == sum(
            1 << (2 * i) for i in range(16))

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=1, max_value=64),
           st.lists(st.booleans(), min_size=32, max_size=32))
    @settings(max_examples=60)
    def test_property_lines_cover_active_addresses(self, base, stride,
                                                   active_bits):
        addrs = (np.arange(32) * stride * 4 + base * 4).astype(np.float64)
        active = np.array(active_bits)
        lines = coalesce(addrs, active)
        assert lines == sorted(set(lines))
        for addr in addrs[active]:
            assert line_of(int(addr)) in lines
        for line in lines:
            assert any(line_of(int(a)) == line for a in addrs[active])


class TestCache:
    def test_miss_then_hit(self):
        cache, backing, events, stats = make_cache()
        done = []
        cache.read(0x1000, 0, lambda t: done.append(t))
        _drain(events)
        assert len(backing.reads) == 1
        cache.read(0x1000, 200, lambda t: done.append(t))
        _drain(events)
        assert len(backing.reads) == 1           # second was a hit
        assert stats["l1.hits"] == 1 and stats["l1.misses"] == 1

    def test_secondary_miss_merges(self):
        cache, backing, events, stats = make_cache()
        done = []
        cache.read(0x1000, 0, lambda t: done.append("a"))
        cache.read(0x1000, 1, lambda t: done.append("b"))
        _drain(events)
        assert len(backing.reads) == 1
        assert sorted(done) == ["a", "b"]
        assert stats["l1.mshr_merged"] == 1

    def test_mshr_full_requests_not_lost(self):
        cache, backing, events, stats = make_cache(mshrs=2)
        done = []
        for i in range(8):
            cache.read(0x1000 + i * 128, 0, lambda t, i=i: done.append(i))
        _drain(events)
        assert sorted(done) == list(range(8))
        assert stats["l1.mshr_stalls"] > 0

    def test_eviction_lru(self):
        # 4-way, fill 5 lines of the same set: the oldest is evicted.
        cache, backing, events, stats = make_cache(size=4 * 128, ways=4)
        for i in range(5):
            cache.read(i * 128, i * 1000, lambda t: None)
            _drain(events)
        assert not cache.contains(0)
        assert cache.contains(4 * 128)
        assert stats["l1.evictions"] == 1

    def test_write_through_no_allocate(self):
        cache, backing, events, stats = make_cache()
        cache.write(0x3000, 0)
        _drain(events)
        assert backing.writes and not cache.contains(0x3000)

    def test_locked_line_survives_eviction_pressure(self):
        cache, backing, events, stats = make_cache(size=4 * 128, ways=4)
        cache.read(0, 0, lambda t: None, lock=True)
        _drain(events)
        assert cache.contains(0)
        for i in range(1, 8):
            cache.read(i * 128, i * 100, lambda t: None)
            _drain(events)
        assert cache.contains(0)                 # still locked
        cache.unlock(0)
        for i in range(8, 12):
            cache.read(i * 128, 2000 + i, lambda t: None)
            _drain(events)
        assert not cache.contains(0)             # unlocked: evictable

    def test_can_lock_respects_n_minus_1(self):
        cache, backing, events, stats = make_cache(size=4 * 128, ways=4)
        for i in range(3):
            assert cache.can_lock(i * 128)
            cache.read(i * 128, 0, lambda t: None, lock=True)
        _drain(events)
        assert not cache.can_lock(3 * 128)       # would lock all 4 ways
        cache.unlock(0)
        assert cache.can_lock(3 * 128)

    def test_can_lock_counts_pending_fills(self):
        cache, backing, events, stats = make_cache(size=4 * 128, ways=4)
        for i in range(3):
            cache.read(i * 128, 0, lambda t: None, lock=True)
        # Fills have not arrived yet; the pending locks must already count.
        assert not cache.can_lock(3 * 128)
        _drain(events)

    def test_fully_locked_set_bypasses_fill(self):
        cache, backing, events, stats = make_cache(size=4 * 128, ways=4)
        # Lock all four ways directly (bypassing can_lock, as racing
        # non-affine fills could).
        done = []
        for i in range(4):
            cache.read(i * 128, 0, lambda t: done.append(i), lock=True)
        _drain(events)
        cache.read(4 * 128, 100, lambda t: done.append(4))
        _drain(events)
        assert 4 in done                          # data still delivered
        assert not cache.contains(4 * 128)
        assert stats["l1.locked_bypass"] == 1

    def test_mshr_pressure_no_double_counting(self):
        """Regression: requests drained from the MSHR-wait queue used to
        re-enter ``read`` and re-increment accesses/misses (and pay the
        admission port twice).  Under forced MSHR pressure, accesses must
        equal the number of issued requests exactly."""
        cache, backing, events, stats = make_cache(mshrs=2)
        done = []
        for i in range(8):
            cache.read(0x1000 + i * 128, 0, lambda t, i=i: done.append(i))
        _drain(events)
        assert sorted(done) == list(range(8))
        assert stats["l1.mshr_stalls"] > 0
        assert stats["l1.accesses"] == 8
        assert stats["l1.misses"] == 8
        assert stats["l1.hits"] == 0
        assert stats["l1.hits"] + stats["l1.misses"] == \
            stats["l1.accesses"]

    def test_mshr_retry_hit_not_recounted(self):
        """A stalled request whose line is filled by the time it retries
        is delivered via the hit path but counted only once (as the miss
        it was on arrival)."""
        cache, backing, events, stats = make_cache(mshrs=1)
        done = []
        cache.read(0x8000, 0, lambda t: done.append("x"))    # holds MSHR
        cache.read(0x1000, 0, lambda t: done.append("a1"))   # stalls
        cache.read(0x1000, 0, lambda t: done.append("a2"))   # stalls too
        _drain(events)
        assert sorted(done) == ["a1", "a2", "x"]
        assert stats["l1.accesses"] == 3
        assert stats["l1.hits"] + stats["l1.misses"] == \
            stats["l1.accesses"]

    def test_mshr_pressure_identity_with_rehits(self):
        """hits + misses == accesses across a mixed stall/hit/merge mix."""
        cache, backing, events, stats = make_cache(mshrs=2)
        issued = 0
        for round_start in (0, 5000):
            for i in range(10):
                cache.read(0x2000 + (i % 6) * 128, round_start + i,
                           lambda t: None)
                issued += 1
            _drain(events)
        assert stats["l1.accesses"] == issued
        assert stats["l1.hits"] + stats["l1.misses"] == \
            stats["l1.accesses"]
        assert stats["l1.hits"] > 0

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=120))
    @settings(max_examples=30)
    def test_property_stat_identity_under_pressure(self, line_ids):
        cache, backing, events, stats = make_cache(mshrs=3)
        for i, lid in enumerate(line_ids):
            cache.read(lid * 128, i, lambda t: None)
        _drain(events)
        assert stats["l1.accesses"] == len(line_ids)
        assert stats["l1.hits"] + stats["l1.misses"] == \
            stats["l1.accesses"]

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=120))
    @settings(max_examples=30)
    def test_property_every_read_completes(self, line_ids):
        cache, backing, events, stats = make_cache(mshrs=3)
        done = []
        for i, lid in enumerate(line_ids):
            cache.read(lid * 128, i, lambda t, i=i: done.append(i))
        _drain(events)
        assert sorted(done) == list(range(len(line_ids)))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                              st.booleans()), min_size=1, max_size=80))
    @settings(max_examples=30)
    def test_property_lock_counts_never_negative(self, ops):
        cache, backing, events, stats = make_cache()
        for i, (lid, lock) in enumerate(ops):
            if lock and cache.can_lock(lid * 128):
                cache.read(lid * 128, i, lambda t: None, lock=True)
            else:
                cache.unlock(lid * 128)
            _drain(events)
        for ways in cache._sets:
            for line in ways:
                assert line.lock_count >= 0


class TestDRAM:
    def make(self, **kw):
        events = EventQueue()
        stats = Stats()
        dram = DRAM(DRAMConfig(**kw), events, stats)
        return dram, events, stats

    def test_read_completes_with_latency(self):
        dram, events, stats = self.make(latency=100)
        done = []
        dram.read(0x1000, 0, lambda t: done.append(t))
        _drain(events)
        assert len(done) == 1
        assert done[0] >= 100

    def test_row_hit_faster_than_miss(self):
        dram, events, stats = self.make(num_banks=1)
        times = []
        dram.read(0, 0, lambda t: times.append(t))
        _drain(events)
        dram.read(128, 10000, lambda t: times.append(t))   # same row
        _drain(events)
        assert stats["dram.row_hits"] == 1
        assert stats["dram.row_misses"] == 1

    def test_fr_fcfs_groups_rows(self):
        """Interleaved requests to two rows of one bank: FR-FCFS services
        the open row's requests together, yielding row hits."""
        dram, events, stats = self.make(num_banks=1, row_size=2048)
        rows = [0, 16 * 128, 128, 16 * 128 + 128, 256, 16 * 128 + 256]
        for i, addr in enumerate(rows):
            dram.read(addr, i, lambda t: None)
        _drain(events)
        # 6 accesses, 2 activations (one per row) at most 3.
        assert stats["dram.row_misses"] <= 3
        assert stats["dram.row_hits"] >= 3

    def test_banks_service_in_parallel(self):
        dram, events, stats = self.make(num_banks=16, latency=0,
                                        t_row_miss=20, burst_cycles=1)
        times = []
        for i in range(16):
            dram.read(i * 128, 0, lambda t: times.append(t))
        _drain(events)
        # All 16 banks activate concurrently: finish ~20 + bus, not 16*20.
        assert max(times) < 16 * 20

    def test_writes_counted(self):
        dram, events, stats = self.make()
        dram.write(0, 0)
        _drain(events)
        assert stats["dram.writes"] == 1

    def test_deep_bank_queue_linear_event_churn(self):
        """Regression: every arrival while a bank was busy used to
        schedule its own retry, so a K-deep queue cost O(K^2) events.
        With one pending kick per bank the total stays O(K)."""
        dram, events, stats = self.make(num_banks=1)
        scheduled = [0]
        real_schedule = events.schedule

        def counting(time, callback):
            scheduled[0] += 1
            real_schedule(time, callback)

        events.schedule = counting
        k = 60
        done = []
        for i in range(k):
            # Alternate rows so FR-FCFS stays exercised.
            dram.read((i % 2) * 16 * 128 + i * 128, 0,
                      lambda t, i=i: done.append(i))
        _drain(events)
        assert sorted(done) == list(range(k))
        # Arrival + kick + completion per request, plus slack: old code
        # needed ~K^2/2 (~1800) schedules here.
        assert scheduled[0] <= 6 * k

    def test_at_most_one_pending_kick_per_bank(self):
        dram, events, stats = self.make(num_banks=2)
        for i in range(20):
            dram.read(i * 128, 0, lambda t: None)
        # Let arrivals land, then check the guard while banks are busy.
        events.run_until(dram._pipe_in)
        assert all(isinstance(p, bool) for p in dram._pending_kick)
        _drain(events)
        assert dram._pending_kick == [False, False]

    @given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1,
                    max_size=100))
    @settings(max_examples=30)
    def test_property_all_reads_answered_in_order_free_system(self, lines):
        dram, events, stats = self.make()
        done = []
        for i, line in enumerate(lines):
            dram.read(line * 128, i * 2, lambda t, i=i: done.append(i))
        _drain(events)
        assert sorted(done) == list(range(len(lines)))


class TestChannelsAndPerfect:
    def test_latency_channel_adds_both_ways(self):
        events = EventQueue()
        backing = _Backing(events, latency=50)
        channel = LatencyChannel(backing, 40, events)
        done = []
        channel.read(0, 0, lambda t: done.append(t))
        _drain(events)
        assert done[0] >= 130                      # 40 + 50 + 40

    def test_perfect_memory(self):
        events = EventQueue()
        perfect = PerfectMemory(events)
        done = []
        perfect.read(0, 0, lambda t: done.append(t))
        _drain(events)
        assert done == [1]
        assert perfect.can_lock(0) and perfect.contains(0)
        assert not perfect.in_flight(0)
