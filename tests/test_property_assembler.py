"""Property test: assembler round-trip on randomly generated instructions.

Any instruction the ISA can represent must print to text that parses back
to an identical instruction.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    CmpOp,
    Immediate,
    Instruction,
    MemRef,
    MemSpace,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
    parse_instruction,
)
from repro.isa.instructions import ALU_BINARY, ALU_UNARY, SFU_OPS

names = st.from_regex(r"[a-oq-z][a-z0-9_]{0,6}", fullmatch=True)

registers = names.map(Register)
preds = st.integers(0, 9).map(lambda i: PredReg(f"p{i}"))
immediates = st.integers(-1000, 1000).map(lambda v: Immediate(float(v)))
specials = st.tuples(st.sampled_from(["tid", "ntid", "ctaid", "nctaid"]),
                     st.sampled_from(["x", "y", "z"])) \
    .map(lambda t: SpecialReg(*t))
params = names.map(Param)

sources = st.one_of(registers, immediates, specials, params)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["binary", "unary", "sfu", "mad", "selp",
                                 "setp", "ld", "st", "atom", "bar",
                                 "guarded"]))
    if kind == "binary":
        opcode = draw(st.sampled_from(sorted(ALU_BINARY,
                                             key=lambda o: o.value)))
        return Instruction(opcode, dsts=(draw(registers),),
                           srcs=(draw(sources), draw(sources)))
    if kind == "unary":
        opcode = draw(st.sampled_from(sorted(ALU_UNARY,
                                             key=lambda o: o.value)))
        return Instruction(opcode, dsts=(draw(registers),),
                           srcs=(draw(sources),))
    if kind == "sfu":
        opcode = draw(st.sampled_from(sorted(SFU_OPS,
                                             key=lambda o: o.value)))
        return Instruction(opcode, dsts=(draw(registers),),
                           srcs=(draw(sources),))
    if kind == "mad":
        return Instruction(Opcode.MAD, dsts=(draw(registers),),
                           srcs=(draw(sources), draw(sources),
                                 draw(sources)))
    if kind == "selp":
        return Instruction(Opcode.SELP, dsts=(draw(registers),),
                           srcs=(draw(sources), draw(sources),
                                 draw(preds)))
    if kind == "setp":
        return Instruction(Opcode.SETP, dsts=(draw(preds),),
                           srcs=(draw(sources), draw(sources)),
                           cmp=draw(st.sampled_from(list(CmpOp))))
    space = draw(st.sampled_from(list(MemSpace)))
    disp = draw(st.sampled_from([0, 4, 8, 128]))
    if kind == "ld":
        return Instruction(Opcode.LD, dsts=(draw(registers),),
                           srcs=(MemRef(draw(registers), disp),),
                           space=space)
    if kind == "st":
        return Instruction(Opcode.ST,
                           dsts=(MemRef(draw(registers), disp),),
                           srcs=(draw(sources),), space=space)
    if kind == "atom":
        return Instruction(Opcode.ATOM,
                           dsts=(MemRef(draw(registers), disp),),
                           srcs=(draw(sources),), space=space)
    if kind == "bar":
        return Instruction(Opcode.BAR)
    # guarded ALU
    return Instruction(Opcode.ADD, dsts=(draw(registers),),
                       srcs=(draw(sources), draw(sources)),
                       guard=draw(preds),
                       guard_negated=draw(st.booleans()))


def _key(inst: Instruction):
    return (inst.opcode, inst.dsts, inst.srcs, inst.guard,
            inst.guard_negated, inst.cmp, inst.space, inst.target)


@given(instructions())
@settings(max_examples=300)
def test_round_trip(inst):
    reparsed = parse_instruction(str(inst))
    assert _key(reparsed) == _key(inst), f"{inst} -> {reparsed}"


@given(st.lists(instructions(), min_size=1, max_size=20))
@settings(max_examples=50)
def test_kernel_source_round_trip(insts):
    from repro.isa import Kernel, parse_kernel
    insts = list(insts) + [Instruction(Opcode.EXIT)]
    params = sorted({op.name for i in insts
                     for op in i.srcs if isinstance(op, Param)})
    kernel = Kernel(name="rt", params=tuple(params), instructions=insts,
                    labels={})
    reparsed = parse_kernel(kernel.source())
    assert [_key(i) for i in reparsed.instructions] == \
        [_key(i) for i in kernel.instructions]
