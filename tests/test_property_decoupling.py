"""Property-based end-to-end test: for randomly generated kernels built
from affine-eligible operations, the decoupled (DAC) execution must produce
a memory image bit-identical to the baseline's.

This exercises the whole stack at once — classification, stream splitting,
tuple algebra, expansion, queue ordering — against the functional executor
as an oracle.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import run_dac
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, simulate

CFG = GPUConfig(num_sms=1)

#: Operations the generator may apply to index registers.  (op, needs_imm)
_OPS = ["add_rr", "add_ri", "sub_ri", "mul_ri", "shl_ri", "min_ri",
        "max_ri", "rem_ri"]

ARRAY_WORDS = 256                      # data array size (power of two)
MOD_BYTES = ARRAY_WORDS * 4


@st.composite
def kernels(draw):
    """A random kernel: affine index arithmetic, bounded loads, a store."""
    lines = [
        "mul r0, %ctaid.x, %ntid.x;",
        "add tid, %tid.x, r0;",
        "mov a0, tid;",
        "mov a1, 3;",
    ]
    regs = ["a0", "a1"]
    n_ops = draw(st.integers(min_value=1, max_value=8))
    for i in range(n_ops):
        op = draw(st.sampled_from(_OPS))
        dst = f"a{len(regs)}"
        src = draw(st.sampled_from(regs))
        if op == "add_rr":
            src2 = draw(st.sampled_from(regs))
            lines.append(f"add {dst}, {src}, {src2};")
        elif op == "add_ri":
            lines.append(f"add {dst}, {src}, "
                         f"{draw(st.integers(0, 64))};")
        elif op == "sub_ri":
            lines.append(f"sub {dst}, {src}, "
                         f"{draw(st.integers(0, 64))};")
        elif op == "mul_ri":
            lines.append(f"mul {dst}, {src}, {draw(st.integers(0, 8))};")
        elif op == "shl_ri":
            lines.append(f"shl {dst}, {src}, {draw(st.integers(0, 3))};")
        elif op == "min_ri":
            lines.append(f"min {dst}, {src}, {draw(st.integers(0, 128))};")
        elif op == "max_ri":
            lines.append(f"max {dst}, {src}, {draw(st.integers(0, 128))};")
        elif op == "rem_ri":
            divisor = draw(st.sampled_from([16, 64, 256]))
            lines.append(f"rem {dst}, {src}, {divisor};")
        regs.append(dst)

    # Optionally a divergent guarded override of one index register
    # (exercises §4.6 divergent tuples).
    if draw(st.booleans()):
        victim = draw(st.sampled_from(regs))
        bound = draw(st.integers(1, 63))
        lines.append(f"setp.lt p1, tid, {bound};")
        lines.append(f"@p1 mov {victim}, {draw(st.integers(0, 32))};")

    # 1-3 loads at wrapped (in-bounds, word-aligned) addresses.
    n_loads = draw(st.integers(min_value=1, max_value=3))
    acc_terms = []
    for i in range(n_loads):
        idx = draw(st.sampled_from(regs))
        lines.append(f"mul b{i}, {idx}, 4;")
        lines.append(f"rem c{i}, b{i}, {MOD_BYTES};")
        lines.append(f"add d{i}, param.data, c{i};")
        lines.append(f"ld.global v{i}, [d{i}];")
        acc_terms.append(f"v{i}")
    lines.append(f"mov acc, {acc_terms[0]};")
    for term in acc_terms[1:]:
        lines.append(f"add acc, acc, {term};")

    lines.append("mul ob, tid, 4;")
    lines.append("add oaddr, param.out, ob;")
    lines.append("st.global [oaddr], acc;")
    return "\n".join(lines)


def _run(source, technique):
    mem = GlobalMemory(1 << 20)
    rng = np.random.default_rng(7)
    data = mem.alloc_array(rng.integers(0, 1000, ARRAY_WORDS))
    out = mem.alloc(128)
    kernel = parse_kernel(source, name="prop",
                          params=("data", "out"))
    launch = KernelLaunch(kernel, (2, 1, 1), (64, 1, 1),
                          dict(data=data, out=out), mem)
    if technique == "dac":
        result = run_dac(launch, CFG)
    else:
        result = simulate(launch, CFG)
    return result, mem.words


@given(kernels())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_dac_matches_baseline_on_random_affine_kernels(source):
    base_result, base_words = _run(source, "baseline")
    dac_result, dac_words = _run(source, "dac")
    assert np.array_equal(base_words, dac_words), \
        f"functional mismatch for kernel:\n{source}"
    stats = dac_result.stats
    assert stats["dac.leftover_records"] == 0
    assert stats["dac.affine_unfinished"] == 0


@given(kernels())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cae_and_mta_match_baseline_on_random_kernels(source):
    _, base_words = _run(source, "baseline")
    for technique in ("cae", "mta"):
        mem = _run(source, technique)[1]
        assert np.array_equal(base_words, mem), \
            f"{technique} mismatch for kernel:\n{source}"
