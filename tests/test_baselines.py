"""Tests for the CAE and MTA baseline techniques."""

import numpy as np

from repro.baselines.cae import _value_stride
from repro.baselines.mta import PrefetchBuffer
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, simulate

CFG = GPUConfig(num_sms=1)


def _run(source, setup, grid=(1, 1, 1), block=(64, 1, 1), technique="cae",
         config=CFG):
    mem = GlobalMemory(1 << 20)
    params = setup(mem)
    kernel = parse_kernel(source, name="t", params=tuple(params))
    launch = KernelLaunch(kernel, grid, block, params, mem)
    result = simulate(launch, config.with_technique(technique))
    return result, mem, params


class TestValueStride:
    def test_scalar(self):
        assert _value_stride(5.0) == 0.0
        assert _value_stride(np.full(32, 7.0)) == 0.0

    def test_affine(self):
        assert _value_stride(np.arange(32) * 4.0) == 4.0

    def test_non_affine(self):
        values = np.arange(32, dtype=float)
        values[7] = 100.0
        assert _value_stride(values) is None


class TestCAE:
    def test_detects_affine_chain(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 4;
            add addr, param.O, r1;
            st.global [addr], tid;
        """
        result, mem, params = _run(src, lambda m: dict(O=m.alloc(64)))
        # mul/add/mul/add are all affine-eligible; the store is not.
        assert result.stats["cae.affine_instructions"] == 2 * 4

    def test_loads_break_the_tag(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 4;
            add addr, param.X, r1;
            ld.global v, [addr];
            add w, v, 1;
            add oaddr, param.O, r1;
            st.global [oaddr], w;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64) ** 2),
                        O=mem.alloc(64))

        result, mem, params = _run(src, setup)
        # 'add w, v, 1' consumes a loaded (non-affine) value.
        # Affine: mul, add, mul, add, add(oaddr) = 5 per warp.
        assert result.stats["cae.affine_instructions"] == 2 * 5
        got = mem.read_array(params["O"], 64)
        np.testing.assert_array_equal(got, np.arange(64) ** 2 + 1)

    def test_no_affine_after_divergence(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            setp.lt p0, tid, 16;
            @!p0 bra SKIP;
            mul r1, tid, 4;
        SKIP:
            mul r2, tid, 4;
            add oaddr, param.O, r2;
            st.global [oaddr], tid;
        """
        result, mem, params = _run(src, lambda m: dict(O=m.alloc(64)))
        # 'mul r1' executes under divergence in warp 0 - not affine there.
        # Warp 1 skips it entirely (uniform branch).
        # Eligible per warp: mul r0, add tid, setp, mul r2, add oaddr = 5.
        # Warp 0's 'mul r1' runs under divergence and must NOT be counted
        # (it would make the total 11).
        assert result.stats["cae.affine_instructions"] == 2 * 5

    def test_sub32_block_dimension_defeats_stride(self):
        """BP-style 16-wide rows: tid.y varies within the warp so row-major
        products are not a single arithmetic sequence (paper §5.4)."""
        src = """
            mul r1, %tid.y, 100;
            add v, r1, %tid.x;
            mul r2, v, 4;
            add oaddr, param.O, r2;
            st.global [oaddr], v;
        """
        result, mem, params = _run(src, lambda m: dict(O=m.alloc(1024)),
                                   block=(16, 4, 1))
        # v = 100*ty + tx has a stride discontinuity at lane 16.
        assert result.stats["cae.affine_instructions"] == 0

    def test_faster_than_baseline_on_affine_heavy_kernel(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mov acc, 0;
            mov i, 0;
        LOOP:
            mul r1, i, 8;
            add r2, r1, tid;
            mul r3, r2, 2;
            add r4, r3, i;
            add acc, acc, r4;
            add i, i, 1;
            setp.lt p0, i, 32;
            @p0 bra LOOP;
            mul r5, tid, 4;
            add oaddr, param.O, r5;
            st.global [oaddr], acc;
        """

        def setup(mem):
            return dict(O=mem.alloc(512))

        base, mem0, p0 = _run(src, setup, grid=(8, 1, 1),
                              technique="baseline")
        cae, mem1, p1 = _run(src, setup, grid=(8, 1, 1), technique="cae")
        np.testing.assert_array_equal(mem0.words, mem1.words)
        assert cae.cycles < base.cycles


class TestPrefetchBuffer:
    def test_insert_fill_use(self):
        buf = PrefetchBuffer(2)
        buf.insert_pending(0x1000)
        assert 0x1000 in buf
        assert not buf.state(0x1000)["ready"]
        buf.fill(0x1000)
        assert buf.state(0x1000)["ready"]
        buf.mark_used(0x1000)
        assert buf.state(0x1000)["used"]

    def test_fifo_eviction(self):
        buf = PrefetchBuffer(2)
        buf.insert_pending(1)
        buf.insert_pending(2)
        evicted = buf.insert_pending(3)
        assert [v["line"] for v in evicted] == [1]
        assert 1 not in buf and 2 in buf and 3 in buf

    def test_eviction_preserves_waiters(self):
        buf = PrefetchBuffer(1)
        buf.insert_pending(1)
        buf.state(1)["waiters"].append("cb")
        evicted = buf.insert_pending(2)
        assert evicted[0]["waiters"] == ["cb"]

    def test_fill_after_eviction_is_noop(self):
        buf = PrefetchBuffer(1)
        buf.insert_pending(1)
        buf.insert_pending(2)
        assert buf.fill(1) == []


class TestMTA:
    STREAM = """
        mul r0, %ctaid.x, %ntid.x;
        add tid, %tid.x, r0;
        mov acc, 0;
        mov i, 0;
    LOOP:
        mul r1, i, param.nb;
        mul r2, tid, 4;
        add r3, r1, r2;
        add a1, param.X, r3;
        ld.global v, [a1];
        add acc, acc, v;
        add i, i, 1;
        setp.lt p0, i, 24;
        @p0 bra LOOP;
        mul r4, tid, 4;
        add oaddr, param.O, r4;
        st.global [oaddr], acc;
    """

    def _setup(self, mem):
        return dict(X=mem.alloc_array(np.arange(128 * 24)),
                    O=mem.alloc(128), nb=128 * 4)

    def test_prefetches_issued_and_useful(self):
        result, mem, params = self._run_stream("mta")
        assert result.stats["mta.prefetches"] > 0
        assert result.stats["mta.buffer_hits"] > 0

    def test_functionally_identical_to_baseline(self):
        base, mem0, _ = self._run_stream("baseline")
        mta, mem1, _ = self._run_stream("mta")
        np.testing.assert_array_equal(mem0.words, mem1.words)

    def test_speeds_up_streaming(self):
        base, _, _ = self._run_stream("baseline")
        mta, _, _ = self._run_stream("mta")
        assert mta.cycles < base.cycles

    def _run_stream(self, technique):
        return _run(self.STREAM, self._setup, grid=(2, 1, 1),
                    block=(64, 1, 1), technique=technique,
                    config=GPUConfig(num_sms=1))
