"""Property tests for the DAC hardware queues (ATQ, PerWarpQueue).

Randomized interleavings of register/push/pop/drop operations check the
invariants the simulator relies on: per-CTA FIFO order, the shared-budget
accounting behind ``has_space()``, and clean teardown via ``drop_cta()``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import ATQ, BarrierMarker, PerWarpQueue, TupleEntry


def entry(tag: int) -> TupleEntry:
    return TupleEntry(kind="data", queue_id=tag, expr=None,
                      mask=np.ones(32, dtype=bool))


#: One ATQ operation: (op, cta, tag). ``tag`` doubles as a sequence number.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["push", "pop", "drop", "register",
                               "barrier"]),
              st.integers(0, 3)),
    max_size=200)


class TestATQ:
    @given(capacity=st.integers(1, 8), ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_interleavings(self, capacity, ops):
        """Under any interleaving: ``has_space`` is honoured, per-CTA FIFO
        order holds, the shared count matches the live entries, and
        ``drop_cta`` leaves no residuals."""
        atq = ATQ(capacity)
        model: dict[int, list] = {}          # cta -> queued tags, in order
        next_tag = 0
        for op, cta in ops:
            if op == "register":
                atq.register_cta(cta)
                model.setdefault(cta, [])
            elif op == "push" and cta in model:
                if atq.has_space():
                    atq.push(cta, entry(next_tag))
                    model[cta].append(next_tag)
                    next_tag += 1
                else:
                    with pytest.raises(RuntimeError):
                        atq.push(cta, entry(-1))
            elif op == "barrier" and cta in model:
                # Markers ride the FIFO but consume no budget.
                before = atq.has_space()
                atq.push(cta, BarrierMarker(0))
                model[cta].append("bar")
                assert atq.has_space() == before
            elif op == "pop" and cta in model and model[cta]:
                expect = model[cta].pop(0)
                got = atq.pop(cta)
                if expect == "bar":
                    assert isinstance(got, BarrierMarker)
                else:
                    assert isinstance(got, TupleEntry)
                    assert got.queue_id == expect
            elif op == "drop" and cta in model:
                leftovers = atq.drop_cta(cta)
                tags = [e.queue_id for e in leftovers
                        if isinstance(e, TupleEntry)]
                assert tags == [t for t in model.pop(cta) if t != "bar"]
                assert cta not in atq.cta_keys()
            # Invariants that hold after every operation:
            live = sum(1 for q in model.values()
                       for t in q if t != "bar")
            assert len(atq) == live
            assert atq.has_space() == (live < capacity)
            for key in model:
                head = atq.head(key)
                if model[key]:
                    if model[key][0] == "bar":
                        assert isinstance(head, BarrierMarker)
                    else:
                        assert head.queue_id == model[key][0]
                else:
                    assert head is None

    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_drop_then_reregister(self, ops):
        """A dropped CTA key can be re-registered and starts empty."""
        atq = ATQ(16)
        atq.register_cta(1)
        for op, _ in ops:
            if op == "push" and atq.has_space():
                atq.push(1, entry(0))
        atq.drop_cta(1)
        assert len(atq) == 0
        atq.register_cta(1)
        assert atq.head(1) is None
        atq.push(1, entry(99))
        assert atq.pop(1).queue_id == 99


class TestPerWarpQueue:
    @given(capacity=st.integers(1, 8),
           ops=st.lists(st.sampled_from(["push", "pop", "drain"]),
                        max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_interleavings(self, capacity, ops):
        q = PerWarpQueue(capacity)
        model = []
        next_tag = 0
        for op in ops:
            if op == "push":
                if q.full():
                    assert len(model) == capacity
                    with pytest.raises(RuntimeError):
                        q.push(next_tag)
                else:
                    q.push(next_tag)
                    model.append(next_tag)
                    next_tag += 1
            elif op == "pop" and model:
                assert q.pop() == model.pop(0)
            elif op == "drain":
                assert q.drain() == model
                model = []
            assert len(q) == len(model)
            assert q.full() == (len(model) >= capacity)
            assert q.head() == (model[0] if model else None)
