"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "LIB"])
        assert args.technique == "dac"
        assert args.scale == "tiny"

    def test_bad_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "LIB", "--technique", "x"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Compute Intensive" in out and "BFS" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "GTX480" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "Overhead" in capsys.readouterr().out

    def test_run_baseline(self, capsys):
        assert main(["run", "CS", "--technique", "baseline",
                     "--sms", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "warp instructions" in out

    def test_run_dac_with_stats(self, capsys):
        assert main(["run", "CS", "--sms", "2", "--stats", "dac."]) == 0
        out = capsys.readouterr().out
        assert "affine warp insts" in out
        assert "dac.records" in out

    def test_compare(self, capsys):
        assert main(["compare", "CS", "--sms", "2"]) == 0
        out = capsys.readouterr().out
        for technique in ("baseline", "cae", "mta", "dac"):
            assert technique in out

    def test_decouple_benchmark(self, capsys):
        assert main(["decouple", "LIB"]) == 0
        out = capsys.readouterr().out
        assert "enq.data" in out and "deq.data" in out
        assert "verified" in out

    def test_decouple_file(self, tmp_path, capsys):
        path = tmp_path / "k.asm"
        path.write_text("""
            .kernel t (A)
            mul r1, %tid.x, 4;
            add a1, param.A, r1;
            ld.global v, [a1];
            st.global [a1], v;
        """)
        assert main(["decouple", "--file", str(path)]) == 0
        assert "decoupled" in capsys.readouterr().out

    def test_decouple_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["decouple"])

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99", "--sms", "2"]) == 2

    def test_figures_fig6(self, capsys):
        assert main(["figures", "fig6", "--sms", "2"]) == 0
        assert "Figure 6" in capsys.readouterr().out
