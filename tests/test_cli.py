"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.harness import clear_cache, configure_cache


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    """CLI commands configure the process-wide disk cache; point its
    default at a per-test directory and reset afterwards so no state
    leaks into other test modules (or the user's real cache)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield
    configure_cache(enabled=False)
    clear_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "LIB"])
        assert args.technique == "dac"
        assert args.scale == "tiny"
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_harness_flags(self):
        args = build_parser().parse_args(
            ["figures", "fig16", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--no-cache"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_bad_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "LIB", "--technique", "x"])

    def test_service_flags(self):
        args = build_parser().parse_args(
            ["compare", "CP", "--retry-quarantined",
             "--service", "/tmp/d.sock"])
        assert args.retry_quarantined
        assert args.service == "/tmp/d.sock"
        args = build_parser().parse_args(["compare", "CP", "--no-service"])
        assert args.no_service and not args.retry_quarantined

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket is None and args.state is None
        assert args.queue_limit == 64
        assert args.timeout == 120.0
        assert args.strikes == 2
        args = build_parser().parse_args(
            ["serve", "--socket", "/tmp/d.sock", "--workers", "3",
             "--timeout", "5", "--strikes", "1", "--no-cache"])
        assert args.socket == "/tmp/d.sock"
        assert args.workers == 3 and args.no_cache


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Compute Intensive" in out and "BFS" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "GTX480" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "Overhead" in capsys.readouterr().out

    def test_run_baseline(self, capsys):
        assert main(["run", "CS", "--technique", "baseline",
                     "--sms", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "warp instructions" in out

    def test_run_dac_with_stats(self, capsys):
        assert main(["run", "CS", "--sms", "2", "--stats", "dac."]) == 0
        out = capsys.readouterr().out
        assert "affine warp insts" in out
        assert "dac.records" in out

    def test_run_no_cache(self, capsys):
        assert main(["run", "CS", "--technique", "baseline", "--sms", "2",
                     "--no-cache"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_run_warm_from_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "warm")
        argv = ["run", "CS", "--technique", "baseline", "--sms", "2",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        clear_cache()
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_compare(self, capsys):
        assert main(["compare", "CS", "--sms", "2"]) == 0
        out = capsys.readouterr().out
        for technique in ("baseline", "cae", "mta", "dac"):
            assert technique in out

    def test_decouple_benchmark(self, capsys):
        assert main(["decouple", "LIB"]) == 0
        out = capsys.readouterr().out
        assert "enq.data" in out and "deq.data" in out
        assert "verified" in out

    def test_decouple_file(self, tmp_path, capsys):
        path = tmp_path / "k.asm"
        path.write_text("""
            .kernel t (A)
            mul r1, %tid.x, 4;
            add a1, param.A, r1;
            ld.global v, [a1];
            st.global [a1], v;
        """)
        assert main(["decouple", "--file", str(path)]) == 0
        assert "decoupled" in capsys.readouterr().out

    def test_decouple_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["decouple"])

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99", "--sms", "2"]) == 2

    def test_figures_fig6(self, capsys):
        assert main(["figures", "fig6", "--sms", "2"]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestFaultsCommand:
    def test_campaign_detects_or_survives(self, capsys):
        assert main(["faults", "--seeds", "0:2",
                     "--classes", "atq_drop,dram_delay"]) == 0
        out = capsys.readouterr().out
        assert "detect-or-survive" in out
        assert "no silent failures" in out

    def test_rejects_unknown_class(self, capsys):
        assert main(["faults", "--classes", "rowhammer"]) == 2
        assert "unknown fault class" in capsys.readouterr().err

    def test_safe_mode_falls_back(self, capsys):
        assert main(["faults", "--seeds", "0:1",
                     "--classes", "atq_drop", "--safe-mode"]) == 0
        assert "fallback=1" in capsys.readouterr().out


class TestCertifyCommand:
    def test_certify_benchmarks(self, capsys):
        assert main(["certify", "ST", "CS"]) == 0
        out = capsys.readouterr().out
        assert "== ST:" in out and "proven equivalent" in out
        assert "certify: 2 target(s) clean" in out

    def test_certify_fuzz_seeds(self, capsys):
        assert main(["certify", "--fuzz", "0:2"]) == 0
        out = capsys.readouterr().out
        assert "== fuzz-0:" in out and "== fuzz-1:" in out

    def test_certify_json(self, capsys):
        import json
        assert main(["certify", "ST", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ST"]["errors"] == 0

    def test_certify_unknown_benchmark(self, capsys):
        assert main(["certify", "NOPE"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_certify_campaign_single_class(self, capsys):
        assert main(["certify", "--campaign",
                     "--classes", "barrier_drop"]) in (0, 1)
        out = capsys.readouterr().out
        assert "mutation campaign" in out
        assert "SILENT ESCAPE" not in out

    def test_certify_campaign_rejects_unknown_class(self, capsys):
        assert main(["certify", "--campaign", "--classes", "bitrot"]) == 2
        assert "unknown mutation class" in capsys.readouterr().err
