"""Determinism regressions: repeated simulations of the same launch are
bit-identical — cycle counts and every Stats counter — with and without
tracing, and tracing itself never perturbs the simulation."""

import pytest

from repro.harness.runner import TECHNIQUES, experiment_config, run_one
from repro.trace import Tracer

CONFIG = experiment_config(num_sms=2)


def fresh_run(technique, trace=None):
    return run_one("CP", technique, "tiny", CONFIG, use_cache=False,
                   trace=trace)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_repeat_runs_identical(technique):
    a = fresh_run(technique)
    b = fresh_run(technique)
    assert a.cycles == b.cycles
    assert a.stats.as_dict() == b.stats.as_dict()


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_tracing_is_passive(technique):
    """A traced run is cycle-exact with an untraced one, and its Stats
    are a strict superset (the ``issue.*`` attribution buckets)."""
    plain = fresh_run(technique)
    traced = fresh_run(technique, trace=Tracer())
    assert traced.cycles == plain.cycles
    plain_stats = plain.stats.as_dict()
    traced_stats = traced.stats.as_dict()
    extras = set(traced_stats) - set(plain_stats)
    assert extras and all(key.startswith("issue.") for key in extras)
    assert {k: v for k, v in traced_stats.items()
            if not k.startswith("issue.")} == plain_stats


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_repeat_traced_runs_identical(technique):
    ta, tb = Tracer(), Tracer()
    a = fresh_run(technique, trace=ta)
    b = fresh_run(technique, trace=tb)
    assert a.cycles == b.cycles
    assert a.stats.as_dict() == b.stats.as_dict()
    assert ta.events == tb.events
    assert ta.samples == tb.samples
    assert ta.stall_cycles == tb.stall_cycles


def test_untraced_runs_carry_no_attribution():
    stats = fresh_run("dac").stats.as_dict()
    assert not any(key.startswith("issue.") for key in stats)
