"""Unit + property tests for affine tuple algebra (paper §3, §4.4, §4.6).

The central invariant: every tuple operation must agree with performing the
same arithmetic on the concrete per-thread values.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.affine import (
    AffineError,
    AffineTuple,
    ClampExpr,
    DivergentSet,
    scalar,
)

TX = np.arange(32, dtype=np.float64)
TY = np.zeros(32)
TZ = np.zeros(32)


def evaluate(t):
    return t.evaluate(TX, TY, TZ)


small_ints = st.integers(min_value=-100, max_value=100)


@st.composite
def tuples(draw, allow_mod=False):
    base = draw(small_ints)
    ox = draw(small_ints)
    t = AffineTuple(float(base), (float(ox), 0.0, 0.0))
    if allow_mod and draw(st.booleans()):
        divisor = draw(st.integers(min_value=1, max_value=64))
        t = t.mod(scalar(divisor * 4))
    return t


class TestBasics:
    def test_paper_figure1(self):
        a = AffineTuple(0x100, (4.0, 0.0, 0.0))
        b = scalar(0x200)
        c = a.add(b)
        assert c.base == 0x300 and c.offsets[0] == 4.0

    def test_scalar_properties(self):
        assert scalar(5).is_scalar
        assert scalar(5).scalar_value == 5
        assert not AffineTuple(0, (1, 0, 0)).is_scalar

    def test_scalar_value_raises_for_affine(self):
        with pytest.raises(AffineError):
            AffineTuple(0, (1, 0, 0)).scalar_value

    def test_mul_requires_scalar_side(self):
        affine = AffineTuple(0, (1, 0, 0))
        with pytest.raises(AffineError):
            affine.mul(affine)

    def test_shl(self):
        t = AffineTuple(2, (1, 0, 0)).shl(scalar(3))
        np.testing.assert_array_equal(evaluate(t), (2 + TX) * 8)

    def test_shr_divisible(self):
        t = AffineTuple(8, (4, 0, 0)).shr(scalar(2))
        np.testing.assert_array_equal(evaluate(t), (8 + 4 * TX) / 4)

    def test_shr_with_carries_rejected(self):
        with pytest.raises(AffineError):
            AffineTuple(1, (4, 0, 0)).shr(scalar(1))

    def test_shr_scalar_exact(self):
        assert scalar(7).shr(scalar(1)).scalar_value == 3


class TestModTuples:
    def test_mod_matches_concrete(self):
        t = AffineTuple(100, (4, 0, 0)).mod(scalar(64))
        np.testing.assert_array_equal(evaluate(t),
                                      np.mod(100 + 4 * TX, 64))

    def test_mod_add_scalar(self):
        t = AffineTuple(100, (4, 0, 0)).mod(scalar(64)).add(scalar(1000))
        np.testing.assert_array_equal(evaluate(t),
                                      1000 + np.mod(100 + 4 * TX, 64))

    def test_mod_scale(self):
        t = AffineTuple(100, (4, 0, 0)).mod(scalar(64)).scale(2.0)
        np.testing.assert_array_equal(evaluate(t),
                                      2 * np.mod(100 + 4 * TX, 64))

    def test_mod_of_scalar_folds(self):
        t = scalar(100).mod(scalar(64))
        assert t.is_scalar and t.scalar_value == 36

    def test_mod_restrictions(self):
        m = AffineTuple(0, (1, 0, 0)).mod(scalar(8))
        with pytest.raises(AffineError):
            m.mod(scalar(4))
        with pytest.raises(AffineError):
            m.add(m)
        with pytest.raises(AffineError):
            m.negate()
        with pytest.raises(AffineError):
            m.scale(-1.0)

    def test_mod_requires_positive_scalar_divisor(self):
        with pytest.raises(AffineError):
            AffineTuple(0, (1, 0, 0)).mod(AffineTuple(0, (1, 0, 0)))
        with pytest.raises(AffineError):
            AffineTuple(0, (1, 0, 0)).mod(scalar(0))


class TestClamp:
    def test_min_matches_concrete(self):
        c = ClampExpr("min", (AffineTuple(0, (2, 0, 0)), scalar(20)))
        np.testing.assert_array_equal(evaluate(c),
                                      np.minimum(2 * TX, 20))

    def test_add_distributes(self):
        c = ClampExpr("min", (AffineTuple(0, (2, 0, 0)), scalar(20)))
        shifted = c.add(AffineTuple(5, (1, 0, 0)))
        np.testing.assert_array_equal(
            evaluate(shifted), np.minimum(2 * TX, 20) + 5 + TX)

    def test_negative_scale_swaps_min_max(self):
        c = ClampExpr("min", (AffineTuple(0, (2, 0, 0)), scalar(20)))
        neg = c.scale(-3.0)
        np.testing.assert_array_equal(evaluate(neg),
                                      -3 * np.minimum(2 * TX, 20))

    def test_abs_does_not_distribute_add(self):
        c = ClampExpr("abs", (AffineTuple(-16, (1, 0, 0)),))
        with pytest.raises(AffineError):
            c.add(scalar(1))

    def test_is_scalar(self):
        assert ClampExpr("min", (scalar(3), scalar(5))).is_scalar
        assert ClampExpr("min", (scalar(3), scalar(5))).scalar_value == 3


class TestDivergentSet:
    def test_evaluate_with_conditions(self):
        cond = TX < 10
        ds = DivergentSet(((0, scalar(0)),
                           (None, AffineTuple(0, (4, 0, 0)))))
        values = ds.evaluate_with(TX, TY, TZ, {0: cond})
        np.testing.assert_array_equal(values,
                                      np.where(cond, 0.0, 4 * TX))

    def test_add_distributes(self):
        ds = DivergentSet(((0, scalar(0)),
                           (None, AffineTuple(0, (4, 0, 0)))))
        shifted = ds.add(scalar(100))
        values = shifted.evaluate_with(TX, TY, TZ, {0: TX < 10})
        np.testing.assert_array_equal(
            values, 100 + np.where(TX < 10, 0.0, 4 * TX))

    def test_alternative_cap(self):
        alts = tuple((i, scalar(i)) for i in range(5))
        with pytest.raises(AffineError):
            DivergentSet(alts)


class TestProperties:
    @given(tuples(), tuples())
    def test_add_matches_concrete(self, a, b):
        np.testing.assert_allclose(evaluate(a.add(b)),
                                   evaluate(a) + evaluate(b))

    @given(tuples(), small_ints)
    def test_scale_matches_concrete(self, a, factor):
        np.testing.assert_allclose(evaluate(a.scale(float(factor))),
                                   evaluate(a) * factor)

    @given(tuples(), tuples())
    def test_sub_matches_concrete(self, a, b):
        np.testing.assert_allclose(evaluate(a.sub(b)),
                                   evaluate(a) - evaluate(b))

    @given(tuples(allow_mod=True), small_ints.filter(lambda v: v >= 0))
    def test_mod_tuple_add_scalar(self, a, s):
        np.testing.assert_allclose(evaluate(a.add(scalar(s))),
                                   evaluate(a) + s)

    @given(tuples(allow_mod=True),
           st.integers(min_value=0, max_value=50))
    def test_mod_tuple_scale_nonneg(self, a, s):
        np.testing.assert_allclose(evaluate(a.scale(float(s))),
                                   evaluate(a) * s)

    @given(tuples(), st.integers(min_value=1, max_value=512))
    def test_mod_matches_numpy(self, a, divisor):
        np.testing.assert_allclose(evaluate(a.mod(scalar(divisor))),
                                   np.mod(evaluate(a), divisor))
