"""Tests for the multiprocess grid executor: bit-identical results,
memo-cache installation, and graceful serial fallback on worker failure."""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.harness import (
    clear_cache,
    configure_cache,
    experiment_config,
    run_suite,
)
from repro.harness import parallel, runner
from repro.harness.parallel import default_jobs, run_grid

CFG = experiment_config(num_sms=2)
ABBRS = ["CP", "LIB", "ST"]
TECHS = ("baseline", "dac")


@pytest.fixture(autouse=True)
def _no_disk_cache():
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()


def test_parallel_suite_bit_identical_to_serial():
    """Acceptance criterion: --jobs N produces the same RunResult stats,
    bit for bit, as a serial run."""
    serial = run_suite(ABBRS, "tiny", CFG, techniques=TECHS)
    clear_cache()
    par = run_suite(ABBRS, "tiny", CFG, techniques=TECHS, jobs=2)
    for abbr in ABBRS:
        for tech in TECHS:
            assert par[abbr][tech].cycles == serial[abbr][tech].cycles
            assert par[abbr][tech].stats.as_dict() == \
                serial[abbr][tech].stats.as_dict()


def test_run_grid_installs_into_memo_cache(monkeypatch):
    tasks = [(a, t, CFG) for a in ABBRS[:2] for t in TECHS]
    results = run_grid(tasks, "tiny", jobs=2)
    assert set(results) == set(tasks)
    for abbr, tech, config in tasks:
        assert runner.is_cached(abbr, tech, "tiny", config)
    # The grid results now serve the serial path without simulating.
    calls = []
    real = runner.simulate_launch
    monkeypatch.setattr(
        runner, "simulate_launch",
        lambda *a: (calls.append(a), real(*a))[1])
    run_suite(ABBRS[:2], "tiny", CFG, techniques=TECHS)
    assert calls == []


def test_run_grid_reports_progress():
    seen = []
    run_grid([(a, "baseline", CFG) for a in ABBRS], "tiny", jobs=2,
             progress=lambda done, total, abbr, tech, res: seen.append(
                 (done, total, abbr, tech, res.cycles)))
    assert len(seen) == len(ABBRS)
    assert {s[2] for s in seen} == set(ABBRS)
    assert all(s[1] == len(ABBRS) for s in seen)


class _BrokenPool:
    """Stand-in executor whose construction fails like an exhausted
    system (fork failure)."""

    def __init__(self, *a, **kw):
        raise OSError("cannot fork")


class _DeadWorkerPool:
    """Stand-in executor whose futures all die with BrokenProcessPool."""

    def __init__(self, *a, **kw):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        future = concurrent.futures.Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future


@pytest.mark.parametrize("pool_cls", [_BrokenPool, _DeadWorkerPool])
def test_fallback_to_serial_on_worker_failure(monkeypatch, capsys, pool_cls):
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", pool_cls)
    serial = run_suite(ABBRS[:2], "tiny", CFG, techniques=("baseline",))
    clear_cache()
    par = run_suite(ABBRS[:2], "tiny", CFG, techniques=("baseline",),
                    jobs=4)
    for abbr in ABBRS[:2]:
        assert par[abbr]["baseline"].cycles == \
            serial[abbr]["baseline"].cycles


def test_serial_path_taken_for_single_task(monkeypatch):
    # One pending task never pays for a process pool.
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _BrokenPool)
    results = run_grid([("CP", "baseline", CFG)], "tiny", jobs=8)
    assert len(results) == 1


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert default_jobs() == 7
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert default_jobs() >= 1
