"""Int-width audit regression tests (pinned integer edge semantics).

The datapath does integer work (bitwise ops, shifts, address math) on
float64 lane values converted through ``repro.sim.executor._to_int``.
Three places where Python-int semantics, numpy-int64 semantics, and C
undefined behaviour could silently disagree are pinned explicitly, and
each pin has a regression test here:

1. **Shift counts outside [0, 64)** — C's ``<<``/``>>`` is undefined
   there (numpy happened to give 0 on this platform), while Python ints
   would grow without bound.  Pinned: the result is 0, like a barrel
   shifter flushing invalid counts (``executor._shift``).
2. **float64 -> int64 overflow** — ``astype(np.int64)`` of NaN or
   out-of-range values warns and produces a platform-dependent pattern.
   Pinned: NaN -> 0, overflow saturates to the nearest exactly
   representable int64 endpoint (-2**63 and 2**63 - 1024).
3. **In-range conversions stay exact** — every integer with
   \\|x\\| <= 2**53 converts exactly (the fuzz generator and workloads are
   integer-exact by construction, so goldens are unaffected by pins 1-2).

The affine stream's ``shl`` (``AffineTuple.shl``) only ever sees scalar,
in-range amounts (the lattice rejects non-scalar shift amounts), where it
agrees with the pinned datapath semantics — also tested below.

Address-path casts (``addresses[mask].astype(np.int64)`` in the executor
and coalescer) are *not* clipped: addresses are bounded by the memory
image size, and an out-of-range address is a workload bug that the
memory system's bounds checks surface directly.
"""

import warnings

import numpy as np
import pytest

from repro.affine.tuples import AffineTuple
from repro.isa import CmpOp, Opcode
from repro.sim.executor import _to_int, alu

INT64_MIN = -(2 ** 63)
SAT_MAX = 2 ** 63 - 1024          # largest float64 below 2**63


def lanes(*values):
    return np.asarray(values, dtype=np.float64)


class TestShiftSemantics:
    @pytest.mark.parametrize("count", [64, 65, 100, 1000])
    def test_shl_count_at_least_64_is_zero(self, count):
        out = alu(Opcode.SHL, [lanes(1, 3, -5), lanes(count, count, count)])
        assert out.tolist() == [0.0, 0.0, 0.0]
        # Python ints would instead produce huge values — the simulator
        # deliberately diverges from that (64-bit datapath, not bignum).
        assert (3 << count) != 0

    @pytest.mark.parametrize("count", [-1, -64, -1000])
    def test_negative_shift_count_is_zero(self, count):
        assert alu(Opcode.SHL, [lanes(7), lanes(count)]).tolist() == [0.0]
        assert alu(Opcode.SHR, [lanes(7), lanes(count)]).tolist() == [0.0]

    @pytest.mark.parametrize("count", [64, 100])
    def test_shr_count_at_least_64_is_zero(self, count):
        # Pinned to 0 even for negative values (Python would give -1).
        out = alu(Opcode.SHR, [lanes(7, -7), lanes(count, count)])
        assert out.tolist() == [0.0, 0.0]
        assert (-7 >> count) == -1

    def test_in_range_shifts_match_python(self):
        values = lanes(1, -8, 12345, 0)
        counts = lanes(0, 3, 13, 63)
        shl = alu(Opcode.SHL, [values, counts])
        shr = alu(Opcode.SHR, [values, counts])
        for v, c, left, right in zip(values, counts, shl, shr):
            # In range, int64 and Python agree (int64 << wraps mod 2**64,
            # but these products stay well inside the representable span).
            assert left == float(np.int64(int(v) << int(c)))
            assert right == float(int(v) >> int(c))

    def test_mixed_lane_counts(self):
        """Valid and invalid counts in the same warp: only the invalid
        lanes flush to zero."""
        out = alu(Opcode.SHL, [lanes(1, 1, 1), lanes(4, 64, -2)])
        assert out.tolist() == [16.0, 0.0, 0.0]


class TestFloatToIntConversion:
    def test_nan_is_zero(self):
        assert _to_int(lanes(np.nan, 1.0)).tolist() == [0, 1]
        assert int(_to_int(np.float64("nan"))) == 0

    def test_overflow_saturates(self):
        out = _to_int(lanes(1e300, -1e300, np.inf, -np.inf))
        assert out.tolist() == [SAT_MAX, INT64_MIN, SAT_MAX, INT64_MIN]

    def test_no_runtime_warning_on_edges(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _to_int(lanes(np.nan, np.inf, -np.inf, 1e300, 0.0))

    @pytest.mark.parametrize("value", [0, 1, -1, 2 ** 53, -(2 ** 53),
                                       2 ** 40 + 12345])
    def test_exact_in_integer_range(self, value):
        assert int(_to_int(np.float64(value))) == value

    def test_bitwise_ops_match_python_in_range(self):
        """AND/OR/XOR/NOT over int64 == Python arbitrary precision for
        in-range values, including negatives (two's complement)."""
        a = lanes(0b1100, -0b1010, 2 ** 50, -1)
        b = lanes(0b1010, 0b0110, 1, 0)
        for opcode, pyop in [(Opcode.AND, lambda x, y: x & y),
                             (Opcode.OR, lambda x, y: x | y),
                             (Opcode.XOR, lambda x, y: x ^ y)]:
            out = alu(opcode, [a, b])
            expect = [float(pyop(int(x), int(y))) for x, y in zip(a, b)]
            assert out.tolist() == expect
        assert alu(Opcode.NOT, [a]).tolist() \
            == [float(~int(x)) for x in a]


class TestAffineShiftAgreement:
    @pytest.mark.parametrize("amount", [0, 1, 4, 10])
    def test_affine_shl_matches_datapath(self, amount):
        """The affine stream evaluates shl as a scale by ``2**amount``;
        for the in-range scalar amounts the lattice admits, that equals
        the pinned SIMT shift exactly."""
        tx = np.arange(32, dtype=np.float64)
        tup = AffineTuple(8.0, (4.0, 0.0, 0.0))   # 8 + 4*tx
        shifted = tup.shl(AffineTuple(float(amount)))
        values = shifted.evaluate(tx, np.zeros(32), np.zeros(32))
        expect = alu(Opcode.SHL, [8.0 + 4.0 * tx, np.full(32, amount,
                                                          dtype=np.float64)])
        assert np.array_equal(values, expect)


def test_setp_comparison_unaffected_by_pins():
    """SETP compares float64 directly (no int conversion) — the audit's
    pins must not leak into predicate computation."""
    out = alu(Opcode.SETP, [lanes(1, 2, 3), lanes(2, 2, 2)], CmpOp.LT)
    assert out.tolist() == [True, False, False]
