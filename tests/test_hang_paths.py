"""Hang paths must terminate with a structured, actionable report.

Both guard rails in the main loop — the ``max_cycles`` bound and the
no-progress detector — raise :class:`SimulationHang` carrying the
per-scheduler stall attribution, DAC queue occupancies, and a per-warp
state table, so a wedged run explains itself instead of printing a bare
cycle count.  The wedge kernels here are deterministic: an infinite loop
(max_cycles), a dropped address record starving a dequeue (queue
starvation), and a starved warp on one side of a barrier (barrier
mismatch).
"""

import dataclasses

import pytest

from repro.core import run_dac
from repro.faults import FaultPlan
from repro.isa import parse_kernel
from repro.sim import (
    DeadlockError,
    GPUConfig,
    GlobalMemory,
    KernelLaunch,
    SimulationHang,
    simulate,
)

CFG = GPUConfig(num_sms=1)


def _launch(source, block=(32, 1, 1), params=None):
    mem = GlobalMemory(1 << 20)
    params = params if params is not None else {}
    kernel = parse_kernel(source, name="t", params=tuple(params))
    return KernelLaunch(kernel, (1, 1, 1), block, params, mem)


COPY = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add xaddr, param.X, r1;
    ld.global xv, [xaddr];
    add oaddr, param.O, r1;
    st.global [oaddr], xv;
"""

COPY_BARRIER = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add xaddr, param.X, r1;
    ld.global xv, [xaddr];
    bar.sync;
    add oaddr, param.O, r1;
    st.global [oaddr], xv;
"""


def _copy_launch(source, block):
    mem = GlobalMemory(1 << 20)
    params = dict(X=mem.alloc(64), O=mem.alloc(64))
    kernel = parse_kernel(source, name="t", params=tuple(params))
    return KernelLaunch(kernel, (1, 1, 1), block, params, mem)


class TestMaxCyclesPath:
    SRC = """
    LOOP:
        mov r0, 1;
        bra LOOP;
    """

    def _hang(self):
        launch = _launch(self.SRC)
        config = dataclasses.replace(CFG, max_cycles=2000)
        with pytest.raises(SimulationHang) as info:
            simulate(launch, config)
        return info.value

    def test_is_still_a_deadlock_error(self):
        # Callers that catch DeadlockError keep working.
        assert issubclass(SimulationHang, DeadlockError)
        launch = _launch(self.SRC)
        config = dataclasses.replace(CFG, max_cycles=2000)
        with pytest.raises(DeadlockError):
            simulate(launch, config)

    def test_carries_full_report(self):
        hang = self._hang()
        assert hang.reason == "max_cycles"
        assert hang.cycle >= 2000
        assert hang.last_progress_cycle <= hang.cycle
        assert hang.stall_snapshot          # per-scheduler attribution
        assert hang.warp_states
        text = str(hang)
        assert "max_cycles" in text
        assert "scheduler stalls" in text
        assert "warp slot" in text


class TestQueueStarvation:
    def test_record_drop_starves_dequeue(self):
        """Dropping the warp's last expanded record (the store) leaves the
        consumer waiting on an empty PWAQ with no event ever coming: the
        no-progress detector must fire and attribute the stall to the
        empty queue."""
        launch = _copy_launch(COPY, block=(32, 1, 1))
        with pytest.raises(SimulationHang) as info:
            run_dac(launch, CFG,
                    faults=FaultPlan.single("record_drop", 1).injector())
        hang = info.value
        assert hang.reason == "no_progress"
        assert "queue_empty" in hang.stall_snapshot
        assert 0 in hang.queue_occupancy
        occ = hang.queue_occupancy[0]
        assert set(occ) == {"atq_mem", "atq_pred", "pwaq", "pwpq"}
        text = str(hang)
        assert "queues:" in text
        assert "simulation hang" in text


class TestBarrierMismatch:
    def test_starved_warp_wedges_its_barrier_partner(self):
        """Warp 0's record is dropped so it never reaches the barrier;
        warp 1 waits there forever.  The hang report must show both the
        empty-queue stall and the barrier wait."""
        launch = _copy_launch(COPY_BARRIER, block=(64, 1, 1))
        with pytest.raises(SimulationHang) as info:
            run_dac(launch, CFG,
                    faults=FaultPlan.single("record_drop", 0).injector())
        hang = info.value
        assert hang.reason == "no_progress"
        assert "queue_empty" in hang.stall_snapshot
        assert "barrier" in hang.stall_snapshot
        text = str(hang)
        assert "barrier=True" in text       # warp 1 parked at the barrier
        assert "barrier=False" in text      # warp 0 never got there
