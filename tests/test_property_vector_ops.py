"""Property tests: vector-datapath primitives vs scalar lane-loop oracles.

Each property pins one bit-identity equivalence the vector datapath relies
on (see ``repro/sim/vector.py``'s module docstring): masked register
writeback, predicate-bitmask blends, guard evaluation, SIMT-stack
push/pop mask algebra, and the coalescer's vectorized line/word-mask
derivation.  The scalar side of every comparison is written as the naive
per-lane loop (or the pinned scalar class), so a hypothesis failure here
localizes a divergence to a single primitive instead of a whole
simulation.

All-inactive and single-lane masks are explicitly covered via
``@example``; hypothesis shrinks toward them anyway, but the paper cases
(fully-predicated-off warps, one-thread tails) must never rot out of the
corpus.
"""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.memory.coalescer import (
    CoalesceCache,
    coalesce,
    word_mask,
)
from repro.sim.simt_stack import (
    FULL_MASK,
    LaneMask,
    SIMTStack,
    VectorSIMTStack,
    pack_mask,
    unpack_mask,
)

# ---- strategies -----------------------------------------------------------

lane_bools = st.lists(st.booleans(), min_size=32, max_size=32).map(
    lambda bs: np.asarray(bs, dtype=bool))
lane_bits = st.integers(min_value=0, max_value=FULL_MASK)
lane_floats = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=32, max_size=32).map(lambda xs: np.asarray(xs,
                                                        dtype=np.float64))
# Word-aligned byte addresses spanning several cache lines, including
# patterns whose first active lane is *not* the lowest line (negative
# relative offsets inside CoalesceCache._pattern).
lane_addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 20).map(lambda w: w * 4),
    min_size=32, max_size=32).map(lambda xs: np.asarray(xs,
                                                        dtype=np.float64))

ALL_OFF = np.zeros(32, dtype=bool)
ALL_ON = np.ones(32, dtype=bool)
ONE_LANE = np.eye(1, 32, 17, dtype=bool)[0]


# ---- pack/unpack ----------------------------------------------------------

@given(lane_bools)
@example(ALL_OFF)
@example(ALL_ON)
@example(ONE_LANE)
def test_pack_unpack_roundtrip(mask):
    assert np.array_equal(unpack_mask(pack_mask(mask)), mask)


@given(lane_bits)
@example(0)
@example(FULL_MASK)
@example(1 << 31)
def test_unpack_pack_roundtrip(bits):
    assert pack_mask(unpack_mask(bits)) == bits


@given(lane_bools)
@example(ALL_OFF)
@example(ALL_ON)
@example(ONE_LANE)
def test_lanemask_facts_match_bool_reductions(mask):
    lm = LaneMask(pack_mask(mask))
    assert lm.any() == bool(mask.any())
    assert lm.all() == bool(mask.all())
    assert lm.count() == int(np.count_nonzero(mask))


# ---- masked writeback -----------------------------------------------------

@given(lane_floats, lane_floats, lane_bools)
@example(np.zeros(32), np.ones(32), ALL_OFF)
@example(np.zeros(32), np.ones(32), ALL_ON)
@example(np.zeros(32), np.ones(32), ONE_LANE)
def test_masked_register_writeback(current, vals, mask):
    """``np.copyto(where=)`` (vector) == ``current[mask] = vals[mask]``
    (scalar), and the full-mask fast path is a plain copy."""
    scalar = current.copy()
    scalar[mask] = vals[mask]
    vector = current.copy()
    bits = pack_mask(mask)
    if bits == FULL_MASK:
        vector[:] = vals
    else:
        np.copyto(vector, vals, where=mask)
    assert np.array_equal(scalar, vector)


@given(lane_bits, lane_bools, lane_bools)
@example(0, ALL_ON, ALL_OFF)
@example(FULL_MASK, ALL_OFF, ALL_ON)
@example(0x12345678, ONE_LANE, ONE_LANE)
def test_masked_predicate_writeback(old_bits, vals, mask):
    """The bitwise blend ``(old & ~m) | (new & m)`` == boolean masked
    assignment on the unpacked predicate."""
    scalar = unpack_mask(old_bits).copy()
    scalar[mask] = vals[mask]
    mbits = pack_mask(mask)
    vbits = pack_mask(vals)
    vector_bits = (old_bits & ~mbits & FULL_MASK) | (vbits & mbits)
    assert vector_bits == pack_mask(scalar)


# ---- guard evaluation -----------------------------------------------------

@given(lane_bools, lane_bits, st.booleans())
@example(ALL_ON, 0, False)
@example(ALL_OFF, FULL_MASK, True)
@example(ONE_LANE, FULL_MASK, True)
def test_guard_evaluation(active, pred_bits, negated):
    """Bitmask guard application == bool-array guard application."""
    pred = unpack_mask(pred_bits)
    scalar = active & (~pred if negated else pred)
    vbits = pred_bits ^ FULL_MASK if negated else pred_bits
    vector = pack_mask(active) & vbits
    assert vector == pack_mask(scalar)


@given(lane_bools, lane_bools)
@example(ALL_ON, ALL_OFF)
@example(ALL_ON, ALL_ON)
@example(ONE_LANE, ONE_LANE)
def test_branch_split(active, guard):
    """``active & ~taken`` over bits == over bool arrays, along with the
    any() questions the issue path asks."""
    taken_s = active & guard
    ntaken_s = active & ~taken_s
    abits = pack_mask(active)
    tbits = abits & pack_mask(guard)
    nbits = abits & ~tbits
    assert tbits == pack_mask(taken_s)
    assert nbits == pack_mask(ntaken_s)
    assert (tbits != 0) == bool(taken_s.any())
    assert (nbits != 0) == bool(ntaken_s.any())


# ---- SIMT stack mask algebra ---------------------------------------------

stack_ops = st.lists(
    st.tuples(
        lane_bools,                                  # branch guard
        st.integers(min_value=0, max_value=9),       # target pc
        st.integers(min_value=0, max_value=9),       # fallthrough pc
        st.integers(min_value=0, max_value=9),       # rpc
        st.integers(min_value=0, max_value=9),       # next pc assignment
    ),
    min_size=0, max_size=12)


@given(lane_bools, stack_ops)
@example(ALL_ON, [(ONE_LANE, 3, 1, 5, 5)])
@example(ONE_LANE, [(ALL_OFF, 2, 1, 4, 4)])
def test_stack_pair_random_walk(initial, ops):
    """Drive a scalar and a vector SIMT stack through the same sequence of
    diverge / pc-assignment operations; every observable (top mask, pc,
    depth, max depth) must stay identical at every step.

    Mirrors how the timing models use the stacks: a guarded branch splits
    the current active set, both sides non-empty -> diverge; afterwards
    the pc setter walks to the next instruction (popping when it lands on
    an RPC)."""
    scalar = SIMTStack(initial)
    vector = VectorSIMTStack(pack_mask(initial))
    for guard, target, fallthrough, rpc, next_pc in ops:
        active_s = scalar.active_mask
        taken_s = active_s & guard
        ntaken_s = active_s & ~taken_s
        abits = vector.top_bits
        tbits = abits & pack_mask(guard)
        nbits = abits & ~tbits
        assert pack_mask(active_s) == abits
        if taken_s.any() and ntaken_s.any():
            scalar.diverge(taken_s, ntaken_s, target, fallthrough, rpc)
            vector.diverge(tbits, nbits, target, fallthrough, rpc)
        else:
            scalar.pc = next_pc
            vector.pc = next_pc
        assert pack_mask(scalar.active_mask) == vector.top_bits
        assert scalar.pc == vector.pc
        assert scalar.depth == vector.depth
        assert scalar.max_depth == vector.max_depth


# ---- coalescer ------------------------------------------------------------

@given(lane_addresses, lane_bools)
@example(np.zeros(32), ALL_OFF)
@example(np.arange(32) * 4.0, ALL_ON)
@example(np.arange(32) * 4.0, ONE_LANE)
@example(np.full(32, 4096.0), ALL_ON)
@settings(max_examples=200)
def test_coalesce_cache_matches_lane_loop(addresses, active):
    """``CoalesceCache`` (vectorized, memoized) == the uncached module
    functions, for both the line list and every per-line word mask."""
    cache = CoalesceCache()
    expect_lines = coalesce(addresses, active)
    got_lines = cache.lines(addresses, active)
    assert got_lines == expect_lines
    lines2, masks = cache.lines_and_masks(addresses, active)
    assert lines2 == expect_lines
    assert masks == [word_mask(line, addresses, active)
                     for line in expect_lines]
    # Second query must hit the memo table and still agree.
    assert cache.lines_and_masks(addresses, active) == (lines2, masks)


@given(lane_addresses, lane_bools)
@example(np.arange(32)[::-1] * 4.0, ALL_ON)   # descending: negative rel
def test_word_mask_reference_loop(addresses, active):
    """The vectorized :func:`word_mask` == the naive per-lane OR loop."""
    for line in coalesce(addresses, active):
        expect = 0
        for lane in range(32):
            if not active[lane]:
                continue
            addr = int(addresses[lane])
            if (addr >> 7) == (line >> 7):
                expect |= 1 << ((addr - line) // 4)
        assert word_mask(line, addresses, active) == expect
