"""Tests for the decoupling verifier — and through it, the decoupler: the
verifier must pass on every benchmark and catch seeded inconsistencies."""

import pytest

from repro.compiler.decouple import decouple
from repro.compiler.verifier import verify
from repro.isa import DeqToken, Instruction, Opcode, parse_kernel
from repro.workloads import BY_ABBR, get


@pytest.mark.parametrize("abbr", sorted(BY_ABBR))
def test_every_benchmark_verifies(abbr):
    program = decouple(get(abbr).launch("tiny").kernel)
    report = verify(program)
    assert report.ok, f"{abbr}: {report}"


def _paper_program():
    kernel = parse_kernel("""
        mul r0, %ctaid.x, %ntid.x;
        add tid, %tid.x, r0;
        mul r1, tid, 4;
        add addrA, param.A, r1;
        add addrB, param.B, r1;
        mov i, 0;
    LOOP:
        ld.global tmp, [addrA];
        add r2, tmp, 1;
        st.global [addrB], r2;
        add i, i, 1;
        mul r3, param.num, 4;
        add addrA, r3, addrA;
        add addrB, r3, addrB;
        setp.ne p0, param.dim, i;
        @p0 bra LOOP;
    """, name="example", params=("A", "B", "dim", "num"))
    return decouple(kernel)


class TestSeededDefects:
    def test_clean_program_verifies(self):
        assert verify(_paper_program()).ok

    def test_detects_missing_enqueue(self):
        program = _paper_program()
        program.affine.instructions = [
            i for i in program.affine.instructions
            if i.opcode is not Opcode.ENQ_ADDR]
        report = verify(program)
        assert not report.ok
        assert any("queue id mismatch" in e for e in report.errors)

    def test_detects_kind_mismatch(self):
        program = _paper_program()
        for i, inst in enumerate(program.affine.instructions):
            if inst.opcode is Opcode.ENQ_DATA:
                program.affine.instructions[i] = inst.clone(
                    opcode=Opcode.ENQ_ADDR)
                break
        report = verify(program)
        assert not report.ok
        assert any("kind" in e for e in report.errors)

    def test_detects_memory_in_affine_stream(self):
        program = _paper_program()
        from repro.isa import MemRef, MemSpace, Register
        rogue = Instruction(Opcode.LD, dsts=(Register("x"),),
                            srcs=(MemRef(Register("addrA")),),
                            space=MemSpace.GLOBAL)
        program.affine.instructions.insert(0, rogue)
        report = verify(program)
        assert not report.ok
        assert any("memory access" in e for e in report.errors)

    def test_detects_swapped_order(self):
        program = _paper_program()
        insts = program.nonaffine.instructions
        idxs = [i for i, inst in enumerate(insts)
                if any(isinstance(o, DeqToken)
                       for o in inst.srcs + inst.dsts)
                and inst.is_memory]
        assert len(idxs) >= 2
        a, b = idxs[0], idxs[1]
        insts[a], insts[b] = insts[b], insts[a]
        report = verify(program)
        assert not report.ok
        assert any("out of original order" in e for e in report.errors)

    def test_detects_barrier_mismatch(self):
        program = _paper_program()
        program.nonaffine.instructions.insert(
            0, Instruction(Opcode.BAR))
        report = verify(program)
        assert not report.ok
        assert any("barrier" in e for e in report.errors)

    def test_not_decoupled_is_trivially_ok(self):
        kernel = parse_kernel("""
            ld.global i1, [param.p];
            mul r2, i1, 4;
            add a2, param.p, r2;
            ld.global w, [a2];
            mul r5, w, 4;
            add a5, param.p, r5;
            st.global [a5], w;
        """, params=("p",))
        program = decouple(kernel)
        assert verify(program).ok

    def test_report_str(self):
        ok = verify(_paper_program())
        assert "verified" in str(ok)
        program = _paper_program()
        program.affine.instructions = [
            i for i in program.affine.instructions if not i.is_enq]
        bad = verify(program)
        assert "FAILED" in str(bad)
