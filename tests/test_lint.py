"""Positive-path tests for the kernel lint subsystem.

The whole workload suite must lint without errors (the CI gate relies on
this), reports must be deterministic and JSON-serializable, and linting
must never mutate the kernel or launch it inspects.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CODES, LintReport, Severity, lint_kernel, lint_launch
from repro.analysis.diagnostics import make_diagnostic
from repro.analysis.fixtures import FIXTURE_CONFIG, clean_bundle
from repro.workloads import BY_ABBR


def test_code_registry_well_formed():
    assert len(CODES) >= 12
    for code, (severity, title) in CODES.items():
        assert code.startswith("RPL") and len(code) == 6
        assert severity in (Severity.WARNING, Severity.ERROR)
        assert title


def test_all_workloads_lint_without_errors():
    for abbr, bench in sorted(BY_ABBR.items()):
        report = lint_launch(bench.launch("tiny"))
        assert report.ok(), (
            f"{abbr} has lint errors: "
            + "; ".join(d.render() for d in report.errors))


def test_diagnostic_render_includes_location():
    bundle = clean_bundle(0)
    diag = make_diagnostic("RPL001", "synthetic", bundle.launch.kernel, 0)
    assert bundle.launch.kernel.name in diag.render()
    assert "[0]" in diag.render()


def test_report_json_round_trip():
    bundle = clean_bundle(0)
    report = lint_launch(bundle.launch, bundle.config)
    blob = json.dumps(report.to_dict())
    back = json.loads(blob)
    assert set(back) == {"diagnostics", "errors", "warnings",
                         "skipped_passes"}


def test_strict_promotes_warnings():
    report = LintReport()
    report.add(make_diagnostic("RPL001", "w", "k", None))
    assert report.ok()
    assert not report.ok(strict=True)


def test_kernel_only_lint_skips_launch_passes():
    kernel = clean_bundle(0).launch.kernel
    report = lint_kernel(kernel)
    assert "races" in report.skipped_passes
    assert "bounds" in report.skipped_passes


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=300))
def test_lint_is_pure_and_deterministic(seed):
    bundle = clean_bundle(seed)
    kernel = bundle.launch.kernel
    insts_before = [repr(i) for i in kernel.instructions]
    mem_before = bundle.launch.memory.words.copy()

    first = lint_launch(bundle.launch, FIXTURE_CONFIG)
    second = lint_launch(bundle.launch, FIXTURE_CONFIG)

    assert [repr(i) for i in kernel.instructions] == insts_before
    assert (bundle.launch.memory.words == mem_before).all()
    assert first.render() == second.render()
    assert [d.to_dict() for d in first.diagnostics] == \
        [d.to_dict() for d in second.diagnostics]


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=300))
def test_clean_corpus_lints_silently(seed):
    bundle = clean_bundle(seed)
    report = lint_launch(bundle.launch, bundle.config)
    assert not report.diagnostics, report.render()
