"""Tests for affine op dispatch, predicates, and the type lattice."""

import numpy as np
import pytest

from repro.affine import (
    AffineError,
    AffinePredicate,
    AffineTuple,
    ClampExpr,
    OperandClass,
    apply_op,
    join,
    leaf_class,
    result_class,
    scalar,
)
from repro.isa import (
    CmpOp,
    Immediate,
    MemRef,
    Opcode,
    Param,
    Register,
    SpecialReg,
)

TX = np.arange(32, dtype=np.float64)
TY = np.zeros(32)
TZ = np.zeros(32)
TID = AffineTuple(0.0, (1.0, 0.0, 0.0))


class TestApplyOp:
    def test_paper_example_chain(self):
        # Fig. 4b: mul r1, tid, 4; add addrA, A[], r1
        r1 = apply_op(Opcode.MUL, [TID, scalar(4)])
        addr = apply_op(Opcode.ADD, [r1, scalar(0x80000)])
        assert addr.base == 0x80000 and addr.offsets[0] == 4.0

    def test_mad(self):
        out = apply_op(Opcode.MAD, [TID, scalar(4), scalar(100)])
        np.testing.assert_array_equal(out.evaluate(TX, TY, TZ),
                                      4 * TX + 100)

    def test_rem_produces_mod_tuple(self):
        out = apply_op(Opcode.REM, [apply_op(Opcode.MUL, [TID, scalar(4)]),
                                    scalar(64)])
        assert out.is_mod

    def test_min_scalar_folds(self):
        assert apply_op(Opcode.MIN, [scalar(3), scalar(7)]).scalar_value == 3

    def test_min_affine_builds_clamp(self):
        out = apply_op(Opcode.MIN, [TID, scalar(7)])
        assert isinstance(out, ClampExpr)

    def test_clamp_nesting_limit(self):
        one = apply_op(Opcode.MIN, [TID, scalar(7)])
        two = apply_op(Opcode.MAX, [one, scalar(0)])
        with pytest.raises(AffineError):
            apply_op(Opcode.MIN, [two, scalar(5)])

    def test_bitwise_scalar_only(self):
        assert apply_op(Opcode.AND, [scalar(12), scalar(10)]) \
            .scalar_value == 8
        with pytest.raises(AffineError):
            apply_op(Opcode.AND, [TID, scalar(1)])

    def test_setp_returns_predicate(self):
        pred = apply_op(Opcode.SETP, [TID, scalar(16)], cmp=CmpOp.LT)
        assert isinstance(pred, AffinePredicate)

    def test_selp_scalar_predicate(self):
        pred = apply_op(Opcode.SETP, [scalar(1), scalar(2)], cmp=CmpOp.LT)
        out = apply_op(Opcode.SELP, [scalar(10), scalar(20), pred])
        assert out.scalar_value == 10

    def test_selp_nonscalar_predicate_rejected(self):
        pred = apply_op(Opcode.SETP, [TID, scalar(2)], cmp=CmpOp.LT)
        with pytest.raises(AffineError):
            apply_op(Opcode.SELP, [scalar(10), scalar(20), pred])

    def test_div_never_affine(self):
        with pytest.raises(AffineError):
            apply_op(Opcode.DIV, [scalar(10), scalar(2)])


class TestPredicates:
    def test_scalar_predicate(self):
        pred = AffinePredicate(CmpOp.NE, scalar(4), scalar(8))
        assert pred.is_scalar and pred.scalar_value

    def test_negated(self):
        pred = AffinePredicate(CmpOp.LT, TID, scalar(16))
        np.testing.assert_array_equal(pred.negated().evaluate(TX, TY, TZ),
                                      ~pred.evaluate(TX, TY, TZ))

    def test_endpoint_uniform_true(self):
        pred = AffinePredicate(CmpOp.LT, TID, scalar(100))
        assert pred.endpoint_uniform((0, 0, 0), (31, 0, 0)) is True

    def test_endpoint_mixed(self):
        pred = AffinePredicate(CmpOp.LT, TID, scalar(16))
        assert pred.endpoint_uniform((0, 0, 0), (31, 0, 0)) is None

    def test_endpoint_not_applicable_for_mod(self):
        mod = AffineTuple(0, (4, 0, 0)).mod(scalar(64))
        pred = AffinePredicate(CmpOp.LT, mod, scalar(32))
        assert not pred.endpoint_applicable()

    def test_endpoint_eq_requires_scalars(self):
        pred = AffinePredicate(CmpOp.NE, TID, scalar(5))
        assert not pred.endpoint_applicable()
        pred2 = AffinePredicate(CmpOp.NE, scalar(4), scalar(5))
        assert pred2.endpoint_applicable()


class TestLattice:
    def test_join(self):
        assert join(OperandClass.SCALAR, OperandClass.AFFINE) \
            is OperandClass.AFFINE
        assert join() is OperandClass.SCALAR

    def test_leaf_classes(self):
        assert leaf_class(Immediate(3)) is OperandClass.SCALAR
        assert leaf_class(Param("n")) is OperandClass.SCALAR
        assert leaf_class(SpecialReg("tid", "x")) is OperandClass.AFFINE
        assert leaf_class(SpecialReg("ctaid", "x")) is OperandClass.SCALAR
        assert leaf_class(MemRef(Register("r"))) is OperandClass.NONAFFINE
        assert leaf_class(Register("r")) is None

    def test_mul_affine_affine_is_nonaffine(self):
        out = result_class(Opcode.MUL,
                           [OperandClass.AFFINE, OperandClass.AFFINE])
        assert out is OperandClass.NONAFFINE

    def test_mul_affine_scalar_is_affine(self):
        out = result_class(Opcode.MUL,
                           [OperandClass.AFFINE, OperandClass.SCALAR])
        assert out is OperandClass.AFFINE

    def test_load_is_nonaffine(self):
        assert result_class(Opcode.LD, [OperandClass.AFFINE]) \
            is OperandClass.NONAFFINE

    def test_sfu_not_affine_capable(self):
        assert result_class(Opcode.SIN, [OperandClass.SCALAR]) \
            is OperandClass.NONAFFINE

    def test_rem_needs_scalar_divisor(self):
        assert result_class(Opcode.REM, [OperandClass.AFFINE,
                                         OperandClass.AFFINE]) \
            is OperandClass.NONAFFINE
        assert result_class(Opcode.REM, [OperandClass.AFFINE,
                                         OperandClass.SCALAR]) \
            is OperandClass.AFFINE

    def test_shr_scalar_only(self):
        assert result_class(Opcode.SHR, [OperandClass.AFFINE,
                                         OperandClass.SCALAR]) \
            is OperandClass.NONAFFINE
        assert result_class(Opcode.SHR, [OperandClass.SCALAR,
                                         OperandClass.SCALAR]) \
            is OperandClass.SCALAR

    def test_lattice_matches_runtime(self):
        """Anything the lattice calls affine must evaluate in tuple form —
        spot-check the rules the compiler relies on."""
        cases = [
            (Opcode.ADD, [TID, scalar(4)], None),
            (Opcode.MAD, [TID, scalar(4), scalar(1)], None),
            (Opcode.REM, [TID, scalar(8)], None),
            (Opcode.MIN, [TID, scalar(8)], None),
            (Opcode.SETP, [TID, scalar(8)], CmpOp.LT),
        ]
        for opcode, args, cmp in cases:
            classes = [OperandClass.AFFINE if not a.is_scalar
                       else OperandClass.SCALAR
                       for a in args]
            assert result_class(opcode, classes, cmp) \
                is not OperandClass.NONAFFINE
            apply_op(opcode, args, cmp)       # must not raise
