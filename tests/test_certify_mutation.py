"""The decoupler-mutation campaign: every seeded defect class must be
caught statically by the certifier or demonstrated dynamically against
the functional oracle — never both missed (a silent escape)."""

import random

import pytest

from repro.analysis.certify import certify_program
from repro.analysis.mutate import (
    CAMPAIGN_CONFIG,
    MUTATORS,
    Mutant,
    Target,
    _synthetic_launch,
    _validate_dynamic,
    default_targets,
    run_mutation_campaign,
)
from repro.compiler.decouple import decouple


def _synth_target():
    return Target("SYNTH", _synthetic_launch)


def _synth_program():
    return decouple(_synthetic_launch().kernel)


# ---------------------------------------------------------------------------
# Every class applies to — and is caught on — the synthetic target.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def synth_report():
    return run_mutation_campaign(targets=[_synth_target()])


def test_synthetic_target_exercises_every_class(synth_report):
    assert synth_report.unexercised() == []
    assert {c.klass for c in synth_report.cases} == set(MUTATORS)


def test_no_silent_escapes_on_synthetic_target(synth_report):
    assert synth_report.ok, synth_report.render()
    for case in synth_report.cases:
        assert case.outcome in ("caught-static", "caught-dynamic"), \
            f"{case.klass}: {case.outcome} ({case.detail})"


def test_every_mutant_is_caught_statically_on_synth(synth_report):
    # The certifier is the first line of defense: on the synthetic
    # kernel every defect class must fall to static analysis alone.
    for case in synth_report.cases:
        assert case.outcome == "caught-static", \
            f"{case.klass} leaked past the certifier: {case.detail}"
        assert case.codes, case.detail


def test_expected_codes_per_class(synth_report):
    by_class = {c.klass: set(c.codes) for c in synth_report.cases}
    assert "RPL053" in by_class["stale_loop"]
    assert "RPL054" in by_class["mod_divisor"]
    assert "RPL050" in by_class["barrier_drop"]
    assert "RPL050" in by_class["enq_reorder"]
    assert "RPL052" in by_class["coeff_perturb"]
    assert "RPL051" in by_class["slice_widen"]


# ---------------------------------------------------------------------------
# The dynamic detector (used when a mutant certifies clean).
# ---------------------------------------------------------------------------

def test_dynamic_detector_flags_perturbed_address():
    program = _synth_program()
    mutant = MUTATORS["coeff_perturb"](program, random.Random(0))
    assert mutant is not None
    outcome, detail = _validate_dynamic(_synth_target(), mutant,
                                        CAMPAIGN_CONFIG)
    assert outcome == "caught-dynamic", detail


def test_dynamic_detector_accepts_the_unmutated_program():
    # A bit-identical run is exactly what "silent escape" means; the
    # clean program must land there, proving the detector is not vacuous.
    program = _synth_program()
    fake = Mutant("identity", "no mutation applied", program)
    outcome, _ = _validate_dynamic(_synth_target(), fake, CAMPAIGN_CONFIG)
    assert outcome == "silent-escape"


# ---------------------------------------------------------------------------
# Campaign bookkeeping.
# ---------------------------------------------------------------------------

def test_unexercised_class_fails_the_campaign():
    report = run_mutation_campaign(
        targets=[Target("BP", lambda: __import__(
            "repro.workloads", fromlist=["get"]).get("BP").launch("tiny"))],
        classes=["mod_divisor"])
    assert report.unexercised() == ["mod_divisor"]
    assert not report.ok


def test_unknown_class_is_rejected():
    with pytest.raises(ValueError, match="unknown mutation class"):
        run_mutation_campaign(targets=[_synth_target()],
                              classes=["nonsense"])


def test_mutators_skip_without_sites():
    # BP has no rem and no displaced enqueue: those mutators return None
    # rather than inventing a site.
    from repro.workloads import get
    program = decouple(get("BP").launch("tiny").kernel)
    assert MUTATORS["mod_divisor"](program, random.Random(0)) is None
    assert MUTATORS["disp_drop"](program, random.Random(0)) is None


def test_mutants_leave_the_parent_program_untouched():
    program = _synth_program()
    before = [str(i) for i in program.affine.instructions]
    for klass in MUTATORS:
        MUTATORS[klass](program, random.Random(1))
    assert [str(i) for i in program.affine.instructions] == before
    assert certify_program(program).diagnostics == []


def test_report_serialization(synth_report):
    d = synth_report.to_dict()
    assert d["ok"] is True
    assert d["counts"]["caught-static"] == len(synth_report.cases)
    rendered = synth_report.render()
    assert "no silent escapes" in rendered


def test_default_targets_cover_benchmarks_and_fuzz():
    names = [t.name for t in default_targets()]
    assert "SYNTH" in names
    assert any(n.startswith("FUZZ-") for n in names)
    assert len(names) >= 5
