"""Hardened harness: per-cell timeouts, bounded retry, quarantine,
checkpoint/resume, corrupt-cache quarantine, and failure classification.

The fast tests use stand-in executors (no real processes); the tests
marked ``resilience`` exercise real worker processes, including a
genuinely hung worker that the grid must survive.
"""

import concurrent.futures
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.harness import GridReport, clear_cache, configure_cache, experiment_config
from repro.harness import parallel, runner
from repro.harness.diskcache import DiskCache
from repro.harness.parallel import default_jobs, run_grid

CFG = experiment_config(num_sms=2)


@pytest.fixture(autouse=True)
def _no_disk_cache():
    clear_cache()
    configure_cache(enabled=False)
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# default_jobs / diskcache satellites


def test_default_jobs_warns_on_invalid_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "three")
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert default_jobs() >= 1


def test_diskcache_quarantines_corrupt_entry(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache._path("deadbeef")
    path.write_bytes(b"this is not a zlib pickle")
    assert cache.load("deadbeef") is None          # reads as a miss
    assert cache.corrupt == 1
    assert not path.exists()                       # moved aside, not live
    assert "deadbeef" not in cache
    sidecars = list(tmp_path.glob(f"*{DiskCache.CORRUPT_SUFFIX}"))
    assert len(sidecars) == 1                      # bytes kept for forensics
    # A second load is a plain miss: no re-parse, no double count.
    assert cache.load("deadbeef") is None
    assert cache.corrupt == 1
    # clear() sweeps quarantined entries but does not count them as live.
    assert cache.clear() == 0
    assert not list(tmp_path.glob(f"*{DiskCache.CORRUPT_SUFFIX}"))


# ---------------------------------------------------------------------------
# Stand-in executors (no real processes)


class _DeadPool:
    """Executor whose futures all die with BrokenProcessPool."""

    def __init__(self, *a, **kw):
        pass

    def submit(self, fn, *args):
        future = concurrent.futures.Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future

    def shutdown(self, *a, **kw):
        pass


class _StuckPool:
    """Executor whose futures never complete (a wedged worker)."""

    def __init__(self, *a, **kw):
        pass

    def submit(self, fn, *args):
        return concurrent.futures.Future()

    def shutdown(self, *a, **kw):
        pass


TASKS = [("CP", "baseline", CFG), ("ST", "baseline", CFG)]


def test_transient_failures_retry_then_fall_back_serially(monkeypatch,
                                                          capsys):
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _DeadPool)
    report = GridReport()
    results = run_grid(TASKS, "tiny", jobs=2, backoff=0.0, report=report)
    assert set(results) == set(TASKS)              # grid still completed
    assert report.retries == len(TASKS)            # one retry wave each
    assert "serially" in capsys.readouterr().err


def test_timeouts_quarantine_and_resume(monkeypatch, tmp_path):
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _StuckPool)
    report = GridReport()
    results = run_grid(TASKS, "tiny", jobs=2, timeout=0.05, retries=1,
                       backoff=0.0, checkpoint=tmp_path, report=report)
    assert results == {}
    assert report.timeouts == 2 * len(TASKS)       # initial try + 1 retry
    assert sorted(t[0] for t in report.quarantined) == ["CP", "ST"]
    assert all("timed out" in reason
               for reason in report.failures.values())
    # A re-run with the same checkpoint remembers the quarantine verdicts
    # and never touches the (still broken) pool.
    resumed = GridReport()
    results2 = run_grid(TASKS, "tiny", jobs=2, timeout=0.05,
                        checkpoint=tmp_path, report=resumed)
    assert results2 == {}
    assert resumed.timeouts == 0
    assert len(resumed.quarantined) == len(TASKS)


def test_checkpoint_resume_skips_finished_cells(monkeypatch, tmp_path):
    report = GridReport()
    results = run_grid(TASKS, "tiny", jobs=1, use_cache=False,
                       checkpoint=tmp_path, report=report)
    assert report.completed == len(TASKS)
    clear_cache()

    def boom(*a, **kw):
        raise AssertionError("resume must not re-simulate finished cells")

    monkeypatch.setattr(runner, "simulate_launch", boom)
    resumed = GridReport()
    results2 = run_grid(TASKS, "tiny", jobs=1, use_cache=False,
                        checkpoint=tmp_path, report=resumed)
    assert resumed.resumed == len(TASKS)
    assert resumed.completed == 0
    for task in TASKS:
        assert results2[task].cycles == results[task].cycles
        assert results2[task].stats.as_dict() == \
            results[task].stats.as_dict()


def test_retry_quarantined_gives_cells_another_chance(monkeypatch,
                                                      tmp_path):
    """Quarantine is sticky across runs (the checkpoint remembers), but
    ``retry_quarantined=True`` clears the verdict and the cells run —
    and, once they succeed, later resumes restore them as done."""
    with monkeypatch.context() as m:
        m.setattr(parallel, "ProcessPoolExecutor", _StuckPool)
        report = GridReport()
        run_grid(TASKS, "tiny", jobs=2, timeout=0.05, retries=0,
                 backoff=0.0, checkpoint=tmp_path, report=report)
        assert len(report.quarantined) == len(TASKS)

    # Without the flag: still quarantined, nothing simulated.
    sticky = GridReport()
    results = run_grid(TASKS, "tiny", jobs=1, use_cache=False,
                       checkpoint=tmp_path, report=sticky)
    assert results == {}
    assert len(sticky.quarantined) == len(TASKS)
    assert all("previous run" in reason
               for reason in sticky.failures.values())

    # With the flag: verdicts cleared, cells actually run (serially,
    # with the broken pool long gone).
    retried = GridReport()
    results = run_grid(TASKS, "tiny", jobs=1, use_cache=False,
                       checkpoint=tmp_path, report=retried,
                       retry_quarantined=True)
    assert set(results) == set(TASKS)
    assert retried.completed == len(TASKS)
    assert retried.quarantined == []

    # The success is durable: a plain resume restores them as done.
    clear_cache()
    resumed = GridReport()
    results2 = run_grid(TASKS, "tiny", jobs=1, use_cache=False,
                        checkpoint=tmp_path, report=resumed)
    assert resumed.resumed == len(TASKS)
    for task in TASKS:
        assert results2[task].cycles == results[task].cycles


def test_run_grid_waves_use_the_shared_backoff_schedule(monkeypatch):
    """Satellite 1: the wave-retry sleep goes through
    :func:`repro.harness.backoff.backoff_delay` with the caller's base."""
    calls = []

    def fake_delay(attempt, *, base, **kwargs):
        calls.append((attempt, base))
        return 0.0

    monkeypatch.setattr(parallel, "backoff_delay", fake_delay)
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _DeadPool)
    run_grid(TASKS, "tiny", jobs=2, backoff=0.125, retries=1)
    assert calls == [(0, 0.125)]


# ---------------------------------------------------------------------------
# Real worker processes


def _worker_boom(abbr, technique, scale, config, cache_dir):
    raise ValueError("deterministic kernel bug")


def _worker_hang_lib(abbr, technique, scale, config, cache_dir):
    if abbr == "LIB":
        time.sleep(30)
    return _REAL_WORKER(abbr, technique, scale, config, cache_dir)


_REAL_WORKER = parallel._worker


@pytest.mark.resilience
def test_deterministic_worker_exception_reraises(monkeypatch):
    """An exception raised by the simulation itself must propagate — a
    serial re-run of a deterministic failure only reproduces it slower."""
    monkeypatch.setattr(parallel, "_worker", _worker_boom)
    with pytest.raises(ValueError, match="deterministic kernel bug"):
        run_grid(TASKS, "tiny", jobs=2)


@pytest.mark.resilience
def test_hung_worker_is_quarantined_and_grid_completes(monkeypatch,
                                                       tmp_path):
    """Acceptance criterion: with a genuinely hung worker in the pool,
    the rest of the grid completes, the hung cell is quarantined, and a
    resumed run picks up the finished cells from the checkpoint."""
    monkeypatch.setattr(parallel, "_worker", _worker_hang_lib)
    tasks = [("CP", "baseline", CFG), ("LIB", "baseline", CFG),
             ("ST", "baseline", CFG)]
    report = GridReport()
    results = run_grid(tasks, "tiny", jobs=3, timeout=8.0, retries=0,
                       backoff=0.0, checkpoint=tmp_path, report=report)
    done = {t[0] for t in results}
    assert done == {"CP", "ST"}
    assert report.timeouts == 1
    assert [t[0] for t in report.quarantined] == ["LIB"]

    clear_cache()
    resumed = GridReport()
    results2 = run_grid(tasks, "tiny", jobs=3, timeout=8.0, retries=0,
                        checkpoint=tmp_path, report=resumed)
    assert {t[0] for t in results2} == {"CP", "ST"}
    assert resumed.resumed == 2
    assert resumed.timeouts == 0
    assert [t[0] for t in resumed.quarantined] == ["LIB"]
