"""Tests for the SARIF 2.1.0 exporter (:mod:`repro.analysis.sarif`)."""

import json

from repro.analysis.diagnostics import (
    CODES,
    LintReport,
    make_diagnostic,
)
from repro.analysis.sarif import SCHEMA_VERSION, to_sarif, write_sarif
from repro.cli import main


def _report():
    report = LintReport()
    report.add(make_diagnostic("RPL052", "address off by four", "kern"))
    diag = make_diagnostic("RPL051", "missed candidate", "kern",
                           inst_index=None)
    report.add(diag)
    return report.finalize()


def test_document_shape():
    doc = to_sarif(_report())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["properties"]["schemaVersion"] == SCHEMA_VERSION
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert len(run["results"]) == 2


def test_rules_mirror_the_code_registry():
    run = to_sarif(LintReport())["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(CODES)
    by_id = {r["id"]: r for r in rules}
    assert by_id["RPL052"]["defaultConfiguration"]["level"] == "error"
    assert by_id["RPL051"]["defaultConfiguration"]["level"] == "warning"
    assert by_id["RPL054"]["shortDescription"]["text"] == \
        CODES["RPL054"][1]


def test_result_levels_and_locations():
    run = to_sarif(_report())["runs"][0]
    by_rule = {r["ruleId"]: r for r in run["results"]}
    assert by_rule["RPL052"]["level"] == "error"
    assert by_rule["RPL051"]["level"] == "warning"
    loc = by_rule["RPL052"]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "kernels/kern.reproasm"
    # No source line recorded: regions are 1-based, so line 1.
    assert loc["region"]["startLine"] == 1


def test_source_lines_flow_into_regions():
    from repro.isa import parse_kernel
    kernel = parse_kernel("""
        add r0, %tid.x, 1;
        bar;
    """, name="lined", params=())
    report = LintReport()
    report.add(make_diagnostic("RPL011", "divergent barrier", kernel,
                               inst_index=1))
    run = to_sarif(report)["runs"][0]
    line = run["results"][0]["locations"][0]["physicalLocation"][
        "region"]["startLine"]
    assert line == kernel.instructions[1].source_line
    assert line > 1


def test_write_sarif_round_trips(tmp_path):
    path = tmp_path / "out.sarif"
    write_sarif(_report(), str(path), tool_name="repro-certify")
    doc = json.loads(path.read_text())
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-certify"
    assert doc["runs"][0]["properties"]["errors"] == 1
    assert doc["runs"][0]["properties"]["warnings"] == 1
    assert doc["runs"][0]["artifacts"] == [
        {"location": {"uri": "kernels/kern.reproasm"}}]


def test_cli_certify_writes_sarif(tmp_path, capsys):
    path = tmp_path / "certify.sarif"
    assert main(["certify", "ST", "--sarif", str(path)]) == 0
    out = capsys.readouterr().out
    assert "proven equivalent" in out
    doc = json.loads(path.read_text())
    assert doc["runs"][0]["properties"]["schemaVersion"] == SCHEMA_VERSION
    assert doc["runs"][0]["results"] == []


def test_cli_lint_writes_sarif(tmp_path):
    path = tmp_path / "lint.sarif"
    assert main(["lint", "ST", "--sarif", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["version"] == "2.1.0"
