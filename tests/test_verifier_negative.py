"""Negative tests for the decoupling verifier: each check class must fire
on a targeted mutation of a known-good DecoupledProgram.

The positive path (valid programs verify clean) is covered by
``test_verifier.py``; here we prove the verifier actually *rejects* — a
verifier that silently returns ok on broken streams would let decoupler
regressions surface as queue mismatches deep inside simulations."""

import dataclasses
import re


from repro.compiler import decouple, verify
from repro.isa import Instruction, KernelBuilder, Opcode, PredReg


def make_program():
    """A small decoupled program: two affine loads, one affine store."""
    b = KernelBuilder("vt", params=("A", "O"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4)
    v1 = b.load(b.add(b.param("A"), off))
    v2 = b.load(b.add(b.param("A"), off), 4)
    b.store(b.add(b.param("O"), off), b.add(v1, v2))
    program = decouple(b.build())
    assert program.is_decoupled
    assert verify(program).ok
    return program


def with_stream(program, stream: str, instructions):
    kernel = getattr(program, stream)
    mutated = dataclasses.replace(kernel, instructions=list(instructions))
    return dataclasses.replace(program, **{stream: mutated})


def enq_indices(program):
    return [i for i, inst in enumerate(program.affine.instructions)
            if inst.is_enq]


def assert_fires(program, fragment: str):
    report = verify(program)
    assert not report.ok
    assert any(fragment in error for error in report.errors), \
        f"expected an error containing {fragment!r}, got {report.errors}"


class TestPairing:
    def test_missing_enqueue(self):
        program = make_program()
        insts = list(program.affine.instructions)
        del insts[enq_indices(program)[0]]
        assert_fires(with_stream(program, "affine", insts),
                     "queue id mismatch")

    def test_duplicate_enqueue(self):
        program = make_program()
        insts = list(program.affine.instructions)
        first = enq_indices(program)[0]
        insts.insert(first, insts[first])
        assert_fires(with_stream(program, "affine", insts),
                     "duplicate enqueue")

    def test_duplicate_dequeue(self):
        program = make_program()
        insts = list(program.nonaffine.instructions)
        deq = next(i for i in insts
                   if any(True for _ in _tokens(i)))
        insts.insert(0, deq)
        assert_fires(with_stream(program, "nonaffine", insts),
                     "duplicate dequeue")

    def test_kind_mismatch(self):
        program = make_program()
        insts = list(program.affine.instructions)
        first = enq_indices(program)[0]
        insts[first] = dataclasses.replace(insts[first],
                                           opcode=Opcode.ENQ_ADDR)
        assert_fires(with_stream(program, "affine", insts), "enq kind")


class TestOrdering:
    def test_swapped_enqueues(self):
        program = make_program()
        insts = list(program.affine.instructions)
        data_enqs = [i for i in enq_indices(program)
                     if insts[i].opcode is Opcode.ENQ_DATA]
        assert len(data_enqs) >= 2
        a, b = data_enqs[0], data_enqs[1]
        insts[a], insts[b] = insts[b], insts[a]
        assert_fires(with_stream(program, "affine", insts),
                     "out of original order")


class TestGuards:
    def test_guard_mismatch(self):
        program = make_program()
        insts = list(program.affine.instructions)
        first = enq_indices(program)[0]
        insts[first] = dataclasses.replace(insts[first],
                                           guard=PredReg("p9"))
        assert_fires(with_stream(program, "affine", insts),
                     "guard mismatch")


class TestPurity:
    def test_load_in_affine_stream(self):
        program = make_program()
        stray = next(i for i in program.nonaffine.instructions
                     if i.is_memory)
        insts = list(program.affine.instructions)
        insts.insert(len(insts) - 1, stray)
        assert_fires(with_stream(program, "affine", insts),
                     "affine stream contains a memory access")

    def test_enqueue_in_nonaffine_stream(self):
        program = make_program()
        stray = program.affine.instructions[enq_indices(program)[0]]
        insts = list(program.nonaffine.instructions)
        insts.insert(0, stray)
        assert_fires(with_stream(program, "nonaffine", insts),
                     "contains an enqueue")


class TestBarriers:
    def test_unreplicated_barrier(self):
        program = make_program()
        insts = list(program.affine.instructions)
        insts.insert(len(insts) - 1, Instruction(Opcode.BAR))
        assert_fires(with_stream(program, "affine", insts),
                     "barrier replication mismatch")


def _tokens(inst):
    from repro.isa import DeqToken
    for op in inst.srcs + inst.dsts:
        if isinstance(op, DeqToken):
            yield op
    if isinstance(inst.guard, DeqToken):
        yield inst.guard


def test_valid_program_stays_clean():
    """Sanity: the unmutated program is accepted (guards the fixtures)."""
    assert verify(make_program()).ok


class TestErrorFormat:
    """Every verifier error must locate the offending instruction as
    ``kernel[index] (line N)`` so failures are actionable without
    re-dumping the streams."""

    def test_kind_mismatch_carries_both_locations(self):
        program = make_program()
        insts = list(program.affine.instructions)
        first = enq_indices(program)[0]
        insts[first] = dataclasses.replace(insts[first],
                                           opcode=Opcode.ENQ_ADDR)
        report = verify(with_stream(program, "affine", insts))
        assert not report.ok
        error = next(e for e in report.errors if "enq kind" in e)
        assert re.search(r"enq at affine_\w+\[\d+\] \(line \d+\)", error), \
            error
        assert re.search(r"deq at na_\w+\[\d+\] \(line \d+\)", error)

    def test_duplicate_dequeue_carries_location(self):
        program = make_program()
        insts = list(program.nonaffine.instructions)
        deq = next(i for i in insts if any(True for _ in _tokens(i)))
        insts.insert(0, deq)
        report = verify(with_stream(program, "nonaffine", insts))
        error = next(e for e in report.errors if "duplicate dequeue" in e)
        assert re.search(r"\w+\[\d+\] \(line \d+\)", error), error
