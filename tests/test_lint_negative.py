"""Negative tests: every diagnostic code must fire on its seeded-defect
fixture, and the differential campaign's cheap validators must agree with
the simulator.

A linter that never fires is indistinguishable from a working one on the
clean corpus; these fixtures are the proof that each pass actually
detects the defect class it claims to."""

import pytest

from repro.analysis import CODES, Severity, lint_launch, lint_program
from repro.analysis.campaign import run_case, run_clean_case
from repro.analysis.fixtures import DEFECTS


def _lint(bundle):
    if bundle.program is not None:
        return lint_program(bundle.program, bundle.config)
    return lint_launch(bundle.launch, bundle.config)


@pytest.mark.parametrize("code", sorted(DEFECTS))
def test_defect_fixture_trips_its_code(code):
    builder, _prediction = DEFECTS[code]
    bundle = builder(seed=0)
    report = _lint(bundle)
    assert code in report.codes(), (
        f"{code} fixture did not trip its diagnostic; "
        f"got {sorted(report.codes())}")


@pytest.mark.parametrize("code", sorted(DEFECTS))
def test_defect_fixture_fails_the_gate(code):
    """Error codes must flip the exit status; warning codes must flip it
    under --strict.  This is what 'exits 1 on every seeded fixture'
    means for the CLI."""
    builder, _prediction = DEFECTS[code]
    report = _lint(builder(seed=0))
    severity, _title = CODES[code]
    if severity is Severity.ERROR:
        assert not report.ok()
    assert not report.ok(strict=True)


@pytest.mark.parametrize("code", sorted(DEFECTS))
def test_defect_fixture_is_stable_across_seeds(code):
    builder, _prediction = DEFECTS[code]
    for seed in (1, 2):
        assert code in _lint(builder(seed)).codes()


class TestCampaignValidators:
    """Cheap differential cases exercised inline; the full campaign runs
    in CI via ``repro lint --campaign``."""

    def test_dead_code_is_semantics_preserving(self):
        result = run_case("RPL001", seed=0)
        assert result.ok, vars(result)
        assert result.outcome == "preserved"

    def test_oob_access_corrupts_memory(self):
        result = run_case("RPL041", seed=0)
        assert result.ok, vars(result)
        assert result.outcome == "corrupted"

    def test_extent_overrun_corrupts_neighbor(self):
        result = run_case("RPL042", seed=0)
        assert result.ok, vars(result)
        assert result.outcome == "corrupted"

    def test_clean_case_silent_and_oracle_identical(self):
        result = run_clean_case(seed=0)
        assert result.ok, vars(result)


@pytest.mark.resilience
class TestCampaignDynamic:
    """Slow validators: these spin up the timing simulator and (for the
    queue codes) the DAC safe-mode fallback path."""

    def test_barrier_divergence_hangs(self):
        result = run_case("RPL011", seed=0)
        assert result.ok, vars(result)
        assert result.outcome == "hang"

    def test_missing_enqueue_hangs_then_falls_back(self):
        result = run_case("RPL031", seed=0)
        assert result.ok, vars(result)
        assert "safe-mode" in result.detail

    def test_race_diverges_from_oracle(self):
        result = run_case("RPL021", seed=0)
        assert result.ok, vars(result)
        assert result.outcome == "oracle-mismatch"
