"""Tests for the functional interpreter, including the oracle property:
the timing simulator must compute exactly what the functional interpreter
computes, for every benchmark."""

import numpy as np
import pytest

from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, simulate
from repro.sim.functional import run_functional
from repro.workloads import BY_ABBR, get

CFG = GPUConfig(num_sms=2)


class TestBasics:
    def test_simple_kernel(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(128)
        kernel = parse_kernel("""
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul v, tid, 3;
            mul r1, tid, 4;
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """, name="t", params=("out",))
        launch = KernelLaunch(kernel, (2, 1, 1), (64, 1, 1),
                              dict(out=out), mem)
        result = run_functional(launch)
        np.testing.assert_array_equal(mem.read_array(out, 128),
                                      np.arange(128) * 3)
        assert result.instructions == 2 * 2 * 7   # 2 blocks x 2 warps

    def test_trace_capture(self):
        mem = GlobalMemory(1 << 20)
        kernel = parse_kernel("mov r0, 1;\nexit;")
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1), {}, mem)
        result = run_functional(launch, trace=True)
        assert len(result.trace) == 2
        assert "mov" in str(result.trace[0])
        assert result.trace[0].active == 32

    def test_barrier_phases(self):
        mem = GlobalMemory(1 << 20)
        out = mem.alloc(64)
        # Warp 1 writes shared; barrier; warp 0 reads warp 1's value.
        kernel = parse_kernel("""
            setp.ge p0, %tid.x, 32;
            mul r1, %tid.x, 4;
            @p0 st.shared [r1], %tid.x;
            bar.sync;
            add r2, %tid.x, 32;
            mul r3, r2, 4;
            rem r3, r3, 256;
            ld.shared v, [r3];
            add oaddr, param.out, r1;
            st.global [oaddr], v;
        """, name="t", params=("out",))
        launch = KernelLaunch(kernel, (1, 1, 1), (64, 1, 1),
                              dict(out=out), mem, shared_words=64)
        run_functional(launch)
        got = mem.read_array(out, 64)
        # Threads 0..31 read slots 32..63 (written by warp 1 pre-barrier).
        np.testing.assert_array_equal(got[:32], np.arange(32) + 32)

    def test_runaway_guard(self):
        mem = GlobalMemory(1 << 20)
        kernel = parse_kernel("LOOP:\nmov r0, 1;\nbra LOOP;")
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1), {}, mem)
        from repro.sim.functional import FunctionalInterpreter
        interp = FunctionalInterpreter(launch, max_instructions=100)
        with pytest.raises(RuntimeError):
            interp.run()


class TestOracle:
    @pytest.mark.parametrize("abbr", sorted(BY_ABBR))
    def test_timing_simulator_matches_functional(self, abbr):
        """The timing model's memory image must equal the pure functional
        interpreter's for every benchmark."""
        benchmark = get(abbr)
        launch_f = benchmark.launch("tiny")
        run_functional(launch_f)
        launch_t = benchmark.launch("tiny")
        simulate(launch_t, CFG)
        assert np.array_equal(launch_f.memory.words,
                              launch_t.memory.words), abbr

    def test_instruction_count_matches_timing_stats(self):
        benchmark = get("LIB")
        launch_f = benchmark.launch("tiny")
        fr = run_functional(launch_f)
        launch_t = benchmark.launch("tiny")
        tr = simulate(launch_t, CFG)
        assert fr.instructions == tr.stats["warp_instructions"]
