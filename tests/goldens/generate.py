"""Regenerate the golden Stats fixtures (and the perf reference timings).

Run from the repo root::

    PYTHONPATH=src python tests/goldens/generate.py [--stats-only] [--reps N]

The JSON files written here pin the simulator's *timing semantics*: any
core change that is supposed to be a pure optimization must reproduce
every golden bit-for-bit (``tests/test_golden_stats.py`` and
``python -m repro perf`` both assert this).  ``BENCH_baseline.json`` at
the repo root additionally records the wall-clock *sample distribution*
of the core at the moment the goldens were generated (every rep, not a
single best-of number), so ``repro perf`` can run a Welch t-test against
it before calling anything a win or a regression.

Only regenerate after an *intentional* timing change, and say so in the
commit message — a golden diff is a change to simulated hardware
behaviour, never a refactor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
    RuntimeCheckers                                          # noqa: E402
from repro.harness import perfstats                          # noqa: E402
from repro.harness.bench import BENCH_MATRIX, GOLDEN_MATRIX, \
    FAULT_GOLDEN, TRACED_GOLDEN, golden_name, run_cell, time_cell  # noqa: E402
from repro.harness.runner import experiment_config           # noqa: E402

#: Baseline reps: five samples give the t-test a real reference
#: distribution to pull variance from (two-sided 95%, df via Welch).
DEFAULT_BASELINE_REPS = 5


def main(stats_only: bool = False,
         reps: int = DEFAULT_BASELINE_REPS) -> int:
    config = experiment_config()
    timings = {}
    for abbr, technique, scale in sorted(set(GOLDEN_MATRIX + BENCH_MATRIX)):
        samples, result = time_cell(abbr, technique, scale, config,
                                    reps=1 if stats_only else reps)
        name = golden_name(abbr, technique, scale)
        _write(name, dict(sorted(result.stats.as_dict().items())))
        summary = perfstats.summarize(samples)
        timings[name] = {
            "samples": samples,
            "wall_seconds": summary.mean,
            "stddev_wall_seconds": summary.stddev,
            "cycles": result.cycles,
        }
        spread = (f" ±{summary.ci_halfwidth:.3f}"
                  if summary.ci_halfwidth is not None else "")
        print(f"  {name}: {result.cycles} cycles, "
              f"{summary.mean:.3f}s{spread} over {summary.n} rep(s)")

    # Traced run: the stall-attribution buckets must survive too.
    abbr, technique, scale = TRACED_GOLDEN
    result = run_cell(abbr, technique, scale, config, trace=True)
    _write(f"traced_{golden_name(abbr, technique, scale)}",
           dict(sorted(result.stats.as_dict().items())))

    # Fault-injected run: deterministic timing-only faults.
    abbr, technique, scale = FAULT_GOLDEN
    plan = FaultPlan(specs=(FaultSpec("expand_delay", 0, 4),
                            FaultSpec("dram_delay", 0, 8)))
    result = run_cell(abbr, technique, scale, config,
                      faults=FaultInjector(plan), checkers=RuntimeCheckers())
    _write(f"fault_{golden_name(abbr, technique, scale)}",
           dict(sorted(result.stats.as_dict().items())))

    if not stats_only:
        out = os.path.join(ROOT, "BENCH_baseline.json")
        with open(out, "w") as handle:
            json.dump({"schema": "repro-bench-baseline/2",
                       "reps": reps,
                       "matrix": timings,
                       "note": "reference core wall-clock sample "
                               "distributions; regenerated together "
                               "with the goldens"},
                      handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {os.path.relpath(out, ROOT)}")
    return 0


def _write(name: str, stats: dict) -> None:
    path = os.path.join(HERE, "stats", name + ".json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(stats, handle, indent=1, sort_keys=True)
    print(f"  wrote {os.path.relpath(path, ROOT)}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats-only", action="store_true",
                        help="regenerate golden Stats fixtures only; "
                             "leave BENCH_baseline.json untouched")
    parser.add_argument("--reps", type=int, default=DEFAULT_BASELINE_REPS,
                        help="timing repetitions per cell recorded in the "
                             "baseline distribution (default %(default)s)")
    cli = parser.parse_args()
    sys.exit(main(stats_only=cli.stats_only, reps=cli.reps))
