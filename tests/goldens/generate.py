"""Regenerate the golden Stats fixtures (and the perf reference timings).

Run from the repo root::

    PYTHONPATH=src python tests/goldens/generate.py [--stats-only]

The JSON files written here pin the simulator's *timing semantics*: any
core change that is supposed to be a pure optimization must reproduce
every golden bit-for-bit (``tests/test_golden_stats.py`` and
``python -m repro perf`` both assert this).  ``BENCH_baseline.json`` at
the repo root additionally records the wall-clock throughput of the core
at the moment the goldens were generated, so ``repro perf`` can report a
speedup trajectory against it.

Only regenerate after an *intentional* timing change, and say so in the
commit message — a golden diff is a change to simulated hardware
behaviour, never a refactor.
"""

from __future__ import annotations

import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.faults import FaultInjector, FaultPlan, FaultSpec, \
    RuntimeCheckers                                          # noqa: E402
from repro.harness.bench import BENCH_MATRIX, GOLDEN_MATRIX, \
    FAULT_GOLDEN, TRACED_GOLDEN, golden_name, run_cell       # noqa: E402
from repro.harness.runner import experiment_config           # noqa: E402


def _write(name: str, stats: dict) -> None:
    path = os.path.join(HERE, "stats", name + ".json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(stats, handle, indent=1, sort_keys=True)
    print(f"  wrote {os.path.relpath(path, ROOT)}")


def main(stats_only: bool = False) -> int:
    config = experiment_config()
    timings = {}
    for abbr, technique, scale in sorted(set(GOLDEN_MATRIX + BENCH_MATRIX)):
        best = None
        reps = 1 if stats_only else 2
        for _ in range(reps):
            t0 = time.perf_counter()
            result = run_cell(abbr, technique, scale, config)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        name = golden_name(abbr, technique, scale)
        _write(name, dict(sorted(result.stats.as_dict().items())))
        timings[name] = {"wall_seconds": best, "cycles": result.cycles}
        print(f"  {name}: {result.cycles} cycles, {best:.3f}s")

    # Traced run: the stall-attribution buckets must survive too.
    abbr, technique, scale = TRACED_GOLDEN
    result = run_cell(abbr, technique, scale, config, trace=True)
    _write(f"traced_{golden_name(abbr, technique, scale)}",
           dict(sorted(result.stats.as_dict().items())))

    # Fault-injected run: deterministic timing-only faults.
    abbr, technique, scale = FAULT_GOLDEN
    plan = FaultPlan(specs=(FaultSpec("expand_delay", 0, 4),
                            FaultSpec("dram_delay", 0, 8)))
    result = run_cell(abbr, technique, scale, config,
                      faults=FaultInjector(plan), checkers=RuntimeCheckers())
    _write(f"fault_{golden_name(abbr, technique, scale)}",
           dict(sorted(result.stats.as_dict().items())))

    if not stats_only:
        out = os.path.join(ROOT, "BENCH_baseline.json")
        with open(out, "w") as handle:
            json.dump({"matrix": timings,
                       "note": "reference core wall-clock; regenerated "
                               "together with the goldens"},
                      handle, indent=1, sort_keys=True)
        print(f"  wrote {os.path.relpath(out, ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(stats_only="--stats-only" in sys.argv))
