"""Tests for the sweep utilities."""

import pytest

from repro.config import GPUConfig
from repro.harness import experiment_config, override, sweep


class TestOverride:
    def test_top_level(self):
        cfg = override(GPUConfig(), "num_sms", 3)
        assert cfg.num_sms == 3

    def test_nested(self):
        cfg = override(GPUConfig(), "dac.pwaq_entries", 96)
        assert cfg.dac.pwaq_entries == 96
        assert cfg.dac.pwpq_entries == 192      # untouched

    def test_cache_field(self):
        cfg = override(GPUConfig(), "l1.size_bytes", 4096)
        assert cfg.l1.size_bytes == 4096

    def test_too_deep(self):
        with pytest.raises(ValueError):
            override(GPUConfig(), "a.b.c", 1)


class TestSweep:
    def test_sweep_runs_and_reports(self):
        cfg = experiment_config(num_sms=2)
        result = sweep("CS", "dac.pwaq_entries", [48, 192], cfg,
                       scale="tiny", keep_stats=("dac.records",))
        assert len(result.points) == 2
        assert all(p.speedup > 0 for p in result.points)
        assert all("dac.records" in p.stats for p in result.points)
        text = result.table()
        assert "dac.pwaq_entries" in text and "CS" in text

    def test_sweep_other_technique(self):
        cfg = experiment_config(num_sms=2)
        result = sweep("CS", "mta.prefetch_degree", [0, 4], cfg,
                       technique="mta", scale="tiny")
        assert len(result.points) == 2

    def test_sweep_parallel_matches_serial(self):
        from repro.harness import clear_cache
        cfg = experiment_config(num_sms=2)
        clear_cache()
        serial = sweep("CS", "dac.pwaq_entries", [48, 192], cfg,
                       scale="tiny", use_cache=False)
        clear_cache()
        par = sweep("CS", "dac.pwaq_entries", [48, 192], cfg,
                    scale="tiny", jobs=2)
        assert [p.cycles for p in par.points] == \
            [p.cycles for p in serial.points]
        assert [p.speedup for p in par.points] == \
            [p.speedup for p in serial.points]
        clear_cache()
