"""Tests for the energy and area models."""

import numpy as np
import pytest

from repro.core import run_dac
from repro.energy import area_report, dac_sram_bytes, energy_of
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, simulate

CFG = GPUConfig(num_sms=1)

SRC = """
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add xaddr, param.X, r1;
    ld.global v, [xaddr];
    add w, v, 1;
    add oaddr, param.O, r1;
    st.global [oaddr], w;
"""


def _launch():
    mem = GlobalMemory(1 << 20)
    params = dict(X=mem.alloc_array(np.arange(128)), O=mem.alloc(128))
    kernel = parse_kernel(SRC, name="t", params=("X", "O"))
    return KernelLaunch(kernel, (2, 1, 1), (64, 1, 1), params, mem)


class TestEnergyModel:
    def test_breakdown_sums(self):
        result = simulate(_launch(), CFG)
        e = energy_of(result)
        assert e.total == pytest.approx(e.dynamic + e.static)
        assert e.dynamic == pytest.approx(
            e.alu + e.register_file + e.dac_overhead + e.other_dynamic)
        assert e.total > 0

    def test_baseline_has_no_dac_overhead(self):
        e = energy_of(simulate(_launch(), CFG))
        assert e.dac_overhead == 0.0

    def test_dac_has_overhead_but_lower_total(self):
        base = energy_of(simulate(_launch(), CFG))
        dac = energy_of(run_dac(_launch(), CFG))
        assert dac.dac_overhead > 0
        norm = dac.normalized_to(base)
        assert norm["total"] < 1.1          # never dramatically worse
        assert 0 < norm["dac_overhead"] < 0.1   # small overhead (§5.6)

    def test_static_scales_with_cycles(self):
        short = energy_of(simulate(_launch(), CFG))
        long_cfg = GPUConfig(num_sms=1).with_perfect_memory()
        fast = energy_of(simulate(_launch(), long_cfg))
        assert fast.static < short.static

    def test_normalized_keys(self):
        base = energy_of(simulate(_launch(), CFG))
        norm = base.normalized_to(base)
        assert norm["total"] == pytest.approx(1.0)
        assert set(norm) == {"dac_overhead", "alu", "register",
                             "other_dynamic", "static", "total"}


class TestAreaModel:
    def test_matches_paper_overhead(self):
        report = area_report()
        # Paper §4.8: 1.06 %; our per-entry sizes reproduce ~1.08 %.
        assert report.overhead_fraction == pytest.approx(0.0106, abs=0.002)

    def test_sram_budget_near_6kb(self):
        # Paper: "the various SRAM components ... add 6 KB per SM".
        assert dac_sram_bytes(GPUConfig().dac) == pytest.approx(6 * 1024,
                                                                rel=0.05)

    def test_components_positive(self):
        report = area_report()
        assert report.sram_mm2_per_sm > 0
        assert report.alu_mm2_per_sm == pytest.approx(0.16, abs=0.01)
        assert report.total_mm2 < 10

    def test_table_renders(self):
        text = area_report().table()
        assert "Overhead" in text and "%" in text
