"""Fault-injection subsystem: seeded plans, the null fast path, runtime
checkers, safe-mode fallback, and the detect-or-survive contract.

Every injected microarchitectural fault must be *detected* (a checker
fires, the machine wedges into a reported hang, or the final memory image
differs from the functional oracle) or *survived* (bit-identical memory,
e.g. timing-only faults) — never a silent hang or an unclassified crash.
"""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.core import run_dac
from repro.faults import (
    CheckerError,
    FAULT_CLASSES,
    FaultPlan,
    FaultSpec,
    NULL_FAULTS,
    RuntimeCheckers,
)
from repro.faults.campaign import OUTCOMES, run_campaign, run_case
from repro.sim.functional import run_functional
from repro.workloads.fuzz import build_fuzz_launch

CFG = GPUConfig(num_sms=1, max_cycles=300_000)


class TestPlan:
    def test_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("rowhammer", 0)

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(seed=5, count=4)
        b = FaultPlan.random(seed=5, count=4)
        assert a.specs == b.specs
        assert FaultPlan.random(seed=6, count=4).specs != a.specs

    def test_empty_plan_yields_the_null_injector(self):
        assert FaultPlan((), seed=0).injector() is NULL_FAULTS
        assert not NULL_FAULTS.enabled
        assert NULL_FAULTS.fired() == 0

    def test_single_builds_one_spec(self):
        plan = FaultPlan.single("atq_drop", 2, magnitude=3)
        assert plan.specs == (FaultSpec("atq_drop", 2, 3),)
        assert plan.injector().enabled


class TestNullFastPath:
    def test_fault_free_run_bit_identical(self):
        """Acceptance criterion: a null plan (and passive checkers) must
        not perturb a run — same cycles, same stats, same memory."""
        runs = []
        for faults, checkers in ((None, None),
                                 (FaultPlan((), 0).injector(), None),
                                 (None, RuntimeCheckers())):
            launch = build_fuzz_launch(11)
            result = run_dac(launch, CFG, faults=faults, checkers=checkers)
            runs.append((result.cycles, result.stats.as_dict(),
                         launch.memory.words))
        for cycles, stats, words in runs[1:]:
            assert cycles == runs[0][0]
            assert stats == runs[0][1]
            assert np.array_equal(words, runs[0][2])


class TestDetectOrSurvive:
    @pytest.mark.parametrize("kind", FAULT_CLASSES)
    def test_class_detected_or_survived(self, kind):
        report = run_campaign(range(3), [kind])
        assert report.ok, report.render()
        for cell in report.outcomes:
            assert cell.outcome in OUTCOMES
        triggered = [c for c in report.outcomes
                     if c.outcome != "not-triggered"]
        assert triggered, f"{kind} never reached its fault site"


class TestSafeMode:
    def test_checker_fault_raises_without_safe_mode(self):
        launch = build_fuzz_launch(0)
        with pytest.raises(CheckerError):
            run_dac(launch, CFG,
                    faults=FaultPlan.single("atq_drop", 0).injector(),
                    checkers=RuntimeCheckers())

    def test_fallback_restores_memory_and_counts(self):
        oracle = build_fuzz_launch(0)
        run_functional(oracle)
        launch = build_fuzz_launch(0)
        result = run_dac(launch, CFG,
                         faults=FaultPlan.single("atq_drop", 0).injector(),
                         checkers=RuntimeCheckers(), safe_mode=True)
        assert result.stats["dac.fallbacks"] == 1
        assert result.extra["fallback_reason"].startswith("CheckerError")
        assert np.array_equal(launch.memory.words, oracle.memory.words)

    def test_run_case_classifies_fallback(self):
        cell = run_case(0, "atq_drop", safe_mode=True)
        assert cell.outcome == "fallback"
        assert cell.ok


def test_faults_land_on_the_trace_timeline(tmp_path):
    """A traced faulted run marks each injection as a ``fault.<kind>``
    instant event, and the Chrome export accepts it."""
    from repro.trace import Tracer, write_chrome_trace

    launch = build_fuzz_launch(0)
    tracer = Tracer()
    with pytest.raises(CheckerError):
        run_dac(launch, CFG, tracer=tracer,
                faults=FaultPlan.single("atq_drop", 0).injector(),
                checkers=RuntimeCheckers())
    marks = [e for e in tracer.events if e[0] == "fault"]
    assert marks
    assert marks[0][4] == "fault.atq_drop"
    write_chrome_trace(tracer, tmp_path / "t.json")
    assert "fault.atq_drop" in (tmp_path / "t.json").read_text()


@pytest.mark.resilience
def test_hundred_seed_fault_fuzz_never_silent():
    """Acceptance criterion: zero silent hangs or unclassified crashes
    across a 100-seed fault fuzz (fault class rotates per seed)."""
    outcomes = []
    for seed in range(100):
        kind = FAULT_CLASSES[seed % len(FAULT_CLASSES)]
        outcomes.append(run_case(seed, kind))
    bad = [c for c in outcomes if not c.ok]
    assert not bad, "\n".join(f"seed {c.seed} {c.kind}: {c.detail}"
                              for c in bad)
