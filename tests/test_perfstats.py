"""The perf gate's statistics layer (``repro.harness.perfstats``).

Synthetic distributions with known accept/reject outcomes pin the Welch
t-test, small-sample edge cases pin the degenerate paths (one rep, zero
variance), and a temp-dir round-trip pins the ``BENCH_history.jsonl``
schema.  No scipy anywhere — the t-table and Welch–Satterthwaite df are
hand-rolled, so they get checked against textbook values here.
"""

import json
import math

import pytest

from repro.harness import perfstats
from repro.harness.perfstats import (
    summarize,
    t_critical,
    verdict,
    welch_t_test,
)


class TestTCritical:
    def test_textbook_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(4) == pytest.approx(2.776)
        assert t_critical(30) == pytest.approx(2.042)
        assert t_critical(4, alpha=0.01) == pytest.approx(4.604)

    def test_fractional_df_interpolates_between_rows(self):
        mid = t_critical(4.5)
        assert t_critical(5) < mid < t_critical(4)

    def test_large_df_approaches_normal_limit(self):
        assert t_critical(120) == pytest.approx(1.980)
        assert 1.960 < t_critical(5000) < 1.965
        assert t_critical(10**9) == pytest.approx(1.960, abs=1e-3)

    def test_monotonic_decreasing_in_df(self):
        values = [t_critical(df) for df in
                  (1, 2, 3.5, 10, 29.9, 30, 45, 80, 120, 200, 1000)]
        assert values == sorted(values, reverse=True)

    def test_untabulated_alpha_rejected(self):
        with pytest.raises(ValueError):
            t_critical(10, alpha=0.10)

    def test_nonpositive_df_rejected(self):
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(-3)


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == pytest.approx(3.0)
        assert s.stddev == pytest.approx(math.sqrt(2.5))
        assert s.minimum == 1.0 and s.maximum == 5.0
        # CI = mean ± t_crit(4) * s/sqrt(5)
        half = 2.776 * math.sqrt(2.5) / math.sqrt(5)
        assert s.ci_low == pytest.approx(3.0 - half, rel=1e-3)
        assert s.ci_high == pytest.approx(3.0 + half, rel=1e-3)

    def test_ci_contains_mean_and_shrinks_with_n(self):
        base = [10.0, 10.5, 9.5, 10.2, 9.8]
        small = summarize(base)
        large = summarize(base * 8)  # same dispersion, 8x the samples
        assert small.ci_low < small.mean < small.ci_high
        assert large.ci_halfwidth < small.ci_halfwidth

    def test_single_rep_has_no_dispersion_estimate(self):
        s = summarize([4.2])
        assert s.n == 1 and s.mean == 4.2
        assert s.stddev is None and s.sem is None
        assert s.ci_low is None and s.ci_high is None
        assert s.ci_halfwidth is None

    def test_zero_variance_gives_zero_width_ci(self):
        s = summarize([2.5, 2.5, 2.5])
        assert s.stddev == 0.0
        assert s.ci_low == s.ci_high == s.mean

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_round_trips_through_json(self):
        d = json.loads(json.dumps(summarize([1.0, 2.0]).as_dict()))
        assert d["n"] == 2 and d["mean"] == pytest.approx(1.5)


class TestWelchTTest:
    # Two fixed draws from the same N(1, 0.05) distribution: must accept
    # the null (no significant difference).
    SAME_A = [1.02, 0.98, 1.01, 0.99, 1.03, 0.97, 1.00, 1.01]
    SAME_B = [0.99, 1.02, 1.00, 0.98, 1.01, 1.03, 0.97, 1.00]
    # Clearly shifted mean, similar tight spread: must reject the null.
    SHIFTED = [1.52, 1.48, 1.51, 1.49, 1.53, 1.47, 1.50, 1.51]

    def test_same_mean_not_significant(self):
        test = welch_t_test(self.SAME_A, self.SAME_B)
        assert not test.significant
        assert test.t is not None and abs(test.t) < test.critical

    def test_shifted_mean_significant(self):
        test = welch_t_test(self.SAME_A, self.SHIFTED)
        assert test.significant
        assert abs(test.t) > test.critical
        assert test.t < 0  # a mean is lower than b mean

    def test_direction_symmetry(self):
        fwd = welch_t_test(self.SAME_A, self.SHIFTED)
        rev = welch_t_test(self.SHIFTED, self.SAME_A)
        assert fwd.t == pytest.approx(-rev.t)
        assert fwd.df == pytest.approx(rev.df)

    def test_welch_df_between_min_and_pooled(self):
        test = welch_t_test(self.SAME_A, self.SHIFTED)
        n_a, n_b = len(self.SAME_A), len(self.SHIFTED)
        assert min(n_a, n_b) - 1 <= test.df <= n_a + n_b - 2

    def test_single_rep_not_computable(self):
        test = welch_t_test([1.0], [2.0, 2.1, 1.9])
        assert not test.significant
        assert test.t is None
        assert "not computable" in test.detail

    def test_empty_side_not_computable(self):
        test = welch_t_test([], [1.0, 2.0])
        assert not test.significant and test.t is None

    def test_zero_variance_identical_means(self):
        test = welch_t_test([3.0, 3.0, 3.0], [3.0, 3.0])
        assert not test.significant
        assert "identical means" in test.detail

    def test_zero_variance_distinct_means(self):
        test = welch_t_test([3.0, 3.0, 3.0], [4.0, 4.0])
        assert test.significant
        assert "distinct means" in test.detail

    def test_one_sided_zero_variance_still_computes(self):
        test = welch_t_test([3.0, 3.0, 3.0], [4.0, 4.2, 3.8])
        assert test.t is not None and test.significant

    def test_result_round_trips_through_json(self):
        d = json.loads(json.dumps(
            welch_t_test(self.SAME_A, self.SHIFTED).as_dict()))
        assert d["significant"] is True and d["alpha"] == 0.05


class TestVerdict:
    FAST = [1.00, 1.02, 0.98, 1.01, 0.99]
    SLOW = [2.00, 2.03, 1.97, 2.01, 1.99]

    def test_faster_than_reference_is_win(self):
        v, test = verdict(self.FAST, self.SLOW)
        assert v == "win" and test.significant

    def test_slower_than_reference_is_regression(self):
        v, test = verdict(self.SLOW, self.FAST)
        assert v == "regression" and test.significant

    def test_indistinguishable_is_inconclusive(self):
        v, _ = verdict(self.FAST, [1.01, 0.99, 1.00, 1.02, 0.98])
        assert v == "inconclusive"

    def test_single_reference_sample_is_inconclusive(self):
        # Old-format baselines carry one sample; no fake verdicts.
        v, test = verdict(self.FAST, [5.0])
        assert v == "inconclusive" and test.t is None

    def test_verdict_vocabulary_is_closed(self):
        assert set(perfstats.VERDICTS) == {
            "win", "regression", "inconclusive"}


class TestHistory:
    def _payload(self):
        return {
            "quick": True, "reps": 5, "ok": True,
            "geomean_speedup_vs_reference": 2.25,
            "cells": {
                "CP_dac_tiny": {"wall_seconds": 0.01, "reps": 5,
                                "speedup_vs_reference": 2.5,
                                "verdict": "win",
                                "stats_identical": True},
                "BP_dac_tiny": {"wall_seconds": 0.02, "reps": 5,
                                "speedup_vs_reference": 0.9,
                                "verdict": "regression",
                                "stats_identical": True},
                "SG_dac_tiny": {"wall_seconds": 0.03, "reps": 5,
                                "speedup_vs_reference": None,
                                "verdict": None,
                                "stats_identical": True},
            },
        }

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_history.jsonl")
        entry = perfstats.history_entry(self._payload(), str(tmp_path),
                                        bench_file="BENCH_6.json",
                                        now=1_754_000_000.0)
        perfstats.append_history(path, entry)
        perfstats.append_history(path, entry)
        entries = perfstats.load_history(path)
        assert len(entries) == 2
        got = entries[0]
        assert got["schema"] == perfstats.HISTORY_SCHEMA
        assert got["bench_file"] == "BENCH_6.json"
        assert got["timestamp"] == 1_754_000_000.0
        assert got["utc"].startswith("2025-")
        assert got["verdicts"] == {"win": 1, "regression": 1,
                                   "inconclusive": 0, "no-reference": 1}
        assert got["cells"]["CP_dac_tiny"]["verdict"] == "win"
        assert got["geomean_speedup_vs_reference"] == 2.25
        # Outside a git checkout the fingerprint degrades gracefully.
        assert "sha" in got["git"] and "python" in got["host"]

    def test_each_entry_is_one_json_line(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        entry = perfstats.history_entry(self._payload(), str(tmp_path))
        perfstats.append_history(path, entry)
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["schema"] == perfstats.HISTORY_SCHEMA

    def test_load_skips_corrupt_and_blank_lines(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        entry = perfstats.history_entry(self._payload(), str(tmp_path))
        with open(path, "w") as handle:
            handle.write("not json{{{\n\n")
            handle.write(json.dumps(entry) + "\n")
            handle.write('"a bare string is not an entry"\n')
        entries = perfstats.load_history(path)
        assert len(entries) == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert perfstats.load_history(str(tmp_path / "absent.jsonl")) == []

    def test_history_report_renders_trajectory(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        first = self._payload()
        first["geomean_speedup_vs_reference"] = 1.0
        perfstats.append_history(path, perfstats.history_entry(
            first, str(tmp_path), now=1_753_000_000.0))
        perfstats.append_history(path, perfstats.history_entry(
            self._payload(), str(tmp_path), now=1_754_000_000.0))
        report = perfstats.history_report(perfstats.load_history(path))
        assert "perf trajectory (2 runs)" in report
        assert "1.00x -> latest 2.25x" in report
        assert "regression verdict(s)" in report

    def test_history_report_empty_series(self):
        assert "no perf history yet" in perfstats.history_report([])
