"""Perf-harness plumbing (``repro.harness.bench``) minus the simulations.

Pins the PR-6 bugfixes: the bench index is derived from the files at the
repo root (no hardcoded ``BENCH_5.json``), legitimate ``0.0`` values are
not rendered as missing, every rep's sample is kept, and a missing
``BENCH_baseline.json`` is reported explicitly instead of as silent
``-`` columns.
"""

import json

import pytest

from repro.harness import bench
from repro.harness.bench import (
    bench_report,
    default_bench_path,
    load_reference,
    next_bench_index,
    time_cell,
)


class TestBenchIndex:
    def test_empty_root_starts_at_one(self, tmp_path):
        assert next_bench_index(str(tmp_path)) == 1

    def test_next_after_existing_files(self, tmp_path):
        for name in ("BENCH_3.json", "BENCH_12.json", "BENCH_5.json"):
            (tmp_path / name).write_text("{}")
        assert next_bench_index(str(tmp_path)) == 13
        assert default_bench_path(str(tmp_path)).endswith("BENCH_13.json")

    def test_non_numeric_bench_files_ignored(self, tmp_path):
        for name in ("BENCH_baseline.json", "BENCH_history.jsonl",
                     "BENCH_ci_smoke.json", "BENCH_07x.json", "BENCH_.json",
                     "BENCH_2.json.bak"):
            (tmp_path / name).write_text("")
        assert next_bench_index(str(tmp_path)) == 1

    def test_repo_root_derives_next_index(self):
        # The repo has BENCH_<n>.json files committed; whatever the
        # current max is, the derived index must be exactly one past it
        # and never collide with an existing file.
        import os
        index = next_bench_index()
        assert index >= 6  # BENCH_5.json shipped with PR 5
        assert not os.path.exists(
            os.path.join(bench._ROOT, f"BENCH_{index}.json"))


class TestLoadReference:
    def test_missing_baseline_returns_none_not_empty(self, tmp_path):
        assert load_reference(str(tmp_path / "absent.json")) is None

    def test_old_format_single_number_becomes_one_sample(self, tmp_path):
        path = tmp_path / "BENCH_baseline.json"
        path.write_text(json.dumps({"matrix": {
            "CP_dac_tiny": {"wall_seconds": 0.5, "cycles": 100}}}))
        ref = load_reference(str(path))
        assert ref["CP_dac_tiny"]["samples"] == [0.5]
        assert ref["CP_dac_tiny"]["wall_seconds"] == 0.5
        assert ref["CP_dac_tiny"]["cycles"] == 100

    def test_new_format_keeps_distribution(self, tmp_path):
        path = tmp_path / "BENCH_baseline.json"
        path.write_text(json.dumps({"matrix": {
            "CP_dac_tiny": {"samples": [0.4, 0.6, 0.5],
                            "wall_seconds": 0.5, "cycles": 100}}}))
        ref = load_reference(str(path))
        assert ref["CP_dac_tiny"]["samples"] == [0.4, 0.6, 0.5]
        assert ref["CP_dac_tiny"]["wall_seconds"] == pytest.approx(0.5)

    def test_committed_baseline_loads_with_samples(self):
        ref = load_reference()
        assert ref, "repo BENCH_baseline.json should load"
        for entry in ref.values():
            assert entry["samples"], "every cell carries a distribution"


def _cell(**overrides):
    cell = {
        "cycles": 1000,
        "samples_wall_seconds": [0.1, 0.1, 0.1],
        "reps": 3,
        "wall_seconds": 0.1,
        "stddev_wall_seconds": 0.0,
        "ci95_wall_seconds": [0.1, 0.1],
        "min_wall_seconds": 0.1,
        "sim_cycles_per_second": 10000.0,
        "ref_wall_seconds": 0.2,
        "ref_samples_wall_seconds": [0.2, 0.2, 0.2],
        "speedup_vs_reference": 2.0,
        "t_test": None,
        "verdict": "win",
        "stats_identical": True,
    }
    cell.update(overrides)
    return cell


def _payload(cells, **overrides):
    payload = {
        "schema": "repro-bench/2", "quick": True, "reps": 3,
        "alpha": 0.05, "reference_available": True,
        "cells": cells, "mismatches": {},
        "geomean_speedup_vs_reference": None,
        "verdicts": {"win": 0, "regression": 0, "inconclusive": 0},
        "ok": True,
    }
    payload.update(overrides)
    return payload


class TestBenchReport:
    def test_zero_speedup_and_zero_ref_render_as_numbers(self):
        # 0.0 is a legitimate measured value, not a missing one — the
        # old report's falsy checks collapsed both to "-".
        report = bench_report(_payload({"X_dac_tiny": _cell(
            ref_wall_seconds=0.0, speedup_vs_reference=0.0)}))
        row = next(line for line in report.splitlines()
                   if line.startswith("X_dac_tiny"))
        assert "0.000" in row and "0.00x" in row
        assert " - " not in row

    def test_missing_reference_renders_dash_and_explicit_note(self):
        report = bench_report(_payload(
            {"X_dac_tiny": _cell(ref_wall_seconds=None,
                                 ref_samples_wall_seconds=None,
                                 speedup_vs_reference=None, verdict=None)},
            reference_available=False,
            verdicts={"win": 0, "regression": 0, "inconclusive": 0}))
        assert "no wall-clock reference; speedups and verdicts unavailable" \
            in report
        assert "BENCH_baseline.json" in report

    def test_ci_and_verdict_shown(self):
        report = bench_report(_payload(
            {"X_dac_tiny": _cell(ci95_wall_seconds=[0.09, 0.11])},
            verdicts={"win": 1, "regression": 0, "inconclusive": 0},
            geomean_speedup_vs_reference=2.0))
        assert "0.100±0.010" in report
        assert "win" in report
        assert "t-test verdicts vs reference" in report
        assert "geomean speedup vs reference core: 2.00x" in report

    def test_mismatch_block_still_renders(self):
        report = bench_report(_payload(
            {"X_dac_tiny": _cell(stats_identical=False)},
            mismatches={"X_dac_tiny": ["cycles: got 1, golden 2"]},
            ok=False))
        assert "STATS MISMATCH X_dac_tiny" in report
        assert "cycles: got 1, golden 2" in report


class TestTimeCell:
    def test_every_rep_sample_is_recorded(self):
        samples, result = time_cell("CP", "baseline", "tiny", reps=3)
        assert len(samples) == 3
        assert all(s > 0.0 for s in samples)
        assert result.cycles > 0

    def test_reps_floor_is_one(self):
        samples, _ = time_cell("CP", "baseline", "tiny", reps=0)
        assert len(samples) == 1
