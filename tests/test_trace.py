"""Tests for the cycle-level tracer: the stall-attribution accounting
invariant, the samplers, and the Chrome-trace / CSV exporters."""

import csv
import json

import pytest

from repro.cli import main
from repro.harness.runner import TECHNIQUES, experiment_config, run_one
from repro.harness.profile import profile
from repro.trace import STALL_REASONS, NullTracer, Tracer, stall_buckets, stall_report, write_chrome_trace, write_occupancy_csv, OCCUPANCY_COLUMNS

CONFIG = experiment_config(num_sms=2)
WORKLOADS = ("LIB", "CP", "BP", "HI", "MT")


def traced(abbr, technique, tracer=None):
    tracer = tracer or Tracer()
    result = run_one(abbr, technique, "tiny", CONFIG, use_cache=False,
                     trace=tracer)
    return result, tracer


# ---------------------------------------------------------------------------
# The accounting invariant: every scheduler slot of every cycle lands in
# exactly one bucket.

@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("abbr", WORKLOADS)
def test_stall_buckets_sum_to_issue_slots(abbr, technique):
    result, tracer = traced(abbr, technique)
    slots = result.cycles * CONFIG.num_sms * CONFIG.num_schedulers
    assert sum(tracer.stall_cycles.values()) == slots
    assert sum(stall_buckets(result.stats).values()) == slots
    assert set(tracer.stall_cycles) <= set(STALL_REASONS)
    # The per-warp breakdown is a refinement of the same total.
    assert sum(tracer.warp_stalls.values()) == slots


def test_dac_specific_buckets_appear():
    """DAC runs can stall on queue state; the diagnosis must surface it."""
    _, tracer = traced("LIB", "dac")
    assert tracer.stall_cycles["queue_empty"] > 0


def test_samples_cover_run():
    result, tracer = traced("LIB", "dac")
    cycles = [s[0] for s in tracer.samples]
    assert cycles == sorted(cycles)
    assert cycles[-1] <= result.cycles
    sms = {s[1] for s in tracer.samples}
    assert sms == set(range(CONFIG.num_sms))
    for _, _, atq, pwaq, pwpq, runahead in tracer.samples:
        assert runahead == atq + pwaq + pwpq
    # DAC actually runs ahead at some point.
    assert any(s[5] > 0 for s in tracer.samples)


def test_baseline_samples_are_zero():
    _, tracer = traced("LIB", "baseline")
    assert all(s[5] == 0 for s in tracer.samples)


# ---------------------------------------------------------------------------
# Exporters.

def test_chrome_trace_structure(tmp_path):
    result, tracer = traced("LIB", "dac")
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, path)
    data = json.loads(path.read_text())      # must round-trip as JSON
    events = data["traceEvents"]
    assert events
    assert data["otherData"]["cycles"] == result.cycles
    phases = set()
    for event in events:
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["ph"] in ("X", "i", "C", "M")
        phases.add(event["ph"])
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert event["ts"] >= 0
    assert phases == {"X", "i", "C", "M"}
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "SM 0" in names and "memory hierarchy" in names


def test_occupancy_csv(tmp_path):
    _, tracer = traced("LIB", "dac")
    path = tmp_path / "occ.csv"
    write_occupancy_csv(tracer, path)
    rows = list(csv.reader(path.open()))
    assert rows[0] == list(OCCUPANCY_COLUMNS)
    assert len(rows) == len(tracer.samples) + 1


def test_stall_report_renders():
    result, tracer = traced("LIB", "dac")
    text = stall_report(result, tracer)
    assert "stall attribution" in text
    assert "100.0%" in text                  # the total row
    assert "most-stalled warp slots" in text


def test_profile_breakdown_sums_to_one():
    result, _ = traced("LIB", "dac")
    breakdown = profile(result).stall_breakdown
    assert breakdown
    assert sum(breakdown.values()) == pytest.approx(1.0)
    untraced = run_one("LIB", "dac", "tiny", CONFIG, use_cache=False)
    assert profile(untraced).stall_breakdown == {}


# ---------------------------------------------------------------------------
# The null tracer and the CLI.

def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert not tracer.enabled
    tracer.commit(0, 1, [])
    tracer.finalize(None, 0, None)           # must not touch its arguments


def test_cli_trace_subcommand(tmp_path, capsys):
    out = tmp_path / "t.json"
    occ = tmp_path / "o.csv"
    code = main(["trace", "lib", "--sms", "2", "--out", str(out),
                 "--csv", str(occ), "--sample", "32"])
    assert code == 0
    assert json.loads(out.read_text())["traceEvents"]
    assert occ.exists()
    text = capsys.readouterr().out
    assert "stall attribution" in text
