"""Tests for the compiler: CFG, reaching definitions, affine analysis, and
the decoupling transform (paper §4.7)."""


from repro.affine import OperandClass
from repro.compiler.affine_analysis import AffineAnalysis
from repro.compiler.cfg import CFG
from repro.compiler.dataflow import ReachingDefs
from repro.compiler.decouple import decouple
from repro.isa import DeqToken, Opcode, parse_kernel

#: The paper's running example (Fig. 4b).
PAPER_KERNEL = parse_kernel("""
    mul r0, %ctaid.x, %ntid.x;
    add tid, %tid.x, r0;
    mul r1, tid, 4;
    add addrA, param.A, r1;
    add addrB, param.B, r1;
    mov i, 0;
LOOP:
    ld.global tmp, [addrA];
    add r2, tmp, 1;
    st.global [addrB], r2;
    add i, i, 1;
    mul r3, param.num, 4;
    add addrA, r3, addrA;
    add addrB, r3, addrB;
    setp.ne p0, param.dim, i;
    @p0 bra LOOP;
""", name="example", params=("A", "B", "dim", "num"))


class TestCFG:
    def test_blocks_of_paper_kernel(self):
        cfg = CFG(PAPER_KERNEL)
        # Prologue block, loop body block, exit block.
        assert len(cfg.blocks) == 3
        assert cfg.blocks[1].start == PAPER_KERNEL.labels["LOOP"]

    def test_loop_back_edge(self):
        cfg = CFG(PAPER_KERNEL)
        body = cfg.blocks[1]
        assert body.index in body.successors       # self loop
        assert cfg.blocks[2].index in body.successors

    def test_reconvergence_of_if_else(self):
        k = parse_kernel("""
            setp.lt p0, %tid.x, 16;
            @!p0 bra ELSE;
            mov v, 1;
            bra DONE;
        ELSE:
            mov v, 2;
        DONE:
            st.global [param.out], v;
        """, params=("out",))
        cfg = CFG(k)
        branch_idx = 1
        assert cfg.reconvergence_pc(branch_idx) == k.labels["DONE"]

    def test_reconvergence_of_loop_is_exit_block(self):
        cfg = CFG(PAPER_KERNEL)
        branch_idx = len(PAPER_KERNEL) - 2          # @p0 bra LOOP
        assert cfg.reconvergence_pc(branch_idx) == len(PAPER_KERNEL) - 1


class TestReachingDefs:
    def test_loop_carried_definition(self):
        cfg = CFG(PAPER_KERNEL)
        rd = ReachingDefs(PAPER_KERNEL, cfg)
        load_idx = PAPER_KERNEL.labels["LOOP"]
        defs = rd.reaching(load_idx, "addrA")
        # Both the prologue def and the loop update reach the load.
        assert len(defs) == 2

    def test_straightline_single_def(self):
        k = parse_kernel("mov a, 1;\nadd b, a, 2;\nadd c, b, a;")
        rd = ReachingDefs(k, CFG(k))
        assert rd.reaching(2, "b") == {1}
        assert rd.reaching(2, "a") == {0}

    def test_backward_slice(self):
        rd = ReachingDefs(PAPER_KERNEL, CFG(PAPER_KERNEL))
        store_idx = PAPER_KERNEL.labels["LOOP"] + 2
        slice_ = rd.backward_slice({store_idx},
                                   lambda i, reg: reg == "addrB")
        names = {PAPER_KERNEL.instructions[d].dsts[0].name for d in slice_}
        # Address chain only; the stored value r2/tmp is not followed.
        assert "addrB" in names and "r1" in names
        assert "r2" not in names and "tmp" not in names


class TestAffineAnalysis:
    def test_paper_kernel_classes(self):
        a = AffineAnalysis(PAPER_KERNEL)
        classes = {PAPER_KERNEL.instructions[i].dsts[0].name:
                   a.def_class[i] for i in a.def_class
                   if PAPER_KERNEL.instructions[i].written_regs()}
        assert classes["tid"] is OperandClass.AFFINE
        assert classes["addrA"] is OperandClass.AFFINE
        assert classes["i"] is OperandClass.SCALAR
        assert classes["r3"] is OperandClass.SCALAR
        assert classes["tmp"] is OperandClass.NONAFFINE
        assert classes["r2"] is OperandClass.NONAFFINE

    def test_branch_kinds(self):
        a = AffineAnalysis(PAPER_KERNEL)
        branch_idx = len(PAPER_KERNEL) - 2
        assert a.branch_kind(branch_idx) == "scalar"

    def test_data_dependent_branch_is_nonaffine(self):
        k = parse_kernel("""
            ld.global v, [param.p];
            setp.gt p0, v, 0;
            @p0 bra SKIP;
            mov a, 1;
        SKIP:
            exit;
        """, params=("p",))
        a = AffineAnalysis(k)
        assert a.branch_kind(2) == "nonaffine"
        assert a.nonaffine_control_dep(3)          # mov under the branch

    def test_potential_affine_fractions(self):
        a = AffineAnalysis(PAPER_KERNEL)
        fractions = a.potential_affine_fractions()
        assert fractions["memory"] > 0              # both accesses affine
        assert fractions["arithmetic"] > 0.3
        assert sum(fractions.values()) <= 1.0

    def test_loop_blocks(self):
        a = AffineAnalysis(PAPER_KERNEL)
        assert a.in_loop(PAPER_KERNEL.labels["LOOP"])
        assert not a.in_loop(0)

    def test_guarded_write_joins_old_defs(self):
        k = parse_kernel("""
            ld.global v, [param.p];
            mov a, 1;
            setp.lt p0, %tid.x, 4;
            @p0 mov a, v;
            add b, a, 1;
        """, params=("p",))
        a = AffineAnalysis(k)
        # After the guarded merge with a non-affine value, 'a' and 'b' are
        # non-affine.
        assert a.def_class[3] is OperandClass.NONAFFINE
        assert a.def_class[4] is OperandClass.NONAFFINE


class TestDecouple:
    def test_paper_example_matches_figure7(self):
        p = decouple(PAPER_KERNEL)
        assert p.is_decoupled
        assert p.decoupled_loads == 1
        assert p.decoupled_stores == 1
        assert p.decoupled_preds == 1
        affine_ops = [i.opcode for i in p.affine.instructions]
        assert Opcode.ENQ_DATA in affine_ops
        assert Opcode.ENQ_ADDR in affine_ops
        assert Opcode.ENQ_PRED in affine_ops
        # The non-affine stream keeps only the data computation.
        na_ops = [i.opcode for i in p.nonaffine.instructions]
        assert Opcode.LD in na_ops and Opcode.ST in na_ops
        assert len(p.nonaffine) < len(PAPER_KERNEL) / 2

    def test_queue_ids_pair_up(self):
        p = decouple(PAPER_KERNEL)
        enq_ids = sorted(i.queue_id for i in p.affine.instructions
                         if i.is_enq)
        deq_ids = sorted(
            tok.queue_id
            for inst in p.nonaffine.instructions
            for tok in list(inst.srcs) + list(inst.dsts)
            if isinstance(tok, DeqToken))
        assert enq_ids == deq_ids == list(range(p.num_queues))

    def test_indirect_load_not_decoupled(self):
        k = parse_kernel("""
            mul r1, %tid.x, 4;
            add a1, param.idx, r1;
            ld.global i1, [a1];
            mul r2, i1, 4;
            add a2, param.data, r2;
            ld.global v, [a2];
            st.global [a1], v;
        """, params=("idx", "data"))
        p = decouple(k)
        # The first load and the store are affine; the gather is not.
        assert p.decoupled_loads == 1
        assert p.decoupled_stores == 1

    def test_data_dependent_region_not_decoupled(self):
        k = parse_kernel("""
            mul r1, %tid.x, 4;
            add a1, param.p, r1;
            ld.global v, [a1];
            setp.gt p0, v, 0;
            @!p0 bra DONE;
            add a2, param.q, r1;
            ld.global w, [a2];
            st.global [a2], w;
        DONE:
            exit;
        """, params=("p", "q"))
        p = decouple(k)
        # Only the first (unconditional) load is decoupled; the a2 access
        # sits under data-dependent control flow.
        assert p.decoupled_loads == 1
        assert p.decoupled_stores == 0

    def test_scalar_address_load_is_decoupled(self):
        k = parse_kernel("""
            ld.global v, [param.p];
            mul a, v, 4;
            add a2, param.p, a;
            ld.global w, [a2];
            st.global [a2], w;
        """, params=("p",))
        p = decouple(k)
        # The parameter-addressed load is a scalar access (decoupled); the
        # data-dependent gather and store are not.
        assert p.decoupled_loads == 1
        assert p.decoupled_stores == 0

    def test_kernel_without_affine_accesses(self):
        k = parse_kernel("""
            ld.global i1, [param.p];
            mul a, i1, 4;
            add a2, param.p, a;
            ld.global w, [a2];
            mul a3, w, 4;
            add a4, param.p, a3;
            st.global [a4], w;
        """, params=("p",))
        p = decouple(k)
        # Only the first (scalar) load qualifies; everything downstream is
        # data dependent.
        assert p.decoupled_loads == 1
        assert p.decoupled_stores == 0

    def test_divergent_condition_limit(self):
        # Three sequential divergent guards on the address: exceeds the
        # 2-condition budget of §4.6.
        k = parse_kernel("""
            mul off, %tid.x, 4;
            setp.lt p1, %tid.x, 4;
            @p1 mov off, 0;
            setp.lt p2, %tid.x, 8;
            @p2 mov off, 4;
            setp.lt p3, %tid.x, 12;
            @p3 mov off, 8;
            add a1, param.p, off;
            ld.global v, [a1];
            st.global [a1], v;
        """, params=("p",))
        p = decouple(k)
        assert p.decoupled_loads == 0

    def test_two_conditions_allowed(self):
        k = parse_kernel("""
            mul off, %tid.x, 4;
            setp.lt p1, %tid.x, 4;
            @p1 mov off, 0;
            add a1, param.p, off;
            ld.global v, [a1];
            st.global [a1], v;
        """, params=("p",))
        p = decouple(k)
        assert p.decoupled_loads == 1

    def test_loop_carried_divergent_tuple_rejected(self):
        k = parse_kernel("""
            mul off, %tid.x, 4;
            mov i, 0;
        LOOP:
            setp.lt p1, %tid.x, 4;
            @p1 add off, off, 4;
            add a1, param.p, off;
            ld.global v, [a1];
            add i, i, 1;
            setp.lt p0, i, 4;
            @p0 bra LOOP;
            st.global [param.q], v;
        """, params=("p", "q"))
        p = decouple(k)
        assert p.decoupled_loads == 0

    def test_barrier_replicated_to_both_streams(self):
        k = parse_kernel("""
            mul r1, %tid.x, 4;
            add a1, param.p, r1;
            ld.global v, [a1];
            bar.sync;
            st.global [a1], v;
        """, params=("p",))
        p = decouple(k)
        assert any(i.is_barrier for i in p.affine.instructions)
        assert any(i.is_barrier for i in p.nonaffine.instructions)

    def test_shared_memory_not_decoupled(self):
        k = parse_kernel("""
            mul r1, %tid.x, 4;
            st.shared [r1], %tid.x;
            bar.sync;
            ld.shared v, [r1];
            add a1, param.p, r1;
            st.global [a1], v;
        """, params=("p",))
        p = decouple(k)
        assert p.decoupled_stores == 1              # only the global store
        shared_ops = [i.opcode for i in p.nonaffine.instructions
                      if i.is_memory and not any(
                          isinstance(o, DeqToken)
                          for o in i.srcs + i.dsts)]
        assert shared_ops == [Opcode.ST, Opcode.LD]  # shared ops untouched

    def test_labels_remap(self):
        p = decouple(PAPER_KERNEL)
        for stream in (p.affine, p.nonaffine):
            for inst in stream.instructions:
                if inst.is_branch:
                    assert inst.target in stream.labels

    def test_summary_strings(self):
        assert "decoupled" in decouple(PAPER_KERNEL).summary()
