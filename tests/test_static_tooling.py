"""Availability-gated checks for the external static tooling.

CI installs ruff and mypy and runs them as a dedicated job; locally they
may be absent, in which case these tests skip rather than fail.  Keeping
them in the suite means a developer with the dev extras installed gets
the same gate as CI from a plain ``pytest`` run."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _run(tool: str, *argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", tool, *argv],
        cwd=REPO, capture_output=True, text=True, timeout=300)


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed (CI-only gate)")
def test_ruff_clean():
    proc = _run("ruff", "check", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed (CI-only gate)")
def test_mypy_clean():
    proc = _run("mypy", "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
