"""Tests for the profiling report and the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.core import run_dac
from repro.harness import experiment_config, profile, to_csv, to_json
from repro.sim import simulate
from repro.workloads import get

CFG = experiment_config(num_sms=2)


class TestProfile:
    def test_baseline_profile(self):
        result = simulate(get("LIB").launch("tiny"), CFG)
        prof = profile(result)
        assert prof.cycles == result.cycles
        assert 0 < prof.issue_utilization <= 1
        assert 0 <= prof.l1_hit_rate <= 1
        assert prof.dac_load_fraction == 0
        text = prof.report()
        assert "issue utilization" in text
        assert "affine warp" not in text.split("loads issued")[0] or True

    def test_dac_profile_has_dac_lines(self):
        result = run_dac(get("LIB").launch("tiny"), CFG)
        prof = profile(result)
        assert prof.dac_load_fraction > 0.5
        assert "loads issued by affine warp" in prof.report()

    def test_mta_profile_has_accuracy(self):
        result = simulate(get("ST").launch("tiny"),
                          CFG.with_technique("mta"))
        prof = profile(result)
        if result.stats["mta.prefetches"]:
            assert "MTA prefetch accuracy" in prof.report()

    def test_divergence_rate(self):
        result = simulate(get("BFS").launch("tiny"), CFG)
        prof = profile(result)
        assert 0 <= prof.divergence_rate <= 1

    def test_hit_rate_identity(self):
        """Regression: L1 used hits/accesses while L2 used
        (accesses - misses)/accesses.  With MSHR retries counted once,
        both identities hold and both levels use hits/accesses."""
        result = simulate(get("ST").launch("tiny"), CFG)
        s = result.stats
        for level in ("l1", "l2"):
            assert s[f"{level}.hits"] + s[f"{level}.misses"] == \
                s[f"{level}.accesses"]
        prof = profile(result)
        assert prof.l1_hit_rate == pytest.approx(
            s["l1.hits"] / s["l1.accesses"])
        assert prof.l2_hit_rate == pytest.approx(
            s["l2.hits"] / s["l2.accesses"])


class TestExport:
    def test_csv_nested(self, tmp_path):
        data = {"A": {"x": 1.0, "y": 2.0}, "B": {"x": 3.0, "y": 4.0}}
        path = tmp_path / "out.csv"
        text = to_csv(data, str(path))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "x", "y"]
        assert rows[1] == ["A", "1.0", "2.0"]
        assert path.read_text() == text

    def test_csv_flat(self):
        text = to_csv({"A": 0.5, "B": 1.5})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "value"]
        assert len(rows) == 3

    def test_json_round_trip(self, tmp_path):
        data = {"A": {"x": 1.0}, "B": {"x": 2.0}}
        path = tmp_path / "out.json"
        text = to_json(data, str(path))
        assert json.loads(text) == data
        assert json.loads(path.read_text()) == data

    def test_csv_union_of_columns(self):
        """Regression: columns were taken from the first row only,
        silently dropping keys introduced by later rows."""
        data = {"A": {"x": 1.0}, "B": {"x": 2.0, "y": 3.0},
                "C": {"z": 4.0}}
        rows = list(csv.reader(io.StringIO(to_csv(data))))
        assert rows[0] == ["benchmark", "x", "y", "z"]
        assert rows[1] == ["A", "1.0", "", ""]
        assert rows[2] == ["B", "2.0", "3.0", ""]
        assert rows[3] == ["C", "", "", "4.0"]

    def test_csv_empty_data(self):
        rows = list(csv.reader(io.StringIO(to_csv({}))))
        assert rows == [["benchmark"]]

    def test_export_real_figure(self):
        from repro.harness import fig6_affine_potential
        data = fig6_affine_potential()
        text = to_csv(data)
        assert "arithmetic" in text.splitlines()[0]
        assert len(text.splitlines()) == 31          # header + 29 + MEAN
