"""Tests for the translation-validation certifier
(:mod:`repro.analysis.certify`) and the enriched verifier/summary
formatting that rides along with it."""

import random

import pytest

from repro.analysis.certify import certify_kernel, certify_program
from repro.analysis.mutate import (
    MUTATORS,
    _synthetic_launch,
)
from repro.compiler.decouple import decouple
from repro.compiler.verifier import verify
from repro.isa import parse_kernel
from repro.workloads import BY_ABBR, get
from repro.workloads.fuzz import build_fuzz_launch


def _mutant(klass, program=None, seed=0):
    if program is None:
        program = decouple(_synthetic_launch().kernel)
    m = MUTATORS[klass](program, random.Random(seed))
    assert m is not None, f"{klass} found no site"
    return m


# ---------------------------------------------------------------------------
# The acceptance gate: the whole corpus certifies clean.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("abbr", sorted(BY_ABBR))
def test_every_benchmark_certifies(abbr):
    report, program = certify_kernel(get(abbr).launch("tiny").kernel)
    assert not report.diagnostics, f"{abbr}:\n{report.render()}"


@pytest.mark.parametrize("seed", range(0, 20))
def test_fuzz_corpus_certifies(seed):
    report, _ = certify_kernel(build_fuzz_launch(seed).kernel)
    assert not report.diagnostics, f"seed {seed}:\n{report.render()}"


def test_not_decoupled_kernel_is_trivially_clean():
    kernel = parse_kernel("""
        add r0, %tid.x, 1;
        add r1, r0, r0;
    """, name="nomem", params=())
    report, program = certify_kernel(kernel)
    assert not program.is_decoupled
    assert not report.diagnostics


# ---------------------------------------------------------------------------
# One negative case per RPL05x code.
# ---------------------------------------------------------------------------

def test_structural_break_reports_rpl050():
    m = _mutant("barrier_drop")
    report = certify_program(m.program)
    assert "RPL050" in report.codes()


def test_missed_candidate_reports_rpl051():
    program = decouple(get("SP").launch("tiny").kernel)
    m = _mutant("slice_widen", program=program)
    report = certify_program(m.program)
    assert "RPL051" in report.codes()


def test_perturbed_coefficient_reports_rpl052():
    m = _mutant("coeff_perturb")
    report = certify_program(m.program)
    assert "RPL052" in report.codes()
    assert all(d.severity.value == "error" for d in report.diagnostics)


def test_stale_loop_counter_reports_rpl053():
    m = _mutant("stale_loop")
    assert certify_program(m.program).codes() == {"RPL053"}


def test_mod_divisor_reports_rpl054():
    m = _mutant("mod_divisor")
    assert certify_program(m.program).codes() == {"RPL054"}


def test_diagnostics_point_at_original_instruction():
    m = _mutant("coeff_perturb")
    report = certify_program(m.program)
    diag = report.errors[0]
    assert diag.kernel == m.program.original.name
    assert diag.inst_index is not None
    assert 0 <= diag.inst_index < len(m.program.original)


# ---------------------------------------------------------------------------
# verify() is semantic by default.
# ---------------------------------------------------------------------------

def test_verify_folds_certifier_errors_in():
    program = decouple(_synthetic_launch().kernel)
    assert verify(program).ok
    m = _mutant("coeff_perturb", program=program)
    report = verify(m.program)
    assert not report.ok
    assert any("RPL052" in err for err in report.errors)
    # The structural half alone is blind to this defect.
    assert verify(m.program, semantic=False).ok


def _paper_kernel():
    return parse_kernel("""
        mul r0, %ctaid.x, %ntid.x;
        add tid, %tid.x, r0;
        mul r1, tid, 4;
        add addrA, param.A, r1;
        ld.global x, [addrA];
        add r2, x, 1;
        st.global [addrA], r2;
    """, name="paperline", params=("A",))


def test_verifier_errors_carry_source_lines():
    program = decouple(_paper_kernel())
    assert program.is_decoupled
    # Drop a guard... this kernel has none; drop the deq's enq instead.
    affine = program.affine
    enq_i = next(i for i, inst in enumerate(affine.instructions)
                 if inst.is_enq)
    from repro.analysis.mutate import _delete
    import dataclasses
    broken = dataclasses.replace(program, affine=_delete(affine, enq_i))
    report = verify(broken, semantic=False)
    assert not report.ok
    assert any("(line " in err and "deq" in err for err in report.errors), \
        report.errors


def test_summary_lists_queues_with_source_lines():
    program = decouple(_paper_kernel())
    summary = program.summary()
    assert "decoupled" in summary
    lines = summary.splitlines()
    assert len(lines) == 1 + len(program.queue_origin)
    for qid in program.queue_origin:
        assert any(line.lstrip().startswith(f"q{qid}:") for line in lines)
    assert all("line" in line for line in lines[1:])


def test_summary_without_source_lines_falls_back_to_index():
    from repro.isa import Kernel
    kernel = _paper_kernel()
    stripped = Kernel(kernel.name, kernel.params,
                      [i.clone(source_line=None)
                       for i in kernel.instructions], dict(kernel.labels))
    program = decouple(stripped)
    lines = program.summary().splitlines()
    assert len(lines) > 1
    assert all("at index" in line for line in lines[1:])
