"""Batched issue engine: differential suite against the pinned walk.

The walk engine (sim/scheduler.py + the GPU.run loop) is the timing
reference; ``issue_engine="batched"`` must be *bit-identical* on cycles
and every Stats counter — readiness columns, lazy stall replay, chain
execution, and the next-wake heap are all pure reformulations of the same
semantics.  Any divergence found here is a bug in the batched engine, by
definition.

Four angles:

1. 100-seed differential fuzz x 4 techniques x both datapaths.
2. A hypothesis property run with ``verify_columns`` enabled: after every
   dirty refresh the incrementally-maintained readiness columns must equal
   a from-scratch reclassification of every owned warp (this exercises the
   wake-hook sequences the fuzz kernels generate: releases, barrier exits,
   queue pushes, early-fill completions, CTA retires).
3. Warp iteration-order regression: swap-pop removal permutes the walk
   order; Stats must not care (guards the O(1) retire optimization).
4. Chain execution: cells known to trigger chains stay bit-identical, and
   the observability layers (tracer/faults/checkers) transparently pin the
   walk engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.harness.bench import GOLDEN_MATRIX, run_cell
from repro.harness.runner import TECHNIQUES, experiment_config, \
    simulate_launch
from repro.sim.gpu import GPU
from repro.sim.issue_engine import BatchedScheduler
from repro.sim.scheduler import Scheduler
from repro.workloads import get
from repro.workloads.fuzz import build_fuzz_launch

SEEDS = range(100)
DATAPATHS = ("scalar", "vector")


def _stats_diff(a: dict, b: dict) -> list[str]:
    return [f"{k}: walk={a.get(k)!r} batched={b.get(k)!r}"
            for k in sorted(set(a) | set(b)) if a.get(k) != b.get(k)]


def _assert_same(walk, batched, label: str) -> None:
    assert walk.cycles == batched.cycles, (
        f"{label}: cycles diverged (walk {walk.cycles}, "
        f"batched {batched.cycles})")
    diff = _stats_diff(walk.stats.as_dict(), batched.stats.as_dict())
    assert not diff, f"{label}: Stats diverged:\n" + "\n".join(diff)


# ---------------------------------------------------------------------------
# 1. differential fuzz

@pytest.mark.parametrize("datapath", DATAPATHS)
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_differential_fuzz(technique, datapath):
    walk_cfg = GPUConfig(num_sms=1, datapath=datapath)
    batched_cfg = GPUConfig(num_sms=1, datapath=datapath,
                            issue_engine="batched")
    for seed in SEEDS:
        walk = simulate_launch(build_fuzz_launch(seed), technique, walk_cfg)
        batched = simulate_launch(build_fuzz_launch(seed), technique,
                                  batched_cfg)
        _assert_same(walk, batched,
                     f"seed {seed} {technique}/{datapath}")


def test_differential_golden_matrix():
    """Every golden-matrix cell, both engines (the goldens themselves are
    separately parametrized over the knob in test_golden_stats)."""
    for abbr, technique, scale in GOLDEN_MATRIX:
        walk = run_cell(abbr, technique, scale,
                        experiment_config().with_issue_engine("walk"))
        batched = run_cell(abbr, technique, scale,
                           experiment_config().with_issue_engine("batched"))
        _assert_same(walk, batched, f"{abbr}/{technique}/{scale}")


# ---------------------------------------------------------------------------
# 2. incremental columns == from-scratch recomputation

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=99999),
       technique=st.sampled_from(TECHNIQUES))
def test_columns_match_fresh_classification(seed, technique):
    """With ``verify_columns`` on, every batched tick asserts that the
    incrementally-maintained readiness columns equal a from-scratch
    ``classify_warp`` of every owned warp — across whatever wake-hook
    sequence the fuzzed kernel produces."""
    cfg = GPUConfig(num_sms=1, issue_engine="batched")
    BatchedScheduler.verify_columns = True
    try:
        batched = simulate_launch(build_fuzz_launch(seed), technique, cfg)
    finally:
        BatchedScheduler.verify_columns = False
    walk = simulate_launch(build_fuzz_launch(seed), technique,
                           GPUConfig(num_sms=1))
    _assert_same(walk, batched, f"seed {seed} {technique} (verified)")


def test_readiness_columns_view():
    """The numpy view of the columns agrees with a live classification."""
    cfg = experiment_config().with_issue_engine("batched") \
        .with_technique("baseline")
    gpu = GPU(cfg)
    launch = get("CP").launch("tiny")
    gpu.run(launch)
    for sm in gpu.sms:
        for sched in sm.schedulers:
            cols = sched.readiness_columns()
            assert set(cols) == {"ready_base", "lsu_gate", "stall_pred",
                                 "stall_norec", "stall_fill"}
            for vec in cols.values():
                assert vec.dtype == bool
                assert len(vec) == len(sched.warps)


# ---------------------------------------------------------------------------
# 3. warp iteration-order invariance

def _order_preserving_remove(self, warp):
    """The pre-swap-pop removal: O(N) but keeps iteration order."""
    self.warps.remove(warp)
    warp.sched = None
    self._asleep = False


def test_stats_invariant_under_removal_order():
    """Swap-pop removal permutes the scheduler's walk order relative to
    the old ``list.remove``; the timing semantics must not depend on it
    (the rotation owns fairness, not list positions)."""
    cfg = GPUConfig(num_sms=1)
    for technique in TECHNIQUES:
        for seed in range(25):
            swap = simulate_launch(build_fuzz_launch(seed), technique, cfg)
            original = Scheduler.remove_warp
            Scheduler.remove_warp = _order_preserving_remove
            try:
                kept = simulate_launch(build_fuzz_launch(seed), technique,
                                       cfg)
            finally:
                Scheduler.remove_warp = original
            _assert_same(swap, kept, f"seed {seed} {technique} order")


def test_stats_invariant_under_removal_order_golden_cell():
    walk_cfg = experiment_config()
    swap = run_cell("SG", "dac", "tiny", walk_cfg)
    original = Scheduler.remove_warp
    Scheduler.remove_warp = _order_preserving_remove
    try:
        kept = run_cell("SG", "dac", "tiny", walk_cfg)
    finally:
        Scheduler.remove_warp = original
    _assert_same(swap, kept, "SG/dac/tiny order")


# ---------------------------------------------------------------------------
# 4. chain execution + observability pinning

def test_chain_execution_fires_and_stays_identical():
    cfg = experiment_config().with_technique("baseline")
    launch = get("CP").launch("tiny")
    gpu = GPU(cfg.with_issue_engine("batched"))
    batched = gpu.run(launch)
    assert gpu.engine is not None
    assert gpu.engine.chain_ops > 0, \
        "CP/tiny is expected to trigger chain execution"
    walk = run_cell("CP", "baseline", "tiny", cfg)
    _assert_same(walk, batched, "CP/baseline/tiny chain")


def test_chain_disabled_for_cae():
    """CAE's issue interval depends on runtime affine-eligibility, so its
    SM opts out of chain replay (``chain_ok = False``)."""
    from repro.baselines.cae import CAESM
    assert CAESM.chain_ok is False
    cfg = experiment_config().with_technique("cae") \
        .with_issue_engine("batched")
    gpu = GPU(cfg)
    gpu.run(get("CP").launch("tiny"))
    assert gpu.engine.chain_ops == 0


def test_tracer_pins_walk_engine():
    """Tracing (and faults/checkers) downgrade to the walk engine — their
    contracts are defined per executed scheduler walk."""
    from repro.trace import Tracer
    cfg = experiment_config().with_technique("baseline") \
        .with_issue_engine("batched")
    gpu = GPU(cfg, tracer=Tracer())
    assert gpu.issue_engine == "walk"
    assert gpu.engine is None


def test_faults_pin_walk_engine():
    from repro.faults import FaultInjector, FaultPlan, FaultSpec
    cfg = experiment_config().with_technique("baseline") \
        .with_issue_engine("batched")
    plan = FaultPlan(specs=(FaultSpec("dram_delay", 0, 8),))
    gpu = GPU(cfg, faults=FaultInjector(plan))
    assert gpu.issue_engine == "walk"
    assert gpu.engine is None


def test_traced_run_unaffected_by_batched_config():
    """A traced run under issue_engine="batched" produces exactly the
    traced walk's Stats (the downgrade is transparent)."""
    cfg = experiment_config()
    walk = run_cell("SG", "dac", "tiny", cfg, trace=True)
    batched = run_cell("SG", "dac", "tiny",
                       cfg.with_issue_engine("batched"), trace=True)
    _assert_same(walk, batched, "SG/dac/tiny traced downgrade")
