"""Unit + property tests for the SIMT reconvergence stack."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.simt_stack import SIMTStack


def full(n=32):
    return np.ones(n, dtype=bool)


class TestBasics:
    def test_initial_state(self):
        stack = SIMTStack(full())
        assert stack.pc == 0
        assert stack.depth == 1
        assert stack.active_mask.all()

    def test_sequential_advance(self):
        stack = SIMTStack(full())
        stack.pc = 5
        assert stack.pc == 5 and stack.depth == 1

    def test_diverge_and_reconverge(self):
        stack = SIMTStack(full())
        taken = np.arange(32) < 16
        stack.diverge(taken, ~taken, target_pc=10, fallthrough_pc=1, rpc=20)
        assert stack.depth == 3
        assert stack.pc == 10                      # taken path first
        np.testing.assert_array_equal(stack.active_mask, taken)
        stack.pc = 20                              # reach rpc: pop
        assert stack.pc == 1                       # fallthrough path
        np.testing.assert_array_equal(stack.active_mask, ~taken)
        stack.pc = 20
        assert stack.depth == 1
        assert stack.active_mask.all()

    def test_path_starting_at_rpc_not_pushed(self):
        stack = SIMTStack(full())
        taken = np.arange(32) < 8
        # fallthrough == rpc: those lanes just wait at reconvergence.
        stack.diverge(taken, ~taken, target_pc=5, fallthrough_pc=9, rpc=9)
        assert stack.depth == 2
        np.testing.assert_array_equal(stack.active_mask, taken)
        stack.pc = 9
        assert stack.depth == 1
        assert stack.active_mask.all()

    def test_nested_divergence(self):
        stack = SIMTStack(full())
        outer = np.arange(32) < 16
        stack.diverge(outer, ~outer, 10, 1, 30)
        inner = np.arange(32) < 8
        stack.diverge(inner & outer, outer & ~inner, 12, 11, 20)
        assert stack.depth == 5
        np.testing.assert_array_equal(stack.active_mask, inner & outer)
        assert stack.max_depth == 5

    def test_loop_reexecution_keeps_depth_bounded(self):
        stack = SIMTStack(full())
        alive = full().copy()
        # Simulated loop: each "iteration" 4 more lanes exit at rpc 100.
        for it in range(8):
            alive = np.arange(32) >= (it + 1) * 4
            taken = stack.active_mask & alive
            ntaken = stack.active_mask & ~alive
            if not taken.any():
                break
            stack.diverge(taken, ntaken, target_pc=1, fallthrough_pc=100,
                          rpc=100)
            assert stack.depth <= 3
            stack.pc = 100                         # body runs, hits rpc


@st.composite
def divergence_traces(draw):
    """Random sequences of (split_point, rpc) divergences."""
    return draw(st.lists(
        st.tuples(st.integers(min_value=1, max_value=31),
                  st.integers(min_value=50, max_value=60)),
        min_size=1, max_size=6))


class TestProperties:
    @given(divergence_traces())
    @settings(max_examples=50)
    def test_masks_partition_and_reconverge(self, trace):
        """At every point the live masks of the stack partition the initial
        mask; draining every path restores the full mask."""
        stack = SIMTStack(full())
        rpcs = []
        for split, rpc in trace:
            mask = stack.active_mask
            taken = mask & (np.arange(32) < split)
            ntaken = mask & ~(np.arange(32) < split)
            if not taken.any() or not ntaken.any():
                continue
            stack.diverge(taken, ntaken, target_pc=1, fallthrough_pc=2,
                          rpc=rpc)
            rpcs.append(rpc)
            # Union of all entries equals the original full mask.
            union = np.zeros(32, dtype=bool)
            for m in stack._masks:
                union |= m
            assert union.all()
        # Drain: walk every entry to its rpc.
        for _ in range(64):
            if stack.depth == 1:
                break
            stack.pc = stack._rpcs[-1]
        assert stack.depth == 1
        assert stack.active_mask.all()

    @given(divergence_traces())
    @settings(max_examples=50)
    def test_sibling_masks_disjoint(self, trace):
        stack = SIMTStack(full())
        for split, rpc in trace:
            mask = stack.active_mask
            taken = mask & (np.arange(32) < split)
            ntaken = mask & ~(np.arange(32) < split)
            if not taken.any() or not ntaken.any():
                continue
            stack.diverge(taken, ntaken, 1, 2, rpc)
            for i in range(1, stack.depth):
                for j in range(i + 1, stack.depth):
                    overlap = stack._masks[i] & stack._masks[j]
                    # An entry's mask is a subset of the entry below it;
                    # true siblings (same rpc, adjacent) are disjoint.
                    if stack._rpcs[i] == stack._rpcs[j] and j == i + 1:
                        assert not overlap.any()
