"""Edge-path tests for DAC: strided (multi-line) records, atomic dequeues,
refetch after early eviction, queue back-pressure under long run-ahead."""

import dataclasses

import numpy as np

from repro.core import run_dac
from repro.isa import parse_kernel
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch

CFG = GPUConfig(num_sms=1)


def _run(source, setup, grid=(1, 1, 1), block=(64, 1, 1), config=CFG):
    mem = GlobalMemory(1 << 21)
    params = setup(mem)
    kernel = parse_kernel(source, name="t", params=tuple(params))
    launch = KernelLaunch(kernel, grid, block, params, mem)
    return run_dac(launch, config), mem, params


class TestStridedRecords:
    def test_stride_32_words_touches_many_lines(self):
        """Stride-128B addresses: every thread its own line — the AEU must
        generate a 32-line record and charge 32 ALU cycles for it."""
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 128;
            add a1, param.X, r1;
            ld.global v, [a1];
            mul r2, tid, 4;
            add o1, param.O, r2;
            st.global [o1], v;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64 * 32)),
                        O=mem.alloc(64))

        result, mem, params = _run(src, setup)
        got = mem.read_array(params["O"], 64)
        np.testing.assert_array_equal(got, np.arange(64) * 32)
        # 2 warps x 32 lines each.
        assert result.stats["dac.affine_load_lines"] == 64
        assert result.stats["dac.aeu_alu_cycles"] >= 64

    def test_word_masks_recorded(self):
        src = """
            mul r1, %tid.x, 8;
            add a1, param.X, r1;
            ld.global v, [a1];
            mul r2, %tid.x, 4;
            add o1, param.O, r2;
            st.global [o1], v;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(64)), O=mem.alloc(32))

        result, mem, params = _run(src, setup, block=(32, 1, 1))
        # Stride 8 bytes: 32 threads span 2 lines, every other word.
        assert result.stats["dac.affine_load_lines"] == 2
        got = mem.read_array(params["O"], 32)
        np.testing.assert_array_equal(got, np.arange(32) * 2)


class TestAtomics:
    def test_atomic_dequeue(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            rem bin, tid, 8;
            mul r1, bin, 4;
            add h1, param.H, r1;
            atom.global [h1], 1;
        """

        def setup(mem):
            return dict(H=mem.alloc(8))

        result, mem, params = _run(src, setup, grid=(2, 1, 1))
        got = mem.read_array(params["H"], 8)
        np.testing.assert_array_equal(got, np.full(8, 16.0))
        assert result.stats["dac.deq_stores"] > 0


class TestEvictionAndBackPressure:
    def test_refetch_after_early_eviction_still_correct(self):
        """With locking disabled and a tiny L1, early lines are evicted
        before use; the dequeue path must refetch and stay correct."""
        tiny_l1 = dataclasses.replace(
            CFG,
            l1=dataclasses.replace(CFG.l1, size_bytes=512, ways=2),
            dac=dataclasses.replace(CFG.dac, lock_lines=False))
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mov acc, 0;
            mov i, 0;
        LOOP:
            mul r1, i, param.nb;
            mul r2, tid, 4;
            add r3, r1, r2;
            add a1, param.X, r3;
            ld.global v, [a1];
            add acc, acc, v;
            add i, i, 1;
            setp.lt p0, i, 8;
            @p0 bra LOOP;
            mul r4, tid, 4;
            add o1, param.O, r4;
            st.global [o1], acc;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(128 * 8)),
                        O=mem.alloc(128), nb=128 * 4)

        result, mem, params = _run(src, setup, grid=(2, 1, 1),
                                   config=tiny_l1)
        tid = np.arange(128)
        expected = sum(tid + i * 128 for i in range(8)).astype(float)
        np.testing.assert_array_equal(mem.read_array(params["O"], 128),
                                      expected)

    def test_deep_runahead_respects_queue_capacity(self):
        """A 64-iteration loop against 4-entry per-warp queues: the affine
        warp must throttle, and every record must still pair up."""
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mov acc, 0;
            mov i, 0;
        LOOP:
            mul r1, i, param.nb;
            mul r2, tid, 4;
            add r3, r1, r2;
            add a1, param.X, r3;
            ld.global v, [a1];
            add acc, acc, v;
            add i, i, 1;
            setp.lt p0, i, 64;
            @p0 bra LOOP;
            mul r4, tid, 4;
            add o1, param.O, r4;
            st.global [o1], acc;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.ones(64 * 64)),
                        O=mem.alloc(64), nb=64 * 4)

        result, mem, params = _run(src, setup)
        np.testing.assert_array_equal(mem.read_array(params["O"], 64),
                                      np.full(64, 64.0))
        s = result.stats
        assert s["dac.deq_loads"] == s["dac.affine_loads"] == 2 * 64
        assert s["dac.leftover_records"] == 0

    def test_lock_denial_path(self):
        """Stride-128 loads from many warps flood one L1: the AEU must hit
        the N-1 lock ceiling and fall back to unlocked requests."""
        small_l1 = dataclasses.replace(
            CFG, l1=dataclasses.replace(CFG.l1, size_bytes=2048, ways=4))
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
            mul r1, tid, 128;
            add a1, param.X, r1;
            ld.global v, [a1];
            mul r2, tid, 4;
            add o1, param.O, r2;
            st.global [o1], v;
        """

        def setup(mem):
            return dict(X=mem.alloc_array(np.arange(256 * 32)),
                        O=mem.alloc(256))

        result, mem, params = _run(src, setup, grid=(2, 1, 1),
                                   block=(128, 1, 1), config=small_l1)
        np.testing.assert_array_equal(mem.read_array(params["O"], 256),
                                      np.arange(256) * 32)
        assert result.stats["dac.lock_denied"] > 0
