"""Tests for warp scheduling and GPU-level CTA dispatch."""

import numpy as np
import pytest

from repro.isa import parse_kernel
from repro.sim import GPU, GPUConfig, GlobalMemory, KernelLaunch, simulate


def _counting_kernel():
    return parse_kernel("""
        mul r0, %ctaid.x, %ntid.x;
        add tid, %tid.x, r0;
        mov acc, 0;
        mov i, 0;
    LOOP:
        add acc, acc, tid;
        add i, i, 1;
        setp.lt p0, i, 8;
        @p0 bra LOOP;
        mul r1, tid, 4;
        add oaddr, param.out, r1;
        st.global [oaddr], acc;
    """, name="count", params=("out",))


def _launch(blocks, threads=64, mem_size=1 << 20):
    mem = GlobalMemory(mem_size)
    out = mem.alloc(blocks * threads)
    kernel = _counting_kernel()
    return KernelLaunch(kernel, (blocks, 1, 1), (threads, 1, 1),
                        dict(out=out), mem), out


class TestCTADispatch:
    def test_blocks_spread_over_sms(self):
        launch, out = _launch(blocks=4)
        gpu = GPU(GPUConfig(num_sms=4))
        gpu.run(launch)
        expected = np.arange(256) * 8.0
        np.testing.assert_array_equal(launch.memory.read_array(out, 256),
                                      expected)

    def test_more_blocks_than_slots_waves(self):
        # 40 blocks of 2 warps on 1 SM with 8 CTA slots: 5 waves of refill.
        launch, out = _launch(blocks=40)
        result = simulate(launch, GPUConfig(num_sms=1))
        expected = np.arange(40 * 64) * 8.0
        np.testing.assert_array_equal(
            launch.memory.read_array(out, 40 * 64), expected)
        assert result.cycles > 0

    def test_oversized_cta_rejected(self):
        mem = GlobalMemory(1 << 20)
        kernel = _counting_kernel()
        launch = KernelLaunch(kernel, (1, 1, 1), (1024, 1, 1),
                              dict(out=mem.alloc(1024)), mem)
        import dataclasses
        config = dataclasses.replace(GPUConfig(num_sms=1), warps_per_sm=8)
        with pytest.raises(ValueError):
            GPU(config).run(launch)

    def test_warp_slot_reuse_across_waves(self):
        launch, out = _launch(blocks=12)
        gpu = GPU(GPUConfig(num_sms=1))
        gpu.run(launch)
        for sm in gpu.sms:
            assert not sm.warps                      # all retired
            assert sorted(sm._free_slots) == list(range(48))


class TestSchedulers:
    @pytest.mark.parametrize("policy", ["lrr", "two_level"])
    def test_policies_produce_identical_results(self, policy):
        launch, out = _launch(blocks=4)
        config = GPUConfig(num_sms=2, scheduler=policy)
        simulate(launch, config)
        expected = np.arange(256) * 8.0
        np.testing.assert_array_equal(launch.memory.read_array(out, 256),
                                      expected)

    def test_both_schedulers_issue(self):
        launch, _ = _launch(blocks=2, threads=128)   # 4 warps: 2/scheduler
        gpu = GPU(GPUConfig(num_sms=1))
        gpu.run(launch)
        # With two schedulers over four warps, runtime must be well under
        # a single-issue serialization of all instructions.
        total = gpu.stats["warp_instructions"]
        assert gpu.stats["cycles"] < total * 2

    def test_fast_forward_skips_idle_cycles(self):
        """A memory-latency-bound run must not iterate cycle by cycle: the
        reported cycle count is far larger than the issue count, yet the
        run completes quickly (fast-forward to the next event)."""
        mem = GlobalMemory(1 << 20)
        kernel = parse_kernel("""
            mul r1, %tid.x, 4;
            add a1, param.X, r1;
            ld.global v, [a1];
            add w, v, 1;
            add o1, param.O, r1;
            st.global [o1], w;
        """, name="ff", params=("X", "O"))
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1),
                              dict(X=mem.alloc_array(np.arange(32)),
                                   O=mem.alloc(32)), mem)
        result = simulate(launch, GPUConfig(num_sms=1))
        assert result.cycles > 300                   # DRAM round trip
        assert result.stats["warp_instructions"] == 7
