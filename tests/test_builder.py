"""Tests for the programmatic kernel builder."""

import numpy as np
import pytest

from repro.compiler import decouple, verify
from repro.isa import CmpOp, MemSpace
from repro.isa.builder import KernelBuilder
from repro.sim import GPUConfig, GlobalMemory, KernelLaunch, run_functional, \
    simulate
from repro.core import run_dac

CFG = GPUConfig(num_sms=1)


def _saxpy():
    b = KernelBuilder("saxpy", params=("A", "B", "O", "a"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4)
    x = b.load(b.add(b.param("A"), off))
    y = b.load(b.add(b.param("B"), off))
    b.store(b.add(b.param("O"), off), b.mad(x, b.param("a"), y))
    return b.build()


class TestBuilder:
    def test_saxpy_builds_and_runs(self):
        kernel = _saxpy()
        mem = GlobalMemory(1 << 20)
        a = mem.alloc_array(np.arange(64))
        b_ = mem.alloc_array(np.arange(64) * 10)
        o = mem.alloc(64)
        launch = KernelLaunch(kernel, (1, 1, 1), (64, 1, 1),
                              dict(A=a, B=b_, O=o, a=3), mem)
        run_functional(launch)
        np.testing.assert_array_equal(mem.read_array(o, 64),
                                      np.arange(64) * 13)

    def test_built_kernel_decouples_and_verifies(self):
        program = decouple(_saxpy())
        assert program.decoupled_loads == 2
        assert program.decoupled_stores == 1
        assert verify(program).ok

    def test_built_kernel_runs_under_dac(self):
        kernel = _saxpy()
        mem = GlobalMemory(1 << 20)
        a = mem.alloc_array(np.arange(64))
        b_ = mem.alloc_array(np.arange(64) * 10)
        o = mem.alloc(64)
        launch = KernelLaunch(kernel, (1, 1, 1), (64, 1, 1),
                              dict(A=a, B=b_, O=o, a=3), mem)
        run_dac(launch, CFG)
        np.testing.assert_array_equal(mem.read_array(o, 64),
                                      np.arange(64) * 13)

    def test_loop_helper(self):
        b = KernelBuilder("looped", params=("O",))
        tid = b.global_tid_x()
        acc = b.mov(0, name="acc")
        i = b.loop_counter(10)
        b.assign(acc, b.add(acc, i))
        b.end_loop()
        b.store(b.add(b.param("O"), b.mul(tid, 4)), acc)
        kernel = b.build()
        mem = GlobalMemory(1 << 20)
        o = mem.alloc(32)
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1),
                              dict(O=o), mem)
        run_functional(launch)
        np.testing.assert_array_equal(mem.read_array(o, 32),
                                      np.full(32, 45.0))

    def test_if_then_helper(self):
        b = KernelBuilder("guarded", params=("O",))
        tid = b.global_tid_x()
        v = b.mov(1, name="v")
        pred = b.setp(CmpOp.LT, tid, 16)
        with b.if_then(pred):
            b.assign(v, 99)
        b.store(b.add(b.param("O"), b.mul(tid, 4)), v)
        kernel = b.build()
        mem = GlobalMemory(1 << 20)
        o = mem.alloc(32)
        launch = KernelLaunch(kernel, (1, 1, 1), (32, 1, 1),
                              dict(O=o), mem)
        run_functional(launch)
        expected = np.where(np.arange(32) < 16, 99.0, 1.0)
        np.testing.assert_array_equal(mem.read_array(o, 32), expected)

    def test_nested_loops(self):
        b = KernelBuilder("nest", params=("O",))
        tid = b.global_tid_x()
        acc = b.mov(0, name="acc")
        b.loop_counter(3)
        b.loop_counter(4)
        b.assign(acc, b.add(acc, 1))
        b.end_loop()
        b.end_loop()
        b.store(b.add(b.param("O"), b.mul(tid, 4)), acc)
        mem = GlobalMemory(1 << 20)
        o = mem.alloc(32)
        launch = KernelLaunch(b.build(), (1, 1, 1), (32, 1, 1),
                              dict(O=o), mem)
        run_functional(launch)
        np.testing.assert_array_equal(mem.read_array(o, 32),
                                      np.full(32, 12.0))

    def test_shared_and_barrier(self):
        b = KernelBuilder("sh", params=("O",))
        off = b.mul(b.tid("x"), 4)
        b.store(off, b.tid("x"), space=MemSpace.SHARED)
        b.barrier()
        flipped = b.sub(124, off)
        v = b.load(flipped, space=MemSpace.SHARED)
        b.store(b.add(b.param("O"), off), v)
        mem = GlobalMemory(1 << 20)
        o = mem.alloc(32)
        launch = KernelLaunch(b.build(), (1, 1, 1), (32, 1, 1),
                              dict(O=o), mem, shared_words=32)
        run_functional(launch)
        np.testing.assert_array_equal(mem.read_array(o, 32),
                                      np.arange(32)[::-1])

    def test_undeclared_param_rejected(self):
        b = KernelBuilder("bad", params=("A",))
        with pytest.raises(ValueError):
            b.param("B")

    def test_source_round_trip(self):
        from repro.isa import parse_kernel
        kernel = _saxpy()
        reparsed = parse_kernel(kernel.source())
        assert [str(i) for i in reparsed.instructions] == \
            [str(i) for i in kernel.instructions]

    def test_builder_vs_simulator_timing_path(self):
        kernel = _saxpy()
        mem = GlobalMemory(1 << 20)
        launch = KernelLaunch(kernel, (2, 1, 1), (64, 1, 1),
                              dict(A=mem.alloc_array(np.zeros(128)),
                                   B=mem.alloc_array(np.ones(128)),
                                   O=mem.alloc(128), a=2), mem)
        result = simulate(launch, CFG)
        assert result.cycles > 0
