"""Tests for configuration, the event queue, and the stats store."""

import dataclasses

import pytest

from repro.config import GPUConfig
from repro.events import EventQueue
from repro.stats import Stats


class TestConfig:
    def test_table1_defaults(self):
        c = GPUConfig.gtx480()
        assert c.num_sms == 15
        assert c.warps_per_sm == 48
        assert c.warp_size == 32
        assert c.num_schedulers == 2
        assert c.l1.size_bytes == 48 * 1024 and c.l1.ways == 4
        assert c.l1.num_mshrs == 32
        assert c.l2.size_bytes == 768 * 1024 and c.l2.ways == 8
        assert c.dac.atq_entries == 24
        assert c.dac.pwaq_entries == 192
        assert c.dac.pwpq_entries == 192
        assert c.mta.buffer_bytes == 16 * 1024
        assert c.cae.affine_units == 2

    def test_table1_render(self):
        text = GPUConfig.gtx480().table1()
        for token in ("GTX480", "48 warps/SM", "48 KB/SM", "768 KB",
                      "Two Level Active", "16KB/SM", "ATQ"):
            assert token in text

    def test_scaled_preserves_per_sm_resources(self):
        c = GPUConfig.gtx480().scaled(4)
        assert c.num_sms == 4
        assert c.l1.size_bytes == 48 * 1024       # per-SM untouched
        assert c.warps_per_sm == 48
        assert c.l2.size_bytes < 768 * 1024       # capacity scales

    def test_with_technique_validates(self):
        c = GPUConfig()
        assert c.with_technique("dac").technique == "dac"
        with pytest.raises(ValueError):
            c.with_technique("magic")

    def test_perfect_memory_flag(self):
        assert GPUConfig().with_perfect_memory().perfect_memory

    def test_configs_hashable_for_memoization(self):
        a = GPUConfig(num_sms=2)
        b = GPUConfig(num_sms=2)
        assert a == b and hash(a) == hash(b)

    def test_dac_ablation_knob(self):
        c = GPUConfig()
        ablated = dataclasses.replace(
            c, dac=dataclasses.replace(c.dac, lock_lines=False))
        assert not ablated.dac.lock_lines and c.dac.lock_lines


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda t: fired.append((t, "b")))
        q.schedule(3, lambda t: fired.append((t, "a")))
        q.schedule(9, lambda t: fired.append((t, "c")))
        q.run_until(6)
        assert fired == [(3, "a"), (5, "b")]
        q.run_until(20)
        assert fired[-1] == (9, "c")

    def test_same_cycle_is_fifo(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.schedule(4, lambda t, n=name: fired.append(n))
        q.run_until(4)
        assert fired == ["a", "b", "c"]

    def test_events_may_schedule_events(self):
        q = EventQueue()
        fired = []

        def first(t):
            fired.append("first")
            q.schedule(t, lambda t2: fired.append("chained"))

        q.schedule(1, first)
        q.run_until(1)
        assert fired == ["first", "chained"]

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time() is None
        q.schedule(7, lambda t: None)
        assert q.next_time() == 7
        assert len(q) == 1


class TestStats:
    def test_add_and_get(self):
        s = Stats()
        s.add("x")
        s.add("x", 2)
        assert s["x"] == 3
        assert s["missing"] == 0
        assert "x" in s and "missing" not in s

    def test_merge(self):
        a, b = Stats(), Stats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        merged = a.merged_with(b)
        assert merged["x"] == 3 and merged["y"] == 5

    def test_report_filters_by_prefix(self):
        s = Stats()
        s.add("dac.records", 10)
        s.add("l1.hits", 3)
        text = s.report("dac.")
        assert "dac.records" in text and "l1.hits" not in text
