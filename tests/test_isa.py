"""Unit tests for the ISA: operands, instructions, assembler."""

import pytest

from repro.isa import AsmError, CmpOp, DeqToken, Immediate, MemRef, MemSpace, Opcode, Param, PredReg, Register, SpecialReg, is_readonly, parse_instruction, parse_kernel, parse_operand, validate


class TestOperands:
    def test_register(self):
        assert str(Register("addrA")) == "addrA"

    def test_register_rejects_bad_name(self):
        with pytest.raises(ValueError):
            Register("3bad")

    def test_immediate_prints_ints_plainly(self):
        assert str(Immediate(4.0)) == "4"
        assert str(Immediate(0.5)) == "0.5"

    def test_special_register(self):
        sr = SpecialReg("tid", "x")
        assert str(sr) == "%tid.x"

    def test_special_register_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            SpecialReg("warpid", "x")

    def test_special_register_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            SpecialReg("tid", "w")

    def test_param(self):
        assert str(Param("A")) == "param.A"

    def test_memref_with_displacement(self):
        ref = MemRef(Register("r1"), 4)
        assert str(ref) == "[r1+4]"

    def test_deq_token_kinds(self):
        assert str(DeqToken("data", 0)) == "deq.data"
        with pytest.raises(ValueError):
            DeqToken("bogus", 0)

    def test_readonly_classification(self):
        assert is_readonly(Immediate(1))
        assert is_readonly(Param("n"))
        assert is_readonly(SpecialReg("tid", "x"))
        assert not is_readonly(Register("r0"))


class TestParseOperand:
    def test_decimal_and_hex_immediates(self):
        assert parse_operand("42") == Immediate(42.0)
        assert parse_operand("0x100") == Immediate(256.0)
        assert parse_operand("-3") == Immediate(-3.0)

    def test_float_immediate(self):
        assert parse_operand("0.25") == Immediate(0.25)

    def test_predicate_convention(self):
        assert isinstance(parse_operand("p0"), PredReg)
        assert isinstance(parse_operand("pix"), Register)

    def test_memref(self):
        ref = parse_operand("[addrA+8]")
        assert isinstance(ref, MemRef)
        assert ref.displacement == 8

    def test_deq_in_brackets(self):
        tok = parse_operand("[deq.addr]")
        assert isinstance(tok, DeqToken)
        assert tok.kind == "addr"


class TestParseInstruction:
    def test_simple_alu(self):
        inst = parse_instruction("add r0, r1, 4;")
        assert inst.opcode is Opcode.ADD
        assert inst.dsts == (Register("r0"),)
        assert inst.srcs == (Register("r1"), Immediate(4.0))

    def test_setp_requires_cmp(self):
        inst = parse_instruction("setp.ne p0, r1, r2")
        assert inst.cmp is CmpOp.NE
        with pytest.raises(ValueError):
            validate(parse_instruction("setp p0, r1, r2"))

    def test_load_store(self):
        ld = parse_instruction("ld.global tmp, [addrA];")
        assert ld.space is MemSpace.GLOBAL and ld.is_load
        st = parse_instruction("st.shared [r9], prod;")
        assert st.space is MemSpace.SHARED and st.is_store

    def test_guard(self):
        inst = parse_instruction("@!p1 add r0, r0, 1;")
        assert inst.guard == PredReg("p1")
        assert inst.guard_negated

    def test_deq_guard(self):
        inst = parse_instruction("@deq.pred bra LOOP;")
        assert isinstance(inst.guard, DeqToken)
        assert inst.target == "LOOP"

    def test_enq_forms(self):
        assert parse_instruction("enq.data addrA").opcode is Opcode.ENQ_DATA
        assert parse_instruction("enq.addr addrB").opcode is Opcode.ENQ_ADDR
        assert parse_instruction("enq.pred p0").opcode is Opcode.ENQ_PRED

    def test_mad(self):
        inst = parse_instruction("mad d, a, b, c;")
        assert len(inst.srcs) == 3

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            parse_instruction("frobnicate r0, r1")

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_instruction("add r0, r1;")

    def test_reads_unwraps_memref_and_guard(self):
        inst = parse_instruction("@p0 st.global [addr], val")
        names = {op.name for op in inst.read_regs()}
        assert names == {"addr", "val", "p0"}

    def test_category(self):
        assert parse_instruction("mul r0, r1, r2").category == "arithmetic"
        assert parse_instruction("ld.global a, [b]").category == "memory"
        assert parse_instruction("bra L").category == "branch"
        assert parse_instruction("setp.eq p0, a, b").category == "branch"

    def test_clone_gets_fresh_uid(self):
        inst = parse_instruction("add r0, r1, r2")
        assert inst.clone().uid != inst.uid


class TestParseKernel:
    def test_header_and_labels(self):
        k = parse_kernel("""
        .kernel demo (A, n)
            mov i, 0;
        LOOP:
            add i, i, 1;
            setp.lt p0, i, param.n;
            @p0 bra LOOP;
            exit;
        """)
        assert k.name == "demo"
        assert k.params == ("A", "n")
        assert k.labels["LOOP"] == 1

    def test_exit_appended(self):
        k = parse_kernel("mov r0, 1;")
        assert k.instructions[-1].is_exit

    def test_undefined_label_rejected(self):
        with pytest.raises(ValueError):
            parse_kernel("bra NOWHERE;")

    def test_undeclared_param_rejected(self):
        with pytest.raises(ValueError):
            parse_kernel("mov r0, param.мissing;", params=())

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            parse_kernel("L:\nmov r0, 1;\nL:\nmov r1, 2;")

    def test_round_trip(self):
        src = """
            mul r0, %ctaid.x, %ntid.x;
            add tid, %tid.x, r0;
        LOOP:
            ld.global tmp, [tid];
            @p0 bra LOOP;
            exit;
        """
        k1 = parse_kernel(src, name="rt", params=())
        k2 = parse_kernel(k1.source())
        assert [str(i) for i in k1.instructions] == \
            [str(i) for i in k2.instructions]
        assert k1.labels == k2.labels

    def test_static_counts(self):
        k = parse_kernel("""
            add r0, r1, r2;
            ld.global a, [r0];
            setp.eq p0, a, 0;
            exit;
        """)
        counts = k.static_counts()
        assert counts == {"arithmetic": 1, "memory": 1, "branch": 2}

    def test_registers(self):
        k = parse_kernel("add r0, r1, r2;")
        assert k.registers() == {"r0", "r1", "r2"}
