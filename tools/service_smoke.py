#!/usr/bin/env python3
"""CI smoke test for the experiment daemon.

Run against an already-listening daemon (``$REPRO_SERVICE_SOCKET``):
submits one small grid from two concurrent clients, SIGKILLs a worker
mid-flight, and requires both clients to receive the complete grid —
the minimum end-to-end proof that supervision (respawn + retry + dedup)
works outside pytest.  Exits non-zero on any shortfall; the caller owns
the daemon's lifecycle (this script only sends the ``shutdown`` op).
"""

import os
import signal
import sys
import threading
import time

from repro.harness import experiment_config
from repro.harness.client import ServiceClient, try_connect


def main() -> int:
    cfg = experiment_config(num_sms=2)
    grid = [(abbr, tech, cfg)
            for abbr in ("CP", "ST") for tech in ("baseline", "dac")]

    deadline = time.monotonic() + 60.0
    client = None
    while client is None and time.monotonic() < deadline:
        client = try_connect()
        if client is None:
            time.sleep(0.2)
    if client is None:
        print("service smoke: daemon never answered a ping",
              file=sys.stderr)
        return 1
    client.close()

    outcomes: dict = {}

    def run_one_client(name: str) -> None:
        with ServiceClient() as conn:
            outcomes[name] = conn.run_tasks(grid, "tiny")

    threads = [threading.Thread(target=run_one_client, args=(name,))
               for name in ("a", "b")]
    for thread in threads:
        thread.start()

    with ServiceClient() as conn:
        workers = conn.status()["workers"]
        os.kill(workers[0]["pid"], signal.SIGKILL)
        print(f"service smoke: killed worker pid={workers[0]['pid']}")

    for thread in threads:
        thread.join(timeout=120.0)
    if any(thread.is_alive() for thread in threads):
        print("service smoke: a client never finished", file=sys.stderr)
        return 1

    status = 0
    for name in ("a", "b"):
        results, quarantined, failures = outcomes[name]
        if quarantined or failures or len(results) != len(grid):
            print(f"service smoke: client {name} incomplete "
                  f"({len(results)}/{len(grid)} done, "
                  f"{len(quarantined)} quarantined, "
                  f"{len(failures)} failed)", file=sys.stderr)
            status = 1

    with ServiceClient() as conn:
        # The watchdog notices the kill on its next poll tick; give it a
        # moment rather than racing a single status read.
        deadline = time.monotonic() + 10.0
        respawns = 0
        while respawns < 1 and time.monotonic() < deadline:
            respawns = sum(w["respawns"]
                           for w in conn.status()["workers"])
            if respawns < 1:
                time.sleep(0.1)
        if respawns < 1:
            print("service smoke: no worker respawn recorded",
                  file=sys.stderr)
            status = 1
        conn.shutdown()
    if status == 0:
        print("service smoke: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
