"""SARIF 2.1.0 export for lint and certification reports.

``repro lint --sarif out.sarif`` / ``repro certify --sarif out.sarif``
serialize a :class:`~repro.analysis.diagnostics.LintReport` into the
Static Analysis Results Interchange Format so CI can upload findings to
code-scanning UIs.  The emitted document is deliberately small:

* one ``run`` with one ``tool.driver`` (``repro-lint``) whose rules are
  the stable RPL0xx registry (:data:`~repro.analysis.diagnostics.CODES`);
* one ``result`` per diagnostic; kernels have no files on disk, so each
  points at a pseudo artifact ``kernels/<kernel>.reproasm`` with the
  1-based assembly ``source_line`` when the builder threaded one through
  (line 1 otherwise — SARIF regions are 1-based and required by most
  viewers);
* ``runs[0].properties.schemaVersion`` carries our own schema tag
  (``repro-sarif/1``) so downstream tooling can detect incompatible
  future layouts without sniffing the structure.
"""

from __future__ import annotations

import json

from .. import __version__
from .diagnostics import CODES, Diagnostic, LintReport, Severity

__all__ = ["SCHEMA_VERSION", "to_sarif", "write_sarif"]

#: Bump when the exported layout changes incompatibly.
SCHEMA_VERSION = "repro-sarif/1"

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def _rules() -> list[dict]:
    out = []
    for code, (severity, title) in sorted(CODES.items()):
        out.append({
            "id": code,
            "name": code,
            "shortDescription": {"text": title},
            "defaultConfiguration": {
                "level": "error" if severity is Severity.ERROR
                else "warning",
            },
        })
    return out


def _artifact_uri(diag: Diagnostic) -> str:
    return f"kernels/{diag.kernel}.reproasm"


def _result(diag: Diagnostic) -> dict:
    return {
        "ruleId": diag.code,
        "level": ("error" if diag.severity is Severity.ERROR
                  else "warning"),
        "message": {"text": diag.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": _artifact_uri(diag)},
                "region": {"startLine": diag.source_line or 1},
            },
        }],
        "properties": {
            "kernel": diag.kernel,
            "instIndex": diag.inst_index,
        },
    }


def to_sarif(report: LintReport, tool_name: str = "repro-lint") -> dict:
    """Serialize a lint/certify report as a SARIF 2.1.0 document."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": __version__,
                    "informationUri":
                        "https://example.invalid/repro-dac",
                    "rules": _rules(),
                },
            },
            "results": [_result(d) for d in report.diagnostics],
            "artifacts": [
                {"location": {"uri": uri}} for uri in sorted(
                    {_artifact_uri(d) for d in report.diagnostics})],
            "properties": {
                "schemaVersion": SCHEMA_VERSION,
                "errors": len(report.errors),
                "warnings": len(report.warnings),
                "skippedPasses": list(report.skipped_passes),
            },
        }],
    }


def write_sarif(report: LintReport, path: str,
                tool_name: str = "repro-lint") -> None:
    """Write the SARIF document for ``report`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(report, tool_name=tool_name), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
