"""Seeded mutation campaign against the decoupling certifier.

The certifier (:mod:`repro.analysis.certify`) claims that an empty report
is a proof of stream equivalence.  This module stress-tests the claim the
only honest way: seed known defect classes into otherwise-clean
:class:`~repro.compiler.decouple.DecoupledProgram` instances — perturbed
coefficients, dropped guards, reordered enqueues, widened slices, stale
loop counters, misclassified mod tuples, ... — and demand that every
mutant is either

* **caught-static** — the structural verifier or the certifier reports at
  least one diagnostic (the mutated program never reaches hardware); or
* **caught-dynamic** — the DAC simulation of the mutant hangs, raises, or
  produces a memory image that differs from the functional oracle, i.e.
  the defect is *observable* and a differential harness would flag it.

A mutant that certifies clean **and** simulates bit-identically is a
**silent escape**: a hole in the verification story.  The campaign exits
non-zero on any escape, and on any defect class that never applied to any
target (an unexercised class proves nothing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from ..compiler.decouple import DecoupledProgram, decouple
from ..config import GPUConfig
from ..core import run_dac
from ..isa import (
    CmpOp,
    Immediate,
    Instruction,
    Kernel,
    KernelBuilder,
    MemRef,
    MemSpace,
    Opcode,
    PredReg,
)
from ..sim import GlobalMemory, KernelLaunch
from ..sim.functional import run_functional
from ..workloads import BY_ABBR
from ..workloads.fuzz import build_fuzz_launch
from .certify import certify_program

__all__ = ["MUTATORS", "Mutant", "MutationCase", "MutationReport",
           "Target", "default_targets", "run_mutation_campaign"]


CAMPAIGN_CONFIG = GPUConfig(num_sms=1, max_cycles=400_000)


# ---------------------------------------------------------------------------
# Kernel surgery helpers.
# ---------------------------------------------------------------------------

def _rekernel(kernel: Kernel, instructions) -> Kernel:
    return Kernel(name=kernel.name, params=kernel.params,
                  instructions=list(instructions),
                  labels=dict(kernel.labels))


def _delete(kernel: Kernel, index: int) -> Kernel:
    """Remove one instruction, shifting label targets past it."""
    insts = [inst for j, inst in enumerate(kernel.instructions) if j != index]
    labels = {lbl: (t - 1 if t > index else t)
              for lbl, t in kernel.labels.items()}
    return Kernel(name=kernel.name, params=kernel.params,
                  instructions=insts, labels=labels)


def _feeds_enq(kernel: Kernel, start: int) -> bool:
    """Does the value written at ``start`` (transitively, by a forward
    scan) feed an enqueue operand or guard?  Conservative site filter so
    mutations land on live computation, not dead slice residue."""
    tainted = {r.name for r in kernel.instructions[start].written_regs()}
    if not tainted:
        return False
    for inst in kernel.instructions[start + 1:]:
        reads = {r.name for r in inst.read_regs()}
        if isinstance(inst.guard, PredReg):
            reads.add(inst.guard.name)
        if reads & tainted:
            if inst.is_enq:
                return True
            tainted |= {r.name for r in inst.written_regs()}
    return False


def _enq_positions(program: DecoupledProgram) -> list[int]:
    return [i for i, inst in enumerate(program.affine.instructions)
            if inst.is_enq]


def _queue_class(inst: Instruction) -> str:
    return "pwpq" if inst.opcode is Opcode.ENQ_PRED else "pwaq"


# ---------------------------------------------------------------------------
# Mutation operators.  Each returns a Mutant or None (no applicable site).
# ---------------------------------------------------------------------------

@dataclass
class Mutant:
    klass: str
    description: str
    program: DecoupledProgram


def _mut_coeff_perturb(program: DecoupledProgram,
                       rng: random.Random) -> Mutant | None:
    """+1 on an immediate coefficient of an affine-slice ALU instruction
    that feeds an enqueue (excluding self-increments — that is
    ``stale_loop``'s territory)."""
    aff = program.affine
    sites = []
    for i, inst in enumerate(aff.instructions):
        if inst.opcode not in (Opcode.ADD, Opcode.SUB, Opcode.MUL,
                               Opcode.MAD, Opcode.SHL):
            continue
        written = {r.name for r in inst.written_regs()}
        if written & {r.name for r in inst.read_regs()}:
            continue
        if not _feeds_enq(aff, i):
            continue
        for j, src in enumerate(inst.srcs):
            if isinstance(src, Immediate):
                sites.append((i, j))
    if not sites:
        return None
    i, j = sites[rng.randrange(len(sites))]
    inst = aff.instructions[i]
    srcs = list(inst.srcs)
    srcs[j] = Immediate(srcs[j].value + 1)
    insts = list(aff.instructions)
    insts[i] = inst.clone(srcs=tuple(srcs))
    return Mutant(
        "coeff_perturb",
        f"immediate of {inst.opcode.value} at affine[{i}] bumped by +1",
        dc_replace(program, affine=_rekernel(aff, insts)))


def _guarded_enqs(program: DecoupledProgram) -> list[int]:
    return [i for i in _enq_positions(program)
            if isinstance(program.affine.instructions[i].guard, PredReg)]


def _mut_guard_drop(program: DecoupledProgram,
                    rng: random.Random) -> Mutant | None:
    """Strip the guard off one enqueue: the affine warp enqueues for lanes
    the original access masked out."""
    sites = _guarded_enqs(program)
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    insts = list(program.affine.instructions)
    insts[i] = insts[i].clone(guard=None, guard_negated=False)
    return Mutant(
        "guard_drop", f"guard removed from enqueue at affine[{i}]",
        dc_replace(program, affine=_rekernel(program.affine, insts)))


def _mut_guard_flip(program: DecoupledProgram,
                    rng: random.Random) -> Mutant | None:
    """Invert the polarity of one enqueue's guard."""
    sites = _guarded_enqs(program)
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    insts = list(program.affine.instructions)
    insts[i] = insts[i].clone(guard_negated=not insts[i].guard_negated)
    return Mutant(
        "guard_flip", f"guard polarity inverted on enqueue at affine[{i}]",
        dc_replace(program, affine=_rekernel(program.affine, insts)))


def _mut_enq_reorder(program: DecoupledProgram,
                     rng: random.Random) -> Mutant | None:
    """Swap two adjacent same-class enqueues (provenance swapped with
    them): the per-class FIFO now pairs tuples with the wrong dequeues."""
    aff = program.affine
    targets = set(aff.labels.values())
    sites = []
    for i in range(len(aff.instructions) - 1):
        a, b = aff.instructions[i], aff.instructions[i + 1]
        if a.is_enq and b.is_enq and i + 1 not in targets \
                and _queue_class(a) == _queue_class(b):
            sites.append(i)
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    insts = list(aff.instructions)
    insts[i], insts[i + 1] = insts[i + 1], insts[i]
    origin = list(program.affine_origin)
    if origin:
        origin[i], origin[i + 1] = origin[i + 1], origin[i]
    return Mutant(
        "enq_reorder",
        f"adjacent {_queue_class(insts[i])} enqueues at affine[{i}] "
        "and affine[{}] swapped".format(i + 1),
        dc_replace(program, affine=_rekernel(aff, insts),
                   affine_origin=origin))


def _mut_queue_retarget(program: DecoupledProgram,
                        rng: random.Random) -> Mutant | None:
    """Swap the queue ids of two same-kind enqueues (or, with a single
    queue, retarget it to a fresh id): each dequeue now drains a tuple
    computed for a different original access."""
    aff = program.affine
    by_opcode: dict[Opcode, list[int]] = {}
    for i in _enq_positions(program):
        by_opcode.setdefault(aff.instructions[i].opcode, []).append(i)
    pairs = [v for v in by_opcode.values() if len(v) >= 2]
    insts = list(aff.instructions)
    if pairs:
        group = pairs[rng.randrange(len(pairs))]
        i, j = group[0], group[1]
        qi, qj = insts[i].queue_id, insts[j].queue_id
        insts[i] = insts[i].clone(queue_id=qj)
        insts[j] = insts[j].clone(queue_id=qi)
        what = f"queue ids of affine[{i}] and affine[{j}] swapped"
    else:
        sites = _enq_positions(program)
        if not sites:
            return None
        i = sites[rng.randrange(len(sites))]
        fresh = max(program.queue_origin, default=0) + 1
        insts[i] = insts[i].clone(queue_id=fresh)
        what = f"enqueue at affine[{i}] retargeted to unknown queue {fresh}"
    return Mutant("queue_retarget", what,
                  dc_replace(program, affine=_rekernel(aff, insts)))


def _mut_slice_widen(program: DecoupledProgram,
                     rng: random.Random) -> Mutant | None:
    """Un-decouple one access: drop its enqueue and restore the original
    instruction over its dequeue form, as if the compiler had widened the
    non-affine slice.  Either the restored access reads definitions the
    slice removed (soundness error) or the program is a certifiably
    missed optimization (RPL051)."""
    if len(program.queue_origin) < 2:
        return None                     # keep the mutant decoupled
    qids = sorted(program.queue_origin)
    qid = qids[rng.randrange(len(qids))]
    orig_index = program.queue_origin[qid]
    aff = program.affine
    enq_i = next(i for i in _enq_positions(program)
                 if aff.instructions[i].queue_id == qid)
    new_affine = _delete(aff, enq_i)
    affine_origin = [o for j, o in enumerate(program.affine_origin)
                     if j != enq_i]
    try:
        pos = program.nonaffine_origin.index(orig_index)
    except ValueError:
        return None
    insts = list(program.nonaffine.instructions)
    insts[pos] = program.original.instructions[orig_index].clone()
    queue_origin = dict(program.queue_origin)
    del queue_origin[qid]
    return Mutant(
        "slice_widen",
        f"queue {qid} un-decoupled: enqueue dropped, original "
        f"instruction restored at non-affine[{pos}]",
        dc_replace(program, affine=new_affine,
                   nonaffine=_rekernel(program.nonaffine, insts),
                   affine_origin=affine_origin, queue_origin=queue_origin,
                   num_queues=program.num_queues - 1))


def _mut_stale_loop(program: DecoupledProgram,
                    rng: random.Random) -> Mutant | None:
    """Double the step of a loop counter in the affine stream while the
    non-affine copy keeps stepping by one: the streams' loop-carried
    closed forms drift apart and the enqueue count no longer matches."""
    aff = program.affine
    sites = []
    for i, inst in enumerate(aff.instructions):
        if not (inst.is_branch and inst.target is not None):
            continue
        head = aff.labels.get(inst.target, len(aff.instructions))
        if head > i:
            continue                    # forward branch: not a loop latch
        body = range(head, i + 1)
        if not any(aff.instructions[k].is_enq for k in body):
            continue                    # no queue traffic: nothing to skew
        for k in body:
            upd = aff.instructions[k]
            if upd.opcode is Opcode.ADD and (
                    {r.name for r in upd.written_regs()}
                    & {r.name for r in upd.read_regs()}):
                for j, src in enumerate(upd.srcs):
                    if isinstance(src, Immediate):
                        sites.append((k, j))
    if not sites:
        return None
    k, j = sites[rng.randrange(len(sites))]
    inst = aff.instructions[k]
    srcs = list(inst.srcs)
    srcs[j] = Immediate(srcs[j].value * 2 if srcs[j].value else 1.0)
    insts = list(aff.instructions)
    insts[k] = inst.clone(srcs=tuple(srcs))
    return Mutant(
        "stale_loop",
        f"loop-counter update at affine[{k}] steps by "
        f"{int(srcs[j].value)} instead of {int(inst.srcs[j].value)}",
        dc_replace(program, affine=_rekernel(aff, insts)))


def _mut_mod_divisor(program: DecoupledProgram,
                     rng: random.Random) -> Mutant | None:
    """+1 on the immediate divisor of a ``rem`` feeding an enqueue: a
    mod-type tuple classified with the wrong modulus."""
    aff = program.affine
    sites = []
    for i, inst in enumerate(aff.instructions):
        if inst.opcode is not Opcode.REM or not _feeds_enq(aff, i):
            continue
        for j, src in enumerate(inst.srcs):
            if isinstance(src, Immediate) and j == 1:
                sites.append((i, j))
    if not sites:
        return None
    i, j = sites[rng.randrange(len(sites))]
    inst = aff.instructions[i]
    srcs = list(inst.srcs)
    srcs[j] = Immediate(srcs[j].value + 1)
    insts = list(aff.instructions)
    insts[i] = inst.clone(srcs=tuple(srcs))
    return Mutant(
        "mod_divisor",
        f"rem divisor at affine[{i}] changed to {int(srcs[j].value)}",
        dc_replace(program, affine=_rekernel(aff, insts)))


def _mut_disp_drop(program: DecoupledProgram,
                   rng: random.Random) -> Mutant | None:
    """Drop the displacement from an enqueue's address operand: the tuple
    base is off by a constant the dequeue side still expects."""
    aff = program.affine
    sites = [i for i in _enq_positions(program)
             if aff.instructions[i].srcs
             and isinstance(aff.instructions[i].srcs[0], MemRef)
             and aff.instructions[i].srcs[0].displacement]
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    inst = aff.instructions[i]
    insts = list(aff.instructions)
    insts[i] = inst.clone(srcs=(inst.srcs[0].address,))
    return Mutant(
        "disp_drop",
        f"displacement {inst.srcs[0].displacement} dropped from enqueue "
        f"at affine[{i}]",
        dc_replace(program, affine=_rekernel(aff, insts)))


_CMP_WEAKEN = {CmpOp.LT: CmpOp.LE, CmpOp.LE: CmpOp.LT,
               CmpOp.GT: CmpOp.GE, CmpOp.GE: CmpOp.GT,
               CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ}


def _mut_pred_cmp_flip(program: DecoupledProgram,
                       rng: random.Random) -> Mutant | None:
    """Weaken/flip the comparison of an affine-stream setp (LT↔LE, EQ↔NE):
    off-by-one iteration spaces and wrong guard masks."""
    aff = program.affine
    sites = [i for i, inst in enumerate(aff.instructions)
             if inst.opcode is Opcode.SETP and inst.cmp in _CMP_WEAKEN]
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    inst = aff.instructions[i]
    insts = list(aff.instructions)
    insts[i] = inst.clone(cmp=_CMP_WEAKEN[inst.cmp])
    return Mutant(
        "pred_cmp_flip",
        f"setp at affine[{i}] weakened from {inst.cmp.value} to "
        f"{_CMP_WEAKEN[inst.cmp].value}",
        dc_replace(program, affine=_rekernel(aff, insts)))


def _mut_barrier_drop(program: DecoupledProgram,
                      rng: random.Random) -> Mutant | None:
    """Delete one replicated barrier from the affine stream: the streams'
    synchronization schedules no longer line up."""
    aff = program.affine
    sites = [i for i, inst in enumerate(aff.instructions) if inst.is_barrier]
    if not sites:
        return None
    i = sites[rng.randrange(len(sites))]
    affine_origin = [o for j, o in enumerate(program.affine_origin) if j != i]
    return Mutant(
        "barrier_drop", f"barrier at affine[{i}] deleted",
        dc_replace(program, affine=_delete(aff, i),
                   affine_origin=affine_origin))


def _mut_origin_skew(program: DecoupledProgram,
                     rng: random.Random) -> Mutant | None:
    """Point one queue's recorded origin at a different instruction of the
    same kind: the tuple is proven against the wrong original access."""
    by_kind: dict[str, list[int]] = {}
    for idx, inst in enumerate(program.original.instructions):
        if inst.is_load:
            by_kind.setdefault("data", []).append(idx)
        elif inst.is_store:
            by_kind.setdefault("addr", []).append(idx)
        elif inst.opcode is Opcode.SETP:
            by_kind.setdefault("pred", []).append(idx)
    kind_of = {Opcode.ENQ_DATA: "data", Opcode.ENQ_ADDR: "addr",
               Opcode.ENQ_PRED: "pred"}
    sites = []
    for qid, orig_index in sorted(program.queue_origin.items()):
        enq_i = next((i for i in _enq_positions(program)
                      if program.affine.instructions[i].queue_id == qid),
                     None)
        if enq_i is None:
            continue
        kind = kind_of[program.affine.instructions[enq_i].opcode]
        others = [x for x in by_kind.get(kind, ()) if x != orig_index]
        if others:
            sites.append((qid, others))
    if not sites:
        return None
    qid, others = sites[rng.randrange(len(sites))]
    queue_origin = dict(program.queue_origin)
    queue_origin[qid] = others[rng.randrange(len(others))]
    return Mutant(
        "origin_skew",
        f"queue {qid} origin redirected from index "
        f"{program.queue_origin[qid]} to {queue_origin[qid]}",
        dc_replace(program, queue_origin=queue_origin))


#: Defect class -> mutation operator, in reporting order.
MUTATORS = {
    "coeff_perturb": _mut_coeff_perturb,
    "guard_drop": _mut_guard_drop,
    "guard_flip": _mut_guard_flip,
    "enq_reorder": _mut_enq_reorder,
    "queue_retarget": _mut_queue_retarget,
    "slice_widen": _mut_slice_widen,
    "stale_loop": _mut_stale_loop,
    "mod_divisor": _mut_mod_divisor,
    "disp_drop": _mut_disp_drop,
    "pred_cmp_flip": _mut_pred_cmp_flip,
    "barrier_drop": _mut_barrier_drop,
    "origin_skew": _mut_origin_skew,
}


# ---------------------------------------------------------------------------
# Targets.
# ---------------------------------------------------------------------------

@dataclass
class Target:
    """A kernel the campaign mutates.  ``launch_factory`` must build a
    *fresh* launch each call — simulations mutate memory in place."""

    name: str
    launch_factory: object

    def launch(self) -> KernelLaunch:
        return self.launch_factory()


def _synthetic_launch() -> KernelLaunch:
    """One kernel with an applicable site for every defect class: two
    adjacent data queues, a displaced load, a rem-indexed load, a guarded
    store, a barrier, and an enqueueing loop."""
    kb = KernelBuilder("mutsynth", params=("A", "B", "O", "n"))
    gtid = kb.global_tid_x()
    a1 = kb.mad(gtid, 4, kb.param("A"))
    m = kb.rem(gtid, 8)
    a2 = kb.mad(m, 4, kb.param("B"))
    x = kb.load(a1, displacement=8)
    y = kb.load(a2)
    kb.barrier()
    acc = kb.mov(0)
    i = kb.loop_counter(4)
    ai = kb.add(a1, kb.shl(i, 2))
    t = kb.load(ai)
    kb.assign(acc, kb.add(acc, t))
    kb.end_loop()
    p = kb.setp(CmpOp.LT, gtid, kb.param("n"))
    out = kb.mad(gtid, 4, kb.param("O"))
    total = kb.add(kb.add(x, y), acc)
    kb.emit(Instruction(Opcode.ST, dsts=(MemRef(out),), srcs=(total,),
                        space=MemSpace.GLOBAL, guard=p))
    kernel = kb.build()
    memory = GlobalMemory(4096)
    memory.words[:] = (7 * np.arange(len(memory.words),
                                     dtype=memory.words.dtype)) % 251
    return KernelLaunch(kernel=kernel, grid_dim=(2, 1, 1),
                        block_dim=(32, 1, 1),
                        params={"A": 0, "B": 1024, "O": 2048, "n": 48},
                        memory=memory)


def default_targets() -> list[Target]:
    targets = [Target("SYNTH", _synthetic_launch)]
    for abbr in ("ST", "BP", "SP", "HS"):
        bench = BY_ABBR[abbr]
        targets.append(Target(
            abbr, (lambda b: lambda: b.launch("tiny"))(bench)))
    for seed in (3, 11):
        targets.append(Target(
            f"FUZZ-{seed}", (lambda s: lambda: build_fuzz_launch(s))(seed)))
    return targets


# ---------------------------------------------------------------------------
# Campaign driver.
# ---------------------------------------------------------------------------

@dataclass
class MutationCase:
    target: str
    klass: str
    outcome: str                 # caught-static | caught-dynamic |
    #                              skipped | silent-escape
    detail: str = ""
    codes: tuple = ()

    def to_dict(self) -> dict:
        return {"target": self.target, "class": self.klass,
                "outcome": self.outcome, "detail": self.detail,
                "codes": list(self.codes)}


@dataclass
class MutationReport:
    cases: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def escapes(self) -> list:
        return [c for c in self.cases if c.outcome == "silent-escape"]

    def unexercised(self) -> list[str]:
        applied = {c.klass for c in self.cases if c.outcome != "skipped"}
        tried = {c.klass for c in self.cases}
        return sorted(tried - applied)

    @property
    def ok(self) -> bool:
        return not self.escapes and not self.unexercised()

    def counts(self) -> dict[str, int]:
        out = {"caught-static": 0, "caught-dynamic": 0, "skipped": 0,
               "silent-escape": 0}
        for c in self.cases:
            out[c.outcome] += 1
        return out

    def render(self) -> str:
        lines = []
        width = max((len(c.klass) for c in self.cases), default=8)
        for c in self.cases:
            codes = f" [{','.join(c.codes)}]" if c.codes else ""
            lines.append(f"  {c.target:<10} {c.klass:<{width}} "
                         f"{c.outcome:<14}{codes} {c.detail}")
        counts = self.counts()
        summary = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        lines.append(f"mutation campaign: {summary}")
        for klass in self.unexercised():
            lines.append(f"  UNEXERCISED class: {klass} "
                         "(never applied to any target)")
        for c in self.escapes:
            lines.append(f"  SILENT ESCAPE: {c.target}/{c.klass} — "
                         f"{c.detail}")
        lines.append("mutation campaign: "
                     + ("no silent escapes" if self.ok else "FAILED"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"cases": [c.to_dict() for c in self.cases],
                "counts": self.counts(), "ok": self.ok,
                "unexercised": self.unexercised(), "notes": self.notes}


def _validate_dynamic(target: Target, mutant: Mutant,
                      config: GPUConfig) -> tuple[str, str]:
    launch = target.launch()
    try:
        run_dac(launch, config, program=mutant.program)
        image = launch.memory.words.copy()
    except Exception as exc:            # hang, checker, runtime decode error
        detail = f"{type(exc).__name__}: {exc}"
        return "caught-dynamic", (detail[:97] + "...") if len(detail) > 100 \
            else detail
    oracle = target.launch()
    run_functional(oracle)
    if not np.array_equal(image, oracle.memory.words):
        return "caught-dynamic", "memory image diverges from oracle"
    return "silent-escape", "certified clean and simulated bit-identically"


def run_mutation_campaign(targets: list[Target] | None = None,
                          classes: list[str] | None = None,
                          seed: int = 0,
                          config: GPUConfig = CAMPAIGN_CONFIG) \
        -> MutationReport:
    """Mutate every target with every defect class; classify each mutant
    as caught-static, caught-dynamic, skipped, or silent-escape."""
    report = MutationReport()
    if targets is None:
        targets = default_targets()
    names = list(MUTATORS) if classes is None else list(classes)
    for name in names:
        if name not in MUTATORS:
            raise ValueError(f"unknown mutation class {name!r}; known: "
                             f"{', '.join(MUTATORS)}")

    for target in targets:
        program = decouple(target.launch().kernel)
        if not program.is_decoupled:
            report.notes.append(f"{target.name}: not decoupled, skipped")
            continue
        baseline = certify_program(program)
        if baseline.diagnostics:
            report.notes.append(
                f"{target.name}: baseline not clean "
                f"({sorted(baseline.codes())}), skipped")
            continue
        for klass in names:
            rng = random.Random(f"{seed}:{target.name}:{klass}")
            mutant = MUTATORS[klass](program, rng)
            if mutant is None:
                report.cases.append(MutationCase(
                    target.name, klass, "skipped", "no applicable site"))
                continue
            cert = certify_program(mutant.program)
            if cert.diagnostics:
                report.cases.append(MutationCase(
                    target.name, klass, "caught-static",
                    mutant.description, tuple(sorted(cert.codes()))))
                continue
            outcome, detail = _validate_dynamic(target, mutant, config)
            report.cases.append(MutationCase(
                target.name, klass, outcome,
                f"{mutant.description}; {detail}"))
    return report
