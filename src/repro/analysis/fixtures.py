"""Seeded lint fixtures: clean kernels and one defect class per code.

Two roles:

* the *clean corpus* (``clean_bundle``) — randomly shaped but
  clean-by-construction kernels that must produce **zero** diagnostics and
  whose timing simulation must match the functional oracle;
* one *defect builder per diagnostic code* (``DEFECTS``) — each seeds a
  specific defect whose static diagnosis carries a dynamic prediction the
  campaign checks against the simulator:

  ========  ==========  ================================================
  code      prediction  dynamic check
  ========  ==========  ================================================
  RPL001    preserve    functional image identical to the clean parent
  RPL002    corrupt     functional image differs from the clean parent
  RPL011    hang        timing sim hangs; functional oracle terminates
  RPL012    hang        ditto, via engineered per-thread data
  RPL021    mismatch    timing image differs from the functional oracle
  RPL022    mismatch    ditto (stale read wins the race in timing)
  RPL031    hang        DAC starves on the dropped enqueue; safe mode
                        falls back to baseline
  RPL032    misbehave   DAC diverges from the oracle (wrong values,
                        a hang, or a runtime error)
  RPL033    hang        zero-capacity ATQ partition wedges the AEU
  RPL034    throttle    completes *correctly* despite back-pressure
  RPL041    corrupt     negative addresses wrap and clobber high memory
  RPL042    corrupt     stride overrun clobbers the canary allocation
  ========  ==========  ================================================

Every builder returns fresh state on each call (memory images are mutated
by the simulators), deterministically per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..compiler.decouple import DecoupledProgram, decouple
from ..config import DACConfig, GPUConfig
from ..isa import CmpOp, Kernel, KernelBuilder, Register
from ..sim.launch import GlobalMemory, KernelLaunch

#: One CTA of two warps: enough for intra-CTA barrier divergence and
#: cross-warp races while keeping simulations fast.
N = 64

#: Small machine for fixture runs: hangs are detected by the no-progress
#: watchdog, so the cycle ceiling only caps pathological slow runs.
FIXTURE_CONFIG = GPUConfig(num_sms=1, max_cycles=400_000)


@dataclass
class FixtureBundle:
    """Everything the campaign needs for one case."""

    name: str
    launch: KernelLaunch
    config: GPUConfig = FIXTURE_CONFIG
    clean_launch: KernelLaunch | None = None   # parent with identical data
    program: DecoupledProgram | None = None    # pre-mutated DAC program


def _alloc_launch(kernel: Kernel, seed: int,
                  arrays: tuple[str, ...] = ("A", "B"),
                  outputs: tuple[str, ...] = ("O",),
                  extra_params: dict[str, float] | None = None,
                  grid: tuple[int, int, int] = (1, 1, 1),
                  block: tuple[int, int, int] = (N, 1, 1)) -> KernelLaunch:
    rng = np.random.default_rng(seed)
    mem = GlobalMemory(1 << 16)
    params: dict[str, float] = {}
    for name in arrays:
        params[name] = float(mem.alloc_array(
            rng.integers(1, 100, size=N).astype(np.float64)))
    for name in outputs:
        params[name] = float(mem.alloc(N))
    params.update(extra_params or {})
    params = {k: v for k, v in params.items() if k in kernel.params}
    if "n" in kernel.params:
        params["n"] = float(N)
    return KernelLaunch(kernel=kernel, grid_dim=grid, block_dim=block,
                        params=params, memory=mem)


def _chain(b: KernelBuilder, value, length: int, salt: int = 1000):
    """A long dependent ALU chain — delays whichever warp executes it."""
    v = b.add(value, salt)
    for _ in range(length):
        v = b.add(v, 1)
    return v


# ---------------------------------------------------------------------------
# Clean corpus
# ---------------------------------------------------------------------------

def _clean_builder(seed: int) -> KernelBuilder:
    """A randomly shaped kernel with no lintable defects: every definition
    is used, every read is initialized, barriers are unconditional, arrays
    are indexed in-bounds with distinct bases."""
    rng = random.Random(seed)
    b = KernelBuilder(f"lint_clean_{seed}", params=("A", "B", "O", "n"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4, name="off")
    a = b.load(b.add(b.param("A"), off))
    v = b.load(b.add(b.param("B"), off))
    x = b.add(a, v, name="x")
    for _ in range(rng.randint(1, 4)):
        op = rng.choice(("add", "mul", "sub", "max"))
        x = getattr(b, op)(x, rng.randint(1, 9))
    if rng.random() < 0.5:
        b.barrier()
    if rng.random() < 0.5:
        acc = b.mov(0, name="acc")
        b.loop_counter(rng.randint(2, 4))
        b.assign(acc, b.add(acc, x))
        b.end_loop()
        x = b.add(x, acc)
    b.store(b.add(b.param("O"), off), x)
    return b


def clean_bundle(seed: int) -> FixtureBundle:
    kernel = _clean_builder(seed).build()
    return FixtureBundle(name=f"clean/{seed}",
                         launch=_alloc_launch(kernel, seed))


# ---------------------------------------------------------------------------
# Straight-line parent used by the queue and bounds defect classes
# ---------------------------------------------------------------------------

def _straightline_builder(name: str,
                          params=("A", "B", "O", "n")) -> KernelBuilder:
    b = KernelBuilder(name, params=params)
    tid = b.global_tid_x()
    off = b.mul(tid, 4, name="off")
    a = b.load(b.add(b.param("A"), off))
    v = b.load(b.add(b.param("B"), off))
    b._x = b.add(a, v, name="x")          # stashed for defect builders
    b._off = off
    b._tid = tid
    b._a = a
    return b


# ---------------------------------------------------------------------------
# Defect builders, one per code
# ---------------------------------------------------------------------------

def build_rpl001(seed: int) -> FixtureBundle:
    """Dead code: an extra computation whose value is never consumed."""
    b = _straightline_builder(f"lint_dead_{seed}")
    b.add(b._a, 7, name="junk")                    # never used
    b.store(b.add(b.param("O"), b._off), b._x)
    kernel = b.build()

    c = _straightline_builder(f"lint_dead_{seed}_clean")
    c.store(c.add(c.param("O"), c._off), c._x)
    return FixtureBundle(
        name=f"RPL001/{seed}", launch=_alloc_launch(kernel, seed),
        clean_launch=_alloc_launch(c.build(), seed))


def build_rpl002(seed: int) -> FixtureBundle:
    """Uninitialized read: ``ghost`` has no definition, reads as zero."""
    b = _straightline_builder(f"lint_uninit_{seed}")
    y = b.add(b._x, Register("ghost"))             # intended: x + 1
    b.store(b.add(b.param("O"), b._off), y)
    kernel = b.build()

    c = _straightline_builder(f"lint_uninit_{seed}_clean")
    y = c.add(c._x, 1)
    c.store(c.add(c.param("O"), c._off), y)
    return FixtureBundle(
        name=f"RPL002/{seed}", launch=_alloc_launch(kernel, seed),
        clean_launch=_alloc_launch(c.build(), seed))


def build_rpl011(seed: int) -> FixtureBundle:
    """Barrier under a thread-divergent (affine) branch.

    Warp 0 (tid < 32) enters the barrier immediately; warp 1 skips it and
    exits only after a long ALU chain, so warp 0 is already waiting when
    warp 1 retires — the barrier never releases (see sim/sm.py)."""
    b = KernelBuilder(f"lint_bardiv_{seed}", params=("O",))
    tid = b.global_tid_x()
    p = b.setp(CmpOp.LT, tid, 32)
    with b.if_then(p):
        b.barrier()
    v = _chain(b, tid, 24)
    b.store(b.add(b.param("O"), b.mul(tid, 4)), v)
    kernel = b.build()
    return FixtureBundle(
        name=f"RPL011/{seed}",
        launch=_alloc_launch(kernel, seed, arrays=(), outputs=("O",)))


def build_rpl012(seed: int) -> FixtureBundle:
    """Barrier under a data-dependent branch, with data engineered so the
    two warps of the CTA actually diverge (warp 0 loads 1, warp 1 loads
    0)."""
    b = KernelBuilder(f"lint_bardata_{seed}", params=("F", "O"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4, name="off")
    flag = b.load(b.add(b.param("F"), off))
    p = b.setp(CmpOp.GT, flag, 0)
    with b.if_then(p):
        b.barrier()
    v = _chain(b, flag, 24)
    b.store(b.add(b.param("O"), off), v)
    kernel = b.build()

    mem = GlobalMemory(1 << 16)
    flags = np.zeros(N)
    flags[:32] = 1.0                       # warp 0 takes the barrier
    f = mem.alloc_array(flags)
    o = mem.alloc(N)
    launch = KernelLaunch(kernel=kernel, grid_dim=(1, 1, 1),
                          block_dim=(N, 1, 1),
                          params={"F": float(f), "O": float(o)}, memory=mem)
    return FixtureBundle(name=f"RPL012/{seed}", launch=launch)


def build_rpl021(seed: int) -> FixtureBundle:
    """Every thread stores its own value to one location.  Warp 0 is
    delayed by a chain, so in the timing simulation it writes *last* and
    its lane 31 wins; the functional oracle executes warps in order and
    warp 1's lane 31 wins."""
    b = KernelBuilder(f"lint_wuni_{seed}", params=("O",))
    tid = b.global_tid_x()
    x = b.mov(tid, name="xval")
    p = b.setp(CmpOp.LT, tid, 32)
    with b.if_then(p):
        b.assign(x, _chain(b, tid, 24))
    b.store(b.param("O"), x)               # address is uniform: param.O
    kernel = b.build()
    return FixtureBundle(
        name=f"RPL021/{seed}",
        launch=_alloc_launch(kernel, seed, arrays=(), outputs=("O",)))


def build_rpl022(seed: int) -> FixtureBundle:
    """Producer/consumer race: warp 0 stores X[tid] after a long chain,
    warp 1 reads X[tid-32] early.  Timing sees the stale zero; the
    functional oracle (warps in order) sees the produced value."""
    b = KernelBuilder(f"lint_race_{seed}", params=("X", "O"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4, name="off")
    p_lo = b.setp(CmpOp.LT, tid, 32)
    with b.if_then(p_lo):
        b.store(b.add(b.param("X"), off), _chain(b, tid, 40))
    p_hi = b.setp(CmpOp.GE, tid, 32)
    with b.if_then(p_hi):
        y = b.load(b.add(b.param("X"), b.sub(off, 128)))
        b.store(b.add(b.param("O"), off), y)
    kernel = b.build()
    return FixtureBundle(
        name=f"RPL022/{seed}",
        launch=_alloc_launch(kernel, seed, arrays=("X",), outputs=("O",)))


def _decoupled_parent(seed: int, tag: str):
    b = _straightline_builder(f"lint_{tag}_{seed}")
    b.store(b.add(b.param("O"), b._off), b._x)
    kernel = b.build()
    return kernel, decouple(kernel)


def build_rpl031(seed: int) -> FixtureBundle:
    """Drop the last enqueue from the affine stream: the consumer's final
    dequeue starves forever."""
    kernel, program = _decoupled_parent(seed, "qstarve")
    enq_indices = [i for i, inst in enumerate(program.affine.instructions)
                   if inst.is_enq]
    keep = [inst for i, inst in enumerate(program.affine.instructions)
            if i != enq_indices[-1]]
    mutated = replace(program, affine=Kernel(
        name=program.affine.name, params=program.affine.params,
        instructions=keep, labels=dict(program.affine.labels)))
    return FixtureBundle(name=f"RPL031/{seed}",
                         launch=_alloc_launch(kernel, seed),
                         program=mutated)


def build_rpl032(seed: int) -> FixtureBundle:
    """Insert a spurious enqueue (fresh queue id) before the first real
    one: every later dequeue pops a shifted — wrong — entry."""
    kernel, program = _decoupled_parent(seed, "qleak")
    insts = list(program.affine.instructions)
    first_enq = next(i for i, inst in enumerate(insts) if inst.is_enq)
    insts.insert(first_enq, insts[first_enq].clone(queue_id=999))
    mutated = replace(program, affine=Kernel(
        name=program.affine.name, params=program.affine.params,
        instructions=insts, labels=dict(program.affine.labels)))
    return FixtureBundle(name=f"RPL032/{seed}",
                         launch=_alloc_launch(kernel, seed),
                         program=mutated)


def build_rpl033(seed: int) -> FixtureBundle:
    """A used queue class with zero configured capacity: ``atq_entries=1``
    gives the memory partition ``1 // 2 == 0`` entries."""
    kernel, program = _decoupled_parent(seed, "qzero")
    config = replace(FIXTURE_CONFIG, dac=DACConfig(atq_entries=1))
    return FixtureBundle(name=f"RPL033/{seed}",
                         launch=_alloc_launch(kernel, seed),
                         config=config, program=program)


def build_rpl034(seed: int) -> FixtureBundle:
    """Interval pressure (3 memory tuples) exceeds the ATQ memory
    partition (``4 // 2 == 2``): back-pressure throttles the affine warp
    but the run must still complete correctly."""
    kernel, program = _decoupled_parent(seed, "qpress")
    config = replace(FIXTURE_CONFIG, dac=DACConfig(atq_entries=4))
    return FixtureBundle(name=f"RPL034/{seed}",
                         launch=_alloc_launch(kernel, seed),
                         config=config, program=program)


def build_rpl041(seed: int) -> FixtureBundle:
    """Provably out-of-memory store: the base parameter is negative, so
    every thread's address is below zero and numpy's negative indexing
    silently clobbers the top of device memory."""
    b = _straightline_builder(f"lint_oob_{seed}",
                              params=("A", "B", "Obad", "n"))
    b.store(b.add(b.param("Obad"), b._off), b._x)
    kernel = b.build()

    c = _straightline_builder(f"lint_oob_{seed}_clean")
    c.store(c.add(c.param("O"), c._off), c._x)
    return FixtureBundle(
        name=f"RPL041/{seed}",
        launch=_alloc_launch(kernel, seed, extra_params={"Obad": -4096.0}),
        clean_launch=_alloc_launch(c.build(), seed))


def build_rpl042(seed: int) -> FixtureBundle:
    """Stride-2 indexing overruns the 64-word output allocation and
    corrupts the canary array allocated right behind it."""
    b = _straightline_builder(f"lint_extent_{seed}")
    b.store(b.add(b.param("O"), b.mul(b._tid, 8)), b._x)
    kernel = b.build()

    c = _straightline_builder(f"lint_extent_{seed}_clean")
    c.store(c.add(c.param("O"), c._off), c._x)
    # Identical memory layout for both: A, B, O, then an untouched canary.
    bundles = []
    for k in (kernel, c.build()):
        launch = _alloc_launch(k, seed)
        launch.memory.alloc_array(np.full(N, 7.0))     # canary
        bundles.append(launch)
    return FixtureBundle(name=f"RPL042/{seed}", launch=bundles[0],
                         clean_launch=bundles[1])


#: code -> (builder, predicted dynamic behavior)
DEFECTS: dict[str, tuple[Callable[[int], FixtureBundle], str]] = {
    "RPL001": (build_rpl001, "preserve"),
    "RPL002": (build_rpl002, "corrupt"),
    "RPL011": (build_rpl011, "hang"),
    "RPL012": (build_rpl012, "hang"),
    "RPL021": (build_rpl021, "mismatch"),
    "RPL022": (build_rpl022, "mismatch"),
    "RPL031": (build_rpl031, "hang"),
    "RPL032": (build_rpl032, "misbehave"),
    "RPL033": (build_rpl033, "hang"),
    "RPL034": (build_rpl034, "throttle"),
    "RPL041": (build_rpl041, "corrupt"),
    "RPL042": (build_rpl042, "corrupt"),
}
