"""Differential validation of the lint diagnostics against the simulator.

In the spirit of :mod:`repro.faults.campaign`: each seeded-defect fixture
must (a) trip its diagnostic code statically and (b) exhibit the dynamic
behavior the diagnostic predicts — a hang, a divergence from the
functional oracle, a corruption relative to the clean parent, or (for the
two advisory codes) provable *harmlessness*.  The clean corpus must lint
silently and simulate bit-identically to the oracle.

Outcome taxonomy per case:

* ``validated``        — lint fired and the predicted behavior occurred;
* ``lint-missed``      — the defect did not trip its diagnostic;
* ``not-manifested``   — lint fired but the simulator behaved normally;
* ``error``            — unexpected simulator failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import run_dac
from ..core.affine_warp import DecoupleRuntimeError
from ..sim.functional import run_functional
from ..sim.gpu import SimulationHang, simulate
from .fixtures import DEFECTS, FixtureBundle, clean_bundle
from .linter import lint_launch, lint_program


def _image(launch) -> np.ndarray:
    return launch.memory.words.copy()


def _lint(bundle: FixtureBundle):
    if bundle.program is not None:
        return lint_program(bundle.program, bundle.config)
    return lint_launch(bundle.launch, bundle.config)


def _run_timing(bundle: FixtureBundle, safe_mode: bool = False):
    """Timing simulation of a fixture: DAC when it carries a pre-built
    program, the baseline SM otherwise."""
    if bundle.program is not None:
        return run_dac(bundle.launch, bundle.config,
                       program=bundle.program, safe_mode=safe_mode)
    return simulate(bundle.launch, bundle.config)


@dataclass
class CaseResult:
    name: str
    code: str
    prediction: str
    lint_fired: bool
    dynamic_ok: bool
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.lint_fired and self.dynamic_ok


@dataclass
class CleanResult:
    name: str
    silent: bool
    oracle_match: bool

    @property
    def ok(self) -> bool:
        return self.silent and self.oracle_match


@dataclass
class LintCampaignReport:
    cases: list[CaseResult] = field(default_factory=list)
    clean: list[CleanResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases) and \
            all(c.ok for c in self.clean)

    def render(self) -> str:
        lines = ["lint differential-validation campaign", ""]
        for c in self.cases:
            mark = "ok " if c.ok else "FAIL"
            lines.append(f"  [{mark}] {c.name:<12} predict={c.prediction:<9} "
                         f"lint={'fired' if c.lint_fired else 'MISSED'} "
                         f"dynamic={c.outcome}"
                         + (f" ({c.detail})" if c.detail else ""))
        silent = sum(1 for c in self.clean if c.silent)
        matched = sum(1 for c in self.clean if c.oracle_match)
        lines.append("")
        lines.append(f"  clean corpus: {silent}/{len(self.clean)} silent, "
                     f"{matched}/{len(self.clean)} oracle-identical")
        lines.append("")
        lines.append("campaign " + ("PASSED" if self.ok else "FAILED"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": [vars(c) for c in self.cases],
            "clean": [vars(c) for c in self.clean],
        }


# ---------------------------------------------------------------------------
# Per-prediction dynamic validators.  Every run uses a freshly built
# bundle: the simulators mutate launch memory in place.
# ---------------------------------------------------------------------------

def _validate_preserve(builder, seed) -> tuple[bool, str, str]:
    bundle = builder(seed)
    run_functional(bundle.launch)
    run_functional(bundle.clean_launch)
    same = np.array_equal(_image(bundle.launch),
                          _image(bundle.clean_launch))
    return same, "preserved" if same else "image-changed", \
        "defect removal is semantics-preserving" if same else ""


def _validate_corrupt(builder, seed) -> tuple[bool, str, str]:
    bundle = builder(seed)
    run_functional(bundle.launch)
    run_functional(bundle.clean_launch)
    differs = not np.array_equal(_image(bundle.launch),
                                 _image(bundle.clean_launch))
    return differs, "corrupted" if differs else "not-manifested", \
        "output diverges from the intended computation" if differs else ""


def _validate_hang(builder, seed) -> tuple[bool, str, str]:
    bundle = builder(seed)
    try:
        _run_timing(bundle)
    except SimulationHang as exc:
        # The functional oracle must still terminate: serial warp
        # execution cannot deadlock on a skipped barrier.
        run_functional(builder(seed).launch)
        detail = f"hang ({exc.reason})"
        if builder(seed).program is not None:
            fallback = _run_timing(builder(seed), safe_mode=True)
            if fallback.stats.get("dac.fallbacks") < 1:
                return False, "no-fallback", detail
            detail += "; safe-mode fell back to baseline"
        return True, "hang", detail
    return False, "not-manifested", "simulation completed"


def _validate_mismatch(builder, seed) -> tuple[bool, str, str]:
    timing = builder(seed)
    _run_timing(timing)
    oracle = builder(seed)
    run_functional(oracle.launch)
    differs = not np.array_equal(_image(timing.launch),
                                 _image(oracle.launch))
    return differs, "oracle-mismatch" if differs else "not-manifested", \
        "timing result depends on warp scheduling" if differs else ""


def _validate_misbehave(builder, seed) -> tuple[bool, str, str]:
    timing = builder(seed)
    try:
        _run_timing(timing)
    except SimulationHang as exc:
        return True, "hang", f"({exc.reason})"
    except (DecoupleRuntimeError, Exception) as exc:  # noqa: BLE001
        return True, "runtime-error", type(exc).__name__
    oracle = builder(seed)
    run_functional(oracle.launch)
    differs = not np.array_equal(_image(timing.launch),
                                 _image(oracle.launch))
    return differs, "oracle-mismatch" if differs else "not-manifested", ""


def _validate_throttle(builder, seed) -> tuple[bool, str, str]:
    timing = builder(seed)
    _run_timing(timing)
    oracle = builder(seed)
    run_functional(oracle.launch)
    same = np.array_equal(_image(timing.launch), _image(oracle.launch))
    return same, "completed-correctly" if same else "oracle-mismatch", \
        "back-pressure throttles but does not corrupt" if same else ""


_VALIDATORS = {
    "preserve": _validate_preserve,
    "corrupt": _validate_corrupt,
    "hang": _validate_hang,
    "mismatch": _validate_mismatch,
    "misbehave": _validate_misbehave,
    "throttle": _validate_throttle,
}


def run_case(code: str, seed: int) -> CaseResult:
    builder, prediction = DEFECTS[code]
    bundle = builder(seed)
    report = _lint(bundle)
    lint_fired = code in report.codes()
    try:
        dynamic_ok, outcome, detail = _VALIDATORS[prediction](builder, seed)
    except Exception as exc:  # noqa: BLE001 — campaign must finish
        dynamic_ok, outcome, detail = False, "error", \
            f"{type(exc).__name__}: {exc}"
    return CaseResult(name=bundle.name, code=code, prediction=prediction,
                      lint_fired=lint_fired, dynamic_ok=dynamic_ok,
                      outcome=outcome, detail=detail)


def run_clean_case(seed: int) -> CleanResult:
    bundle = clean_bundle(seed)
    report = lint_launch(bundle.launch, bundle.config)
    silent = not report.diagnostics
    timing = clean_bundle(seed)
    simulate(timing.launch, timing.config)
    oracle = clean_bundle(seed)
    run_functional(oracle.launch)
    match = np.array_equal(_image(timing.launch), _image(oracle.launch))
    return CleanResult(name=bundle.name, silent=silent, oracle_match=match)


def run_campaign(seeds=range(3), clean_seeds=range(10),
                 codes=None) -> LintCampaignReport:
    """Validate every diagnostic class over ``seeds`` and the clean corpus
    over ``clean_seeds``."""
    report = LintCampaignReport()
    for code in sorted(codes or DEFECTS):
        for seed in seeds:
            report.cases.append(run_case(code, seed))
    for seed in clean_seeds:
        report.clean.append(run_clean_case(seed))
    return report
