"""Backward liveness over the kernel CFG, at instruction granularity.

The complement of :class:`~repro.compiler.dataflow.ReachingDefs`: a register
is *live* after an instruction if some path to exit reads it before writing
it.  Guarded writes (``@p mov x, ...``) do not kill — the old value survives
in the threads where the guard is false — which keeps the dead-code pass
from declaring partial definitions removable.

``ignore`` marks instruction indices to treat as deleted, so the dead-code
pass can iterate: once ``add r1, r0, 1`` is known dead, its use of ``r0`` no
longer keeps ``r0``'s definition alive.
"""

from __future__ import annotations

from collections import defaultdict

from ..isa import Kernel
from ..compiler.cfg import CFG


class Liveness:
    """Live-register sets per instruction (names, not operand objects)."""

    def __init__(self, kernel: Kernel, cfg: CFG,
                 ignore: frozenset[int] | set[int] = frozenset()):
        self.kernel = kernel
        self.cfg = cfg
        self.ignore = frozenset(ignore)
        self._live_out: list[frozenset[str]] = \
            [frozenset()] * len(kernel.instructions)
        self._solve()

    def _uses_defs(self, idx: int) -> tuple[set[str], set[str]]:
        inst = self.kernel.instructions[idx]
        if idx in self.ignore:
            return set(), set()
        uses = {op.name for op in inst.read_regs()}
        # A guarded write merges with the old value: not a full kill.
        defs = (set() if inst.guard is not None
                else {op.name for op in inst.written_regs()})
        return uses, defs

    def _solve(self) -> None:
        blocks = self.cfg.blocks
        block_in: dict[int, frozenset[str]] = defaultdict(frozenset)
        block_out: dict[int, frozenset[str]] = defaultdict(frozenset)
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set[str] = set()
                for succ in block.successors:
                    out |= block_in[succ]
                live = set(out)
                for idx in range(block.end - 1, block.start - 1, -1):
                    uses, defs = self._uses_defs(idx)
                    live -= defs
                    live |= uses
                new_in = frozenset(live)
                new_out = frozenset(out)
                if new_in != block_in[block.index] or \
                        new_out != block_out[block.index]:
                    block_in[block.index] = new_in
                    block_out[block.index] = new_out
                    changed = True
        # Per-instruction live-out from the converged block sets.
        for block in blocks:
            live = set(block_out[block.index])
            for idx in range(block.end - 1, block.start - 1, -1):
                self._live_out[idx] = frozenset(live)
                uses, defs = self._uses_defs(idx)
                live -= defs
                live |= uses

    def live_out(self, inst_index: int) -> frozenset[str]:
        return self._live_out[inst_index]
