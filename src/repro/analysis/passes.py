"""The six lint passes.

Each pass is a function from a :class:`LintContext` (or a decoupled
program) to a list of :class:`~repro.analysis.diagnostics.Diagnostic`.
All passes are *read-only*: they build their own analyses over the kernel
and never mutate it — a property the test suite checks with hypothesis.

Conservatism policy: error-severity codes fire only on *proofs* (a barrier
under a provably thread-divergent branch, a dequeue with no enqueue);
warning codes may use heuristics but are tuned so the 29 shipped workloads
stay quiet.  Anything the abstract domains cannot track (non-linear
addresses, data-dependent guards) is skipped, not guessed at.
"""

from __future__ import annotations

import networkx as nx

from ..config import GPUConfig
from ..isa import Kernel, MemSpace, Opcode, PredReg
from ..compiler.affine_analysis import AffineAnalysis
from ..compiler.decouple import DecoupledProgram
from ..compiler.verifier import _deq_tokens
from ..sim.launch import WORD, KernelLaunch
from .diagnostics import Diagnostic, make_diagnostic
from .liveness import Liveness
from .ranges import (
    TOP,
    LinearValues,
    geometry_bindings,
    global_thread_form,
    thread_spans,
)
from .uniformity import Uniformity


class LintContext:
    """Shared lazily-built analyses for one kernel (and optional launch)."""

    def __init__(self, kernel: Kernel, launch: KernelLaunch | None = None,
                 config: GPUConfig | None = None):
        self.kernel = kernel
        self.launch = launch
        self.config = config or GPUConfig()
        self._analysis: AffineAnalysis | None = None
        self._uniformity: Uniformity | None = None
        self._linear: LinearValues | None = None

    @property
    def analysis(self) -> AffineAnalysis:
        if self._analysis is None:
            self._analysis = AffineAnalysis(self.kernel)
        return self._analysis

    @property
    def cfg(self):
        return self.analysis.cfg

    @property
    def reaching(self):
        return self.analysis.reaching

    @property
    def uniformity(self) -> Uniformity:
        if self._uniformity is None:
            self._uniformity = Uniformity(self.kernel, self.analysis)
        return self._uniformity

    @property
    def linear(self) -> LinearValues:
        if self._linear is None:
            bindings = {}
            if self.launch is not None:
                bindings = geometry_bindings(self.launch.grid_dim,
                                             self.launch.block_dim)
            self._linear = LinearValues(self.kernel, self.reaching, bindings)
        return self._linear

    def divergent_context(self, inst_index: int) -> bool:
        """Guarded, or control-dependent on a non-uniform branch — i.e. the
        instruction may execute in only a subset of the CTA's threads."""
        inst = self.kernel.instructions[inst_index]
        if inst.guard is not None:
            return True
        return any(not self.uniformity.branch_uniform(b)
                   for b in self.analysis.control_deps.get(inst_index, ()))


def _loc(kernel: Kernel, index: int) -> str:
    inst = kernel.instructions[index]
    line = "" if inst.source_line is None else f" (line {inst.source_line})"
    return f"{kernel.name}[{index}]{line}"


# ---------------------------------------------------------------------------
# Pass 1: dead code / unused definitions (RPL001)
# ---------------------------------------------------------------------------

def dead_code_pass(ctx: LintContext) -> list[Diagnostic]:
    kernel, cfg = ctx.kernel, ctx.cfg
    removable: set[int] = set()
    while True:
        live = Liveness(kernel, cfg, ignore=removable)
        grown = set(removable)
        for idx, inst in enumerate(kernel.instructions):
            if idx in removable or not inst.written_regs():
                continue
            if inst.is_memory or inst.is_enq:
                continue        # the access / enqueue is an effect
            if all(r.name not in live.live_out(idx)
                   for r in inst.written_regs()):
                grown.add(idx)
        if grown == removable:
            break
        removable = grown

    diags = []
    for idx in sorted(removable):
        inst = kernel.instructions[idx]
        regs = ", ".join(sorted({r.name for r in inst.written_regs()}))
        diags.append(make_diagnostic(
            "RPL001", f"dead code: value of {regs} is never used "
            f"({inst})", kernel, idx))
    # Loads whose result is never consumed: the access still happens (so
    # they are not removable and their address chain stays live), but the
    # definition is unused.
    live = Liveness(kernel, cfg, ignore=removable)
    for idx, inst in enumerate(kernel.instructions):
        if not inst.is_load or not inst.written_regs():
            continue
        if all(r.name not in live.live_out(idx)
               for r in inst.written_regs()):
            regs = ", ".join(sorted({r.name for r in inst.written_regs()}))
            diags.append(make_diagnostic(
                "RPL001", f"unused definition: loaded value {regs} is "
                f"never used ({inst})", kernel, idx))
    return diags


# ---------------------------------------------------------------------------
# Pass 2: uninitialized reads (RPL002 / RPL003)
# ---------------------------------------------------------------------------

class _MustAssigned:
    """Forward must-analysis: registers assigned on *every* path to a point.

    Unguarded writes always count.  With ``accept_sig=(name, negated)``,
    writes guarded by that exact predicate signature count too — used to
    accept the predicated idiom ``@p ld t; @p add u, t, ...``, where any
    thread reaching the use with ``p`` true also executed the definition
    (valid as long as ``p`` is not recomputed in between; the caller
    restricts this to single-definition predicates).
    """

    def __init__(self, kernel: Kernel, cfg,
                 accept_sig: tuple[str, bool] | None = None):
        self.kernel = kernel
        self.cfg = cfg
        self.accept_sig = accept_sig
        self._block_in: dict[int, frozenset[str] | None] = \
            {b.index: None for b in cfg.blocks}
        self._solve()

    def _counts(self, inst) -> bool:
        if inst.guard is None:
            return True
        return self.accept_sig is not None \
            and isinstance(inst.guard, PredReg) \
            and (inst.guard.name, inst.guard_negated) == self.accept_sig

    def _block_gen(self, block) -> set[str]:
        gen: set[str] = set()
        for idx in range(block.start, block.end):
            inst = self.kernel.instructions[idx]
            if self._counts(inst):
                gen |= {r.name for r in inst.written_regs()}
        return gen

    def _solve(self) -> None:
        order = self.cfg.reverse_postorder()
        self._block_in[0] = frozenset()
        gens = {b.index: self._block_gen(b) for b in self.cfg.blocks}
        changed = True
        while changed:
            changed = False
            for bid in order:
                block = self.cfg.blocks[bid]
                if block.predecessors:
                    preds = [self._block_in[p] | frozenset(gens[p])
                             for p in block.predecessors
                             if self._block_in[p] is not None]
                    if not preds:
                        continue       # unreachable so far
                    new_in = frozenset.intersection(*preds)
                    if bid == 0:
                        new_in = frozenset()   # entry: nothing pre-assigned
                else:
                    new_in = frozenset() if bid == 0 else None
                if new_in != self._block_in[bid]:
                    self._block_in[bid] = new_in
                    changed = True

    def assigned_before(self, inst_index: int) -> frozenset[str]:
        block = self.cfg.block_of(inst_index)
        base = self._block_in[block.index]
        assigned = set(base) if base is not None else set()
        for idx in range(block.start, inst_index):
            inst = self.kernel.instructions[idx]
            if self._counts(inst):
                assigned |= {r.name for r in inst.written_regs()}
        return frozenset(assigned)


def uninit_pass(ctx: LintContext) -> list[Diagnostic]:
    kernel = ctx.kernel
    pred_def_count: dict[str, int] = {}
    for inst in kernel.instructions:
        for reg in inst.written_regs():
            if isinstance(reg, PredReg):
                pred_def_count[reg.name] = \
                    pred_def_count.get(reg.name, 0) + 1
    must_cache: dict[tuple[str, bool] | None, _MustAssigned] = {}

    def must_for(inst) -> _MustAssigned:
        sig = None
        if isinstance(inst.guard, PredReg) and \
                pred_def_count.get(inst.guard.name) == 1:
            sig = (inst.guard.name, inst.guard_negated)
        if sig not in must_cache:
            must_cache[sig] = _MustAssigned(kernel, ctx.cfg, accept_sig=sig)
        return must_cache[sig]

    diags = []
    for idx, inst in enumerate(kernel.instructions):
        assigned = None
        for op in dict.fromkeys(inst.read_regs()):
            defs = ctx.reaching.reaching(idx, op.name)
            if not defs:
                diags.append(make_diagnostic(
                    "RPL002", f"register {op.name} is read but has no "
                    f"reaching definition (evaluates as zero)", kernel, idx))
            else:
                if assigned is None:
                    assigned = must_for(inst).assigned_before(idx)
                if op.name not in assigned:
                    diags.append(make_diagnostic(
                        "RPL003", f"register {op.name} may be read before "
                        f"it is assigned", kernel, idx))
    return diags


# ---------------------------------------------------------------------------
# Pass 3: barrier divergence (RPL011 / RPL012)
# ---------------------------------------------------------------------------

def barrier_pass(ctx: LintContext) -> list[Diagnostic]:
    kernel = ctx.kernel
    analysis, unif = ctx.analysis, ctx.uniformity
    diags = []
    for idx, inst in enumerate(kernel.instructions):
        if not inst.is_barrier:
            continue
        for branch in sorted(analysis.control_deps.get(idx, ())):
            if unif.branch_uniform(branch):
                continue
            kind = analysis.branch_kind(branch)
            where = _loc(kernel, branch)
            if kind == "affine":
                # Provably thread-ID-divergent: some threads of the CTA
                # skip the barrier => the simulator's barrier never
                # releases (see sim/sm.py _do_barrier) and the kernel
                # hangs.
                diags.append(make_diagnostic(
                    "RPL011", f"barrier is control-dependent on the "
                    f"thread-divergent branch at {where}; threads that "
                    f"skip it deadlock the CTA", kernel, idx))
            else:
                diags.append(make_diagnostic(
                    "RPL012", f"barrier is control-dependent on the "
                    f"data-dependent branch at {where}; divergence "
                    f"cannot be ruled out", kernel, idx))
    return diags


# ---------------------------------------------------------------------------
# Pass 4: warp-granularity races (RPL021 / RPL022)
# ---------------------------------------------------------------------------

def _barrier_free_path(ctx: LintContext, i: int, j: int) -> bool:
    """Can execution reach instruction ``j`` after ``i`` without crossing a
    barrier?  (Same-block fallthrough, or a CFG path through barrier-free
    blocks.)"""
    kernel, cfg = ctx.kernel, ctx.cfg
    insts = kernel.instructions

    def has_barrier(lo: int, hi: int) -> bool:
        return any(insts[k].is_barrier for k in range(lo, hi))

    bi, bj = cfg.block_of(i), cfg.block_of(j)
    if bi.index == bj.index and i < j and not has_barrier(i + 1, j):
        return True
    if has_barrier(i + 1, bi.end) or has_barrier(bj.start, j):
        return False
    barrier_blocks = {b.index for b in cfg.blocks
                      if has_barrier(b.start, b.end)}
    stack = list(bi.successors)
    seen: set[int] = set()
    while stack:
        b = stack.pop()
        if b == bj.index:
            return True
        if b in seen or b in barrier_blocks:
            continue
        seen.add(b)
        stack.extend(cfg.blocks[b].successors)
    return False


def race_pass(ctx: LintContext) -> list[Diagnostic]:
    launch = ctx.launch
    if launch is None:
        return []
    kernel = ctx.kernel
    total_threads = launch.threads_per_block * launch.num_blocks
    if total_threads <= 1:
        return []
    lin, unif = ctx.linear, ctx.uniformity
    diags = []

    accesses = []       # (idx, inst, stride, rest: Linear)
    for idx, inst in enumerate(kernel.instructions):
        if not inst.is_memory:
            continue
        addr = lin.address_value(idx)
        if addr is TOP:
            continue
        form = global_thread_form(addr, launch.block_dim[0])
        if form is None:
            continue
        accesses.append((idx, inst) + form)

    # RPL021: every thread stores a thread-varying value to one location.
    for idx, inst, stride, _rest in accesses:
        if inst.opcode is not Opcode.ST or stride != 0:
            continue
        if ctx.divergent_context(idx):
            continue        # a mask may single out one thread
        if unif.use_uniform(idx, inst.srcs[0]):
            continue        # uniform broadcast: rendezvous is benign
        diags.append(make_diagnostic(
            "RPL021", f"all {total_threads} threads store a "
            f"thread-varying value to the same address ({inst}); the "
            f"surviving value depends on warp scheduling", kernel, idx))

    # RPL022: distinct threads touch the same location with no barrier
    # in between (equal non-zero stride, same symbolic base, constant
    # offset delta that is a whole number of elements).
    for a in range(len(accesses)):
        i, inst_i, s_i, rest_i = accesses[a]
        for b in range(a + 1, len(accesses)):
            j, inst_j, s_j, rest_j = accesses[b]
            if not (inst_i.is_store or inst_j.is_store):
                continue
            if inst_i.opcode is Opcode.ATOM and \
                    inst_j.opcode is Opcode.ATOM:
                continue        # atomic add commutes with itself
            if inst_i.space is not inst_j.space:
                continue
            if s_i != s_j or s_i == 0:
                continue
            if rest_i.terms != rest_j.terms:
                continue        # different symbolic base arrays
            delta = rest_j.const - rest_i.const
            if delta == 0 or delta % s_i:
                continue        # same thread, or never aliasing
            if abs(delta / s_i) >= total_threads:
                continue
            if _barrier_free_path(ctx, i, j) or \
                    _barrier_free_path(ctx, j, i):
                threads = int(abs(delta / s_i))
                diags.append(make_diagnostic(
                    "RPL022", f"threads {threads} apart access the same "
                    f"location as {_loc(kernel, j)} with no intervening "
                    f"barrier", kernel, i))
    return diags


# ---------------------------------------------------------------------------
# Pass 5: queue pressure and pairing (RPL031-RPL034)
# ---------------------------------------------------------------------------

_MEM_KINDS = ("data", "addr")


def _interval_pressure(kernel: Kernel, cfg, kinds) -> int:
    """Max enqueues of the given kinds along any barrier-free path.

    Loops are approximated by one iteration (each strongly-connected
    component counts once): in-flight entries are what matters, and the
    consumer drains within an iteration.
    """
    insts = kernel.instructions
    of_kind = {Opcode.ENQ_DATA: "data", Opcode.ENQ_ADDR: "addr",
               Opcode.ENQ_PRED: "pred"}
    g = nx.DiGraph()
    seg_weight: dict[tuple[int, int], int] = {}
    first_seg: dict[int, tuple[int, int]] = {}
    last_seg: dict[int, tuple[int, int]] = {}
    for block in cfg.blocks:
        seg_no, weight = 0, 0
        first_seg[block.index] = (block.index, 0)
        for idx in range(block.start, block.end):
            inst = insts[idx]
            if inst.is_barrier:
                seg_weight[(block.index, seg_no)] = weight
                g.add_node((block.index, seg_no))
                seg_no += 1
                weight = 0      # a barrier drains the interval
            elif inst.is_enq and of_kind[inst.opcode] in kinds:
                weight += 1
        seg_weight[(block.index, seg_no)] = weight
        g.add_node((block.index, seg_no))
        last_seg[block.index] = (block.index, seg_no)
    for block in cfg.blocks:
        for succ in block.successors:
            g.add_edge(last_seg[block.index], first_seg[succ])
    cond = nx.condensation(g)
    best: dict[int, int] = {}
    peak = 0
    for node in nx.topological_sort(cond):
        members = cond.nodes[node]["members"]
        weight = sum(seg_weight[m] for m in members)
        incoming = max((best[p] for p in cond.predecessors(node)),
                       default=0)
        best[node] = incoming + weight
        peak = max(peak, best[node])
    return peak


def queue_pass(program: DecoupledProgram,
               config: GPUConfig | None = None) -> list[Diagnostic]:
    config = config or GPUConfig()
    if not program.is_decoupled:
        return []
    dac = config.dac
    diags = []

    enq_at: dict[int, int] = {}         # queue id -> affine inst index
    enq_kind: dict[int, str] = {}
    of_kind = {Opcode.ENQ_DATA: "data", Opcode.ENQ_ADDR: "addr",
               Opcode.ENQ_PRED: "pred"}
    for idx, inst in enumerate(program.affine.instructions):
        if inst.is_enq:
            enq_at[inst.queue_id] = idx
            enq_kind[inst.queue_id] = of_kind[inst.opcode]
    deq_at: dict[int, int] = {}
    deq_kind: dict[int, str] = {}
    for idx, inst in enumerate(program.nonaffine.instructions):
        for token in _deq_tokens(inst):
            deq_at[token.queue_id] = idx
            deq_kind[token.queue_id] = token.kind

    for qid in sorted(set(deq_at) - set(enq_at)):
        diags.append(make_diagnostic(
            "RPL031", f"dequeue from queue {qid} has no matching enqueue "
            f"in the affine stream; the consumer warp starves and the "
            f"simulation hangs", program.nonaffine, deq_at[qid]))
    for qid in sorted(set(enq_at) - set(deq_at)):
        diags.append(make_diagnostic(
            "RPL032", f"enqueue to queue {qid} is never dequeued by the "
            f"non-affine stream; entries leak until the queue is "
            f"permanently full", program.affine, enq_at[qid]))

    kinds_used = set(enq_kind.values()) | set(deq_kind.values())
    atq_mem = dac.atq_entries // 2
    atq_pred = dac.atq_entries - atq_mem
    uses_mem = bool(kinds_used & set(_MEM_KINDS))
    uses_pred = "pred" in kinds_used
    if uses_mem and atq_mem == 0:
        first = min(i for q, i in enq_at.items()
                    if enq_kind[q] in _MEM_KINDS)
        diags.append(make_diagnostic(
            "RPL033", f"memory tuples are enqueued but the ATQ memory "
            f"partition has zero entries (atq_entries="
            f"{dac.atq_entries}); the affine warp can never make "
            f"progress", program.affine, first))
    if uses_pred and atq_pred == 0:
        first = min(i for q, i in enq_at.items() if enq_kind[q] == "pred")
        diags.append(make_diagnostic(
            "RPL033", f"predicate tuples are enqueued but the ATQ "
            f"predicate partition has zero entries (atq_entries="
            f"{dac.atq_entries})", program.affine, first))

    cfg = AffineAnalysis(program.affine).cfg
    for kinds, cap, label in ((set(_MEM_KINDS), atq_mem, "memory"),
                              ({"pred"}, atq_pred, "predicate")):
        if not kinds_used & kinds or cap == 0:
            continue
        pressure = _interval_pressure(program.affine, cfg, kinds)
        if pressure > cap:
            diags.append(make_diagnostic(
                "RPL034", f"up to {pressure} {label} tuples can be "
                f"in flight between barriers but the ATQ {label} "
                f"partition holds {cap}; the affine warp will stall on "
                f"back-pressure", program.affine, None))
    return diags


# ---------------------------------------------------------------------------
# Pass 6: value-range / bounds analysis (RPL041 / RPL042)
# ---------------------------------------------------------------------------

def bounds_pass(ctx: LintContext) -> list[Diagnostic]:
    launch = ctx.launch
    if launch is None:
        return []
    kernel, lin = ctx.kernel, ctx.linear
    spans = thread_spans(launch.grid_dim, launch.block_dim)
    bindings = {f"param:{name}": float(value)
                for name, value in launch.params.items()}
    memory = launch.memory
    allocations = getattr(memory, "allocations", {})
    diags = []
    for idx, inst in enumerate(kernel.instructions):
        if not inst.is_memory or inst.space is MemSpace.SHARED:
            continue
        addr = lin.address_value(idx)
        if addr is TOP:
            continue
        if ctx.divergent_context(idx):
            continue        # a guard may clip the executed range
        param_terms = [(s, c) for s, c in addr.terms
                       if s.startswith("param:")]
        numeric = addr.substitute(bindings)
        interval = numeric.interval(spans)
        if interval is None:
            continue
        lo, hi = interval
        if lo < 0 or hi + WORD > memory.size_bytes:
            diags.append(make_diagnostic(
                "RPL041", f"address range [{lo:g}, {hi + WORD - 1:g}] "
                f"falls outside device memory "
                f"(size {memory.size_bytes})", kernel, idx))
            continue
        if len(param_terms) == 1 and param_terms[0][1] == 1.0:
            pname = param_terms[0][0][len("param:"):]
            base = float(launch.params[pname])
            extent = allocations.get(int(base))
            if extent is None:
                continue
            if lo < base or hi + WORD > base + extent:
                diags.append(make_diagnostic(
                    "RPL042", f"indexing reaches [{lo - base:g}, "
                    f"{hi - base + WORD - 1:g}] relative to param "
                    f"{pname}, beyond its {extent}-byte allocation",
                    kernel, idx))
    return diags
