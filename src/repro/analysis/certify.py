"""Translation validation of the decoupling compiler.

:func:`certify_program` independently proves that a
:class:`~repro.compiler.decouple.DecoupledProgram` *means* the same thing
as the kernel it was compiled from — the §4.7 obligation the structural
verifier cannot discharge.  Both the affine stream and the original
kernel are symbolically executed (:mod:`repro.analysis.symexec`) and four
families of facts are compared per queue:

* **payload** — the ENQ operand's closed form equals the original
  address (loads/stores) or predicate (setp) closed form;
* **guard** — the canonical guard predicates agree;
* **path** — the canonical path conditions under which the two sites
  execute agree;
* **loops** — the sites sit in the same loops (by head label), and each
  shared loop's continue condition agrees, so per-iteration closed forms
  range over the same iteration space.

Equality is *decided* only on proof-grade closed forms: any ``load``,
``deq``, or ``opaque`` atom in an obligation makes it unprovable and the
certifier reports an error rather than trusting congruence over
state-dependent terms (imprecision can cause a false alarm, never a
false proof).  The non-affine stream is checked structurally against the
original *modulo decoupled definitions*: every surviving instruction is
field-identical or the canonical DEQ replacement, and every removed
instruction is effect-free and feeds no surviving read.

Findings surface as RPL05x diagnostics:

* ``RPL050`` — structural verification failed (wraps
  :func:`repro.compiler.verifier.verify`);
* ``RPL051`` — the compiler's own eligibility recompute names an access
  it did not decouple whose closed form we can certify (missed
  optimization, warning);
* ``RPL052`` — a decoupled access is not provably equivalent
  (soundness error);
* ``RPL053`` — the disagreement is loop-carried (induction variables,
  trip counts, or loop contexts differ);
* ``RPL054`` — the disagreement vanishes when ``rem`` (mod-type)
  structure is stripped, i.e. a mod-tuple misclassification.
"""

from __future__ import annotations

from ..compiler.decouple import DecoupledProgram, Decoupler, decouple
from ..compiler.verifier import verify
from ..isa import DeqToken, Kernel, Opcode
from .diagnostics import LintReport, make_diagnostic
from .symexec import (
    Atom,
    Pred,
    SymExpr,
    SymbolicKernel,
    atoms_of,
    from_atom,
    symbols_of,
    symexec,
    uncertifiable_kinds,
)

__all__ = ["certify_program", "certify_kernel"]


# ---------------------------------------------------------------------------
# Obligation helpers.
# ---------------------------------------------------------------------------

def _strip_mods(x):
    """Replace every ``rem`` atom by its dividend, recursively.  If two
    closed forms agree after stripping but not before, the defect is in
    mod-type handling (RPL054)."""
    if isinstance(x, SymExpr):
        out = None
        for m, c in x.terms:
            factor = SymExpr((((), c),)) if c != 0.0 else SymExpr(())
            for s in m:
                if isinstance(s, Atom):
                    stripped = _strip_mods(s)
                    term = stripped if isinstance(stripped, SymExpr) \
                        else from_atom(stripped)
                else:
                    term = SymExpr((((s,), 1.0),))
                factor = factor * term
            out = factor if out is None else out + factor
        return out if out is not None else SymExpr(())
    if isinstance(x, Atom):
        if x.kind == "rem":
            return _strip_mods(x.args[0])
        return Atom(x.kind, tuple(_strip_mods(a) for a in x.args))
    if isinstance(x, Pred):
        return Pred(x.kind, tuple(_strip_mods(a) for a in x.payload))
    if isinstance(x, frozenset):
        return frozenset(_strip_mods(a) for a in x)
    if isinstance(x, tuple):
        return tuple(_strip_mods(a) for a in x)
    return x


def _has_rem(x) -> bool:
    return any(a.kind == "rem" for a in atoms_of(x))


def _loopish(x) -> bool:
    """Does a closed form involve loop state (induction symbols, trip
    counts, or loop-widening failures)?"""
    if any(s.startswith("iter:") for s in symbols_of(x)):
        return True
    for a in atoms_of(x):
        if a.kind == "exitcount":
            return True
        if a.kind == "opaque" and a.args and a.args[0] in ("loop", "break",
                                                           "infinite-loop"):
            return True
    return False


def _classify(obligations: list, loops_differ: bool) -> str:
    """Pick the RPL code for a failed proof from the failing obligations:
    ``obligations`` is a list of (label, lhs, rhs) that did not match."""
    if loops_differ:
        return "RPL053"
    mod_explains = bool(obligations)
    loop_marks = False
    for _label, lhs, rhs in obligations:
        if _strip_mods(lhs) != _strip_mods(rhs) or not (_has_rem(lhs)
                                                        or _has_rem(rhs)):
            mod_explains = False
        if _loopish(lhs) or _loopish(rhs):
            loop_marks = True
    if mod_explains:
        return "RPL054"
    if loop_marks:
        return "RPL053"
    return "RPL052"


def _proof_grade(*values) -> set[str]:
    bad: set[str] = set()
    for v in values:
        if v is not None:
            bad |= uncertifiable_kinds(v)
    return bad


def _fmt(x) -> str:
    s = repr(x)
    return s if len(s) <= 120 else s[:117] + "..."


# ---------------------------------------------------------------------------
# Affine-stream obligations.
# ---------------------------------------------------------------------------

def _loop_obligations(sym_orig: SymbolicKernel, sym_aff: SymbolicKernel,
                      orig_loops: tuple, aff_loops: tuple) -> list:
    """Continue-condition obligations for the loops shared by both sites
    (context mismatch itself is reported separately)."""
    out = []
    for name in orig_loops:
        if name not in aff_loops:
            continue
        lo = sym_orig.loops.get(name)
        la = sym_aff.loops.get(name)
        if lo is None or la is None or lo.cond is None or la.cond is None:
            out.append((f"loop {name} condition", lo.cond if lo else None,
                        la.cond if la else None))
        elif lo.cond != la.cond:
            out.append((f"loop {name} condition", lo.cond, la.cond))
    return out


def _certify_queue(report: LintReport, program: DecoupledProgram,
                   sym_orig: SymbolicKernel, sym_aff: SymbolicKernel,
                   aff_index: int, qid: int) -> None:
    orig_index = program.queue_origin[qid]
    enq = program.affine.instructions[aff_index]
    site_a = sym_aff.sites.get(aff_index)
    site_o = sym_orig.sites.get(orig_index)
    where = f"q{qid} ({enq.opcode.value} -> original index {orig_index})"
    if site_a is None or site_o is None:
        report.add(make_diagnostic(
            "RPL052", f"{where}: unreachable enqueue or original site",
            program.original, inst_index=orig_index))
        return
    if program.affine_origin and \
            program.affine_origin[aff_index] != orig_index:
        report.add(make_diagnostic(
            "RPL052",
            f"{where}: provenance mismatch (affine instruction derives "
            f"from index {program.affine_origin[aff_index]})",
            program.original, inst_index=orig_index))
        return

    failed: list = []
    if site_a.value != site_o.value:
        label = ("predicate" if enq.opcode is Opcode.ENQ_PRED
                 else "address")
        failed.append((label, site_o.value, site_a.value))
    guard_o = site_o.guard
    guard_a = site_a.guard
    if guard_o != guard_a:
        failed.append(("guard", guard_o, guard_a))
    if site_o.path != site_a.path:
        failed.append(("path condition", site_o.path, site_a.path))
    loops_differ = site_o.loops != site_a.loops
    failed.extend(_loop_obligations(sym_orig, sym_aff,
                                    site_o.loops, site_a.loops))

    opaque = _proof_grade(site_o.value, site_a.value, guard_o, guard_a,
                          site_o.path, site_a.path)
    if not failed and not loops_differ and not opaque:
        return                                  # proven equivalent
    if not failed and not loops_differ:
        code = "RPL053" if any(
            _loopish(v) for v in (site_o.value, site_a.value)) else "RPL052"
        report.add(make_diagnostic(
            code,
            f"{where}: closed forms contain unprovable terms "
            f"({', '.join(sorted(opaque))}); equivalence not certified",
            program.original, inst_index=orig_index))
        return
    code = _classify(failed, loops_differ)
    details = []
    if loops_differ:
        details.append(f"loop context {site_o.loops} vs {site_a.loops}")
    for label, lhs, rhs in failed:
        details.append(f"{label}: original {_fmt(lhs)} != affine {_fmt(rhs)}")
    report.add(make_diagnostic(
        code, f"{where}: " + "; ".join(details),
        program.original, inst_index=orig_index))


# ---------------------------------------------------------------------------
# Non-affine stream: original modulo decoupled defs.
# ---------------------------------------------------------------------------

def _signature(inst) -> tuple:
    return (inst.opcode, inst.dsts, inst.srcs, inst.guard,
            inst.guard_negated, inst.cmp, inst.space, inst.target,
            inst.dtype, inst.queue_id)


def _check_replacement(report: LintReport, program: DecoupledProgram,
                       orig_index: int, kind: str, qid: int) -> None:
    orig = program.original.instructions[orig_index]
    kept = dict(zip(program.nonaffine_origin,
                    program.nonaffine.instructions))
    repl = kept.get(orig_index)
    where = f"q{qid} non-affine replacement at original index {orig_index}"
    if repl is None:
        report.add(make_diagnostic(
            "RPL052", f"{where}: decoupled instruction missing from the "
            "non-affine stream", program.original, inst_index=orig_index))
        return
    ok = (repl.guard == orig.guard
          and repl.guard_negated == orig.guard_negated)
    if kind == "data":
        ok = ok and repl.opcode is orig.opcode and repl.dsts == orig.dsts \
            and repl.srcs == (DeqToken("data", qid),) \
            and repl.space is orig.space
    elif kind == "addr":
        ok = ok and repl.opcode is orig.opcode \
            and repl.dsts == (DeqToken("addr", qid),) \
            and repl.srcs == orig.srcs and repl.space is orig.space
    else:                                       # pred
        ok = ok and repl.opcode is Opcode.MOV and repl.dsts == orig.dsts \
            and repl.srcs == (DeqToken("pred", qid),)
    if not ok:
        report.add(make_diagnostic(
            "RPL052", f"{where}: not the canonical deq form of the "
            f"original {orig.opcode.value}", program.original,
            inst_index=orig_index))


def _check_nonaffine(report: LintReport,
                     program: DecoupledProgram) -> None:
    insts = program.original.instructions
    if len(program.nonaffine_origin) != len(program.nonaffine):
        report.add(make_diagnostic(
            "RPL052", "non-affine provenance does not cover the stream",
            program.original))
        return
    kept = dict(zip(program.nonaffine_origin,
                    program.nonaffine.instructions))
    replaced = {idx: qid for qid, idx in program.queue_origin.items()}

    for orig_index, qid in sorted(replaced.items()):
        orig = insts[orig_index]
        kind = ("pred" if orig.opcode is Opcode.SETP
                else "data" if orig.is_load else "addr")
        _check_replacement(report, program, orig_index, kind, qid)

    for idx, inst in enumerate(insts):
        if idx in kept:
            if idx in replaced:
                continue
            if _signature(kept[idx]) != _signature(inst):
                report.add(make_diagnostic(
                    "RPL052",
                    f"non-affine instruction at original index {idx} "
                    f"was altered ({inst.opcode.value})",
                    program.original, inst_index=idx))
            continue
        # Removed: must be effect-free ...
        if inst.is_memory and not inst.is_load or inst.is_barrier \
                or inst.is_exit or inst.is_branch:
            report.add(make_diagnostic(
                "RPL052",
                f"effectful {inst.opcode.value} at original index {idx} "
                "was removed from the non-affine stream",
                program.original, inst_index=idx))
            continue
        # ... and feed no surviving read.
        written = {r.name for r in inst.written_regs()}
        if not written:
            continue
        reaching = program.analysis.reaching
        for kidx, kinst in kept.items():
            needed = {r.name for r in kinst.read_regs()}
            if kinst.guard is not None:
                needed |= {r.name for r in kinst.written_regs()}
            for name in needed & written:
                if idx in reaching.reaching(kidx, name):
                    report.add(make_diagnostic(
                        "RPL052",
                        f"removed definition at original index {idx} "
                        f"({inst.opcode.value} {name}) still reaches the "
                        f"surviving instruction at index {kidx}",
                        program.original, inst_index=idx))
                    break
            else:
                continue
            break


# ---------------------------------------------------------------------------
# Missed-optimization scan (RPL051).
# ---------------------------------------------------------------------------

def _scan_missed(report: LintReport, program: DecoupledProgram,
                 sym_orig: SymbolicKernel) -> None:
    decoupler = Decoupler(program.original)
    candidates = decoupler.candidate_map()
    decoupled = set(program.queue_origin.values())
    for idx in sorted(set(candidates) - decoupled):
        site = sym_orig.sites.get(idx)
        if site is None:
            continue
        if _proof_grade(site.value, site.guard, site.path):
            continue                            # not provable; stay quiet
        inst = program.original.instructions[idx]
        report.add(make_diagnostic(
            "RPL051",
            f"{inst.opcode.value} at index {idx} is provably affine "
            f"({candidates[idx]} queue candidate) but was not decoupled",
            program.original, inst_index=idx))


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------

def certify_program(program: DecoupledProgram) -> LintReport:
    """Certify one decoupled program; findings are RPL05x diagnostics.
    An empty report is a machine-checked proof that every queue's tuples
    reproduce the original addresses/predicates for all launches."""
    report = LintReport()
    structural = verify(program, semantic=False)
    for err in structural.errors:
        report.add(make_diagnostic("RPL050", err, program.original))
    if not program.is_decoupled:
        return report.finalize()

    sym_orig = symexec(program.original)
    sym_aff = symexec(program.affine)

    enq_by_qid: dict[int, int] = {}
    for j, inst in enumerate(program.affine.instructions):
        if inst.is_enq and inst.queue_id is not None:
            enq_by_qid.setdefault(inst.queue_id, j)
    for qid in sorted(program.queue_origin):
        if qid not in enq_by_qid:
            continue                            # RPL050 already covers it
        _certify_queue(report, program, sym_orig, sym_aff,
                       enq_by_qid[qid], qid)

    _check_nonaffine(report, program)
    _scan_missed(report, program, sym_orig)
    return report.finalize()


def certify_kernel(kernel: Kernel) -> tuple[LintReport, DecoupledProgram]:
    """Decouple a kernel and certify the result."""
    program = decouple(kernel)
    return certify_program(program), program
