"""Linear-expression abstract domain for race and bounds analysis.

Where :class:`~repro.compiler.affine_analysis.AffineAnalysis` only tracks a
three-point lattice (scalar / affine / non-affine), the race and bounds
passes need the actual linear form of an address:

    addr = c + sum(coeff_s * s)   over symbols s

Symbols are kernel parameters (``param:A``), thread-geometry registers
(``%tid.x``, ``%ctaid.x``, ...), and nothing else.  Any value the transfer
functions cannot keep linear (loads, products of two non-constants,
divergent merges) collapses to :data:`TOP`.

The fixpoint mirrors ``AffineAnalysis._classify``: every definition starts
at the bottom (``None`` = not yet computed), transfer functions recompute
from reaching definitions, and joins of unequal expressions go to TOP, so
loop-varying values degrade gracefully instead of iterating forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import (
    Immediate,
    Instruction,
    Kernel,
    MemRef,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
)
from ..compiler.dataflow import ReachingDefs


class _Top:
    """Unknown / nonlinear value."""

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()


@dataclass(frozen=True)
class Linear:
    """``const + sum(coeff * symbol)`` with a canonical term tuple."""

    const: float
    terms: tuple[tuple[str, float], ...] = ()

    @staticmethod
    def constant(value: float) -> "Linear":
        return Linear(float(value))

    @staticmethod
    def symbol(name: str, coeff: float = 1.0) -> "Linear":
        return Linear(0.0, ((name, float(coeff)),))

    def coeff(self, name: str) -> float:
        for sym, c in self.terms:
            if sym == name:
                return c
        return 0.0

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def add(self, other: "Linear") -> "Linear":
        coeffs = dict(self.terms)
        for sym, c in other.terms:
            coeffs[sym] = coeffs.get(sym, 0.0) + c
        terms = tuple(sorted((s, c) for s, c in coeffs.items() if c != 0.0))
        return Linear(self.const + other.const, terms)

    def scale(self, factor: float) -> "Linear":
        if factor == 0.0:
            return Linear.constant(0.0)
        return Linear(self.const * factor,
                      tuple((s, c * factor) for s, c in self.terms))

    def negate(self) -> "Linear":
        return self.scale(-1.0)

    def shift(self, delta: float) -> "Linear":
        return Linear(self.const + delta, self.terms)

    def substitute(self, bindings: dict[str, float]) -> "Linear":
        """Replace known symbols (e.g. ``%ntid.x`` with the block size)."""
        const = self.const
        keep: dict[str, float] = {}
        for sym, c in self.terms:
            if sym in bindings:
                const += c * bindings[sym]
            else:
                keep[sym] = keep.get(sym, 0.0) + c
        return Linear(const, tuple(sorted(keep.items())))

    def interval(self, spans: dict[str, tuple[float, float]]
                 ) -> tuple[float, float] | None:
        """Min/max over symbol ranges; ``None`` if a symbol is unbounded."""
        lo = hi = self.const
        for sym, c in self.terms:
            if sym not in spans:
                return None
            s_lo, s_hi = spans[sym]
            lo += c * (s_lo if c >= 0 else s_hi)
            hi += c * (s_hi if c >= 0 else s_lo)
        return lo, hi

    def __str__(self) -> str:
        parts = [f"{c:g}*{s}" for s, c in self.terms]
        if self.const or not parts:
            parts.append(f"{self.const:g}")
        return " + ".join(parts)


LinValue = Linear | _Top


def special_symbol(op: SpecialReg) -> str:
    return f"%{op.family}.{op.dim}"


def param_symbol(op: Param) -> str:
    return f"param:{op.name}"


def _leaf_value(op) -> LinValue | None:
    """Linear value of a non-register operand; None for registers."""
    if isinstance(op, Immediate):
        return Linear.constant(op.value)
    if isinstance(op, Param):
        return Linear.symbol(param_symbol(op))
    if isinstance(op, SpecialReg):
        return Linear.symbol(special_symbol(op))
    if isinstance(op, (Register, PredReg)):
        return None
    return TOP    # MemRef / DeqToken


def _join(a: LinValue | None, b: LinValue | None) -> LinValue:
    if a is None:
        return b if b is not None else TOP
    if b is None:
        return a
    if isinstance(a, Linear) and isinstance(b, Linear) and a == b:
        return a
    return TOP


class LinearValues:
    """Per-definition linear values for one kernel (fixpoint).

    ``bindings`` substitutes launch-constant symbols (``%ntid.x`` etc.) at
    the leaves, which is what lets ``mul r0, %ctaid.x, %ntid.x`` stay linear
    — without it a product of two symbols collapses to TOP.
    """

    def __init__(self, kernel: Kernel, reaching: ReachingDefs,
                 bindings: dict[str, float] | None = None):
        self.kernel = kernel
        self.reaching = reaching
        self.bindings = dict(bindings or {})
        #: def index -> Linear | TOP (only indices that write a register)
        self.def_value: dict[int, LinValue] = {}
        self._solve()

    # ---- value of an operand at a use site ---------------------------

    def use_value(self, inst_index: int, op) -> LinValue:
        leaf = _leaf_value(op)
        if isinstance(leaf, Linear):
            return leaf.substitute(self.bindings)
        if leaf is not None:
            return leaf
        if isinstance(op, PredReg):
            return TOP        # predicates carry bits, not addresses
        defs = self.reaching.reaching(inst_index, op.name)
        if not defs:
            return Linear.constant(0.0)    # read-before-write reads zero
        value: LinValue | None = None
        for d in sorted(defs):
            value = _join(value, self.def_value.get(d))
        return value if value is not None else TOP

    def address_value(self, inst_index: int) -> LinValue:
        """Linear form of a memory instruction's byte address."""
        ref = self.kernel.instructions[inst_index].mem_ref()
        if ref is None or not isinstance(ref, MemRef):
            return TOP
        base = self.use_value(inst_index, ref.address)
        if isinstance(base, Linear):
            return base.shift(float(ref.displacement))
        return TOP

    # ---- transfer functions ------------------------------------------

    def _transfer(self, idx: int, inst: Instruction) -> LinValue:
        op = inst.opcode
        vals = [self.use_value(idx, src) for src in inst.srcs]
        if any(v is TOP for v in vals):
            return TOP
        lin = [v for v in vals if isinstance(v, Linear)]
        if op is Opcode.MOV:
            return lin[0]
        if op is Opcode.ADD:
            return lin[0].add(lin[1])
        if op is Opcode.SUB:
            return lin[0].add(lin[1].negate())
        if op is Opcode.NEG:
            return lin[0].negate()
        if op is Opcode.MUL:
            if lin[1].is_constant:
                return lin[0].scale(lin[1].const)
            if lin[0].is_constant:
                return lin[1].scale(lin[0].const)
            return TOP
        if op is Opcode.MAD:                 # d = a*b + c
            a, b, c = lin
            if b.is_constant:
                return a.scale(b.const).add(c)
            if a.is_constant:
                return b.scale(a.const).add(c)
            return TOP
        if op is Opcode.SHL:
            if lin[1].is_constant:
                return lin[0].scale(float(2 ** int(lin[1].const)))
            return TOP
        return TOP

    def _solve(self) -> None:
        insts = self.kernel.instructions
        changed = True
        while changed:
            changed = False
            for idx, inst in enumerate(insts):
                if not inst.written_regs():
                    continue
                new = self._transfer(idx, inst)
                if isinstance(inst.guard, PredReg):
                    # Guarded write merges with prior definitions.
                    for dst in inst.written_regs():
                        for d in self.reaching.reaching(idx, dst.name):
                            new = _join(new, self.def_value.get(d))
                if new is not TOP and self.def_value.get(idx) is TOP:
                    continue    # monotone: never leave TOP
                if self.def_value.get(idx) != new:
                    self.def_value[idx] = new
                    changed = True


def thread_spans(grid_dim: tuple[int, int, int],
                 block_dim: tuple[int, int, int]
                 ) -> dict[str, tuple[float, float]]:
    """Symbol ranges for one launch geometry (inclusive bounds)."""
    spans: dict[str, tuple[float, float]] = {}
    for axis, (g, b) in zip("xyz", zip(grid_dim, block_dim)):
        spans[f"%tid.{axis}"] = (0.0, float(b - 1))
        spans[f"%ctaid.{axis}"] = (0.0, float(g - 1))
        spans[f"%ntid.{axis}"] = (float(b), float(b))
        spans[f"%nctaid.{axis}"] = (float(g), float(g))
    return spans


def geometry_bindings(grid_dim: tuple[int, int, int],
                      block_dim: tuple[int, int, int]) -> dict[str, float]:
    """Constant symbols of a launch: ``%ntid.*`` and ``%nctaid.*``."""
    out: dict[str, float] = {}
    for axis, (g, b) in zip("xyz", zip(grid_dim, block_dim)):
        out[f"%ntid.{axis}"] = float(b)
        out[f"%nctaid.{axis}"] = float(g)
    return out


def global_thread_form(value: Linear, block_dim_x: int
                       ) -> tuple[float, Linear] | None:
    """Rewrite ``value`` as ``stride * gtid_x + rest`` when possible.

    Requires the ``%ctaid.x`` coefficient to equal ``ntid.x`` times the
    ``%tid.x`` coefficient (the canonical ``ctaid*ntid + tid`` flattening)
    and no other thread-varying symbols.  ``rest`` contains only parameters
    and a constant.  Returns ``None`` when the value does not fit the form.
    """
    stride = value.coeff("%tid.x")
    if value.coeff("%ctaid.x") != stride * block_dim_x:
        return None
    rest_terms = []
    for sym, c in value.terms:
        if sym in ("%tid.x", "%ctaid.x"):
            continue
        if sym.startswith("%"):
            return None      # y/z or geometry symbol left over
        rest_terms.append((sym, c))
    return stride, Linear(value.const, tuple(sorted(rest_terms)))
