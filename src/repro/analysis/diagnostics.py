"""Diagnostic framework for the kernel lint subsystem.

Every finding is a :class:`Diagnostic` with a stable code (``RPL0xx``), a
severity, and a source location (kernel name, instruction index, and the
1-based source line threaded through the assembler/builder).  Codes are
grouped by decade:

======  ========  ===================================================
code    severity  meaning
======  ========  ===================================================
RPL001  warning   dead code / unused definition
RPL002  error     read of a register with no reaching definition
RPL003  warning   register may be read before it is assigned
RPL011  error     barrier under thread-divergent (affine) control
RPL012  warning   barrier under data-dependent control
RPL021  error     unguarded warp-uniform store of a varying value
RPL022  warning   cross-thread load/store overlap with no barrier
RPL031  error     dequeue with no matching enqueue (starvation hang)
RPL032  error     enqueue with no matching dequeue (queue leak)
RPL033  error     queue class used but configured with zero capacity
RPL034  warning   static queue pressure exceeds configured capacity
RPL041  error     access provably outside device memory
RPL042  warning   access beyond the parameter's allocation extent
RPL050  error     decoupled program fails structural verification
RPL051  warning   provably affine access the decoupler missed
RPL052  error     decoupled access not provably equivalent (soundness)
RPL053  error     loop-carried closed forms disagree across streams
RPL054  error     mod-type (rem) classification disagrees across streams
======  ========  ===================================================

The RPL05x family is emitted by the translation-validation certifier
(:mod:`repro.analysis.certify`), which symbolically executes the affine
stream against the original kernel and proves every ENQ tuple equivalent
to the original address/predicate closed form.

Severity semantics follow the CLI contract: errors make ``repro lint``
exit 1; ``--strict`` promotes warnings to the same fate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..isa import Kernel


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 0 if self is Severity.ERROR else 1


#: Stable registry: code -> (default severity, short title).
CODES: dict[str, tuple[Severity, str]] = {
    "RPL001": (Severity.WARNING, "dead code / unused definition"),
    "RPL002": (Severity.ERROR, "read of register with no reaching definition"),
    "RPL003": (Severity.WARNING, "register may be read before assignment"),
    "RPL011": (Severity.ERROR, "barrier under thread-divergent control"),
    "RPL012": (Severity.WARNING, "barrier under data-dependent control"),
    "RPL021": (Severity.ERROR, "unguarded warp-uniform store of varying value"),
    "RPL022": (Severity.WARNING, "cross-thread memory overlap without barrier"),
    "RPL031": (Severity.ERROR, "dequeue with no matching enqueue"),
    "RPL032": (Severity.ERROR, "enqueue with no matching dequeue"),
    "RPL033": (Severity.ERROR, "queue class used with zero capacity"),
    "RPL034": (Severity.WARNING, "static queue pressure exceeds capacity"),
    "RPL041": (Severity.ERROR, "access outside device memory"),
    "RPL042": (Severity.WARNING, "access beyond allocation extent"),
    "RPL050": (Severity.ERROR, "structural verification failure"),
    "RPL051": (Severity.WARNING, "provably affine access not decoupled"),
    "RPL052": (Severity.ERROR, "decoupled access not provably equivalent"),
    "RPL053": (Severity.ERROR, "loop-carried closed forms disagree"),
    "RPL054": (Severity.ERROR, "mod-type classification disagrees"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pointing at one instruction (or a whole kernel)."""

    code: str
    severity: Severity
    message: str
    kernel: str
    inst_index: int | None = None
    source_line: int | None = None

    @property
    def location(self) -> str:
        if self.inst_index is None:
            return self.kernel
        loc = f"{self.kernel}[{self.inst_index}]"
        if self.source_line is not None:
            loc += f" (line {self.source_line})"
        return loc

    def render(self) -> str:
        return (f"{self.location}: {self.code} "
                f"{self.severity.value}: {self.message}")

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "kernel": self.kernel,
            "inst_index": self.inst_index,
            "source_line": self.source_line,
        }

    def sort_key(self):
        return (self.kernel, self.inst_index if self.inst_index is not None
                else -1, self.code, self.message)


def make_diagnostic(code: str, message: str, kernel: Kernel | str,
                    inst_index: int | None = None) -> Diagnostic:
    """Build a diagnostic, pulling severity from the registry and the source
    line from the instruction (when an index is given)."""
    severity, _title = CODES[code]
    if isinstance(kernel, Kernel):
        line = None
        if inst_index is not None:
            line = kernel.instructions[inst_index].source_line
        return Diagnostic(code=code, severity=severity, message=message,
                          kernel=kernel.name, inst_index=inst_index,
                          source_line=line)
    return Diagnostic(code=code, severity=severity, message=message,
                      kernel=kernel, inst_index=inst_index)


@dataclass
class LintReport:
    """Aggregated findings for one kernel / launch / program."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    skipped_passes: list[str] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.skipped_passes.extend(other.skipped_passes)

    def finalize(self) -> "LintReport":
        """Deterministic order: by kernel, instruction, code."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        if strict:
            return not self.diagnostics
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        if not self.diagnostics:
            return "lint: clean"
        lines = [d.render() for d in self.diagnostics]
        lines.append(f"lint: {len(self.errors)} error(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "skipped_passes": list(self.skipped_passes),
        }
