"""Kernel lint subsystem: simulation-validated static diagnostics.

Static passes over kernels and decoupled programs, reusing the compiler's
CFG / dataflow / affine analyses, with stable ``RPL0xx`` diagnostic codes.
Every diagnostic class is validated dynamically by the campaign in
:mod:`repro.analysis.campaign`: seeded defects must both trip the lint and
exhibit the predicted simulator behavior (hang, oracle divergence, or DAC
safe-mode fallback), and a clean fuzz corpus must lint silently.

Entry points: :func:`lint_kernel`, :func:`lint_launch`,
:func:`lint_program`; CLI: ``python -m repro lint``.
"""

from .diagnostics import CODES, Diagnostic, LintReport, Severity
from .linter import lint_kernel, lint_launch, lint_program

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_kernel",
    "lint_launch",
    "lint_program",
]
