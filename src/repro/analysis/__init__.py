"""Kernel lint subsystem: simulation-validated static diagnostics.

Static passes over kernels and decoupled programs, reusing the compiler's
CFG / dataflow / affine analyses, with stable ``RPL0xx`` diagnostic codes.
Every diagnostic class is validated dynamically by the campaign in
:mod:`repro.analysis.campaign`: seeded defects must both trip the lint and
exhibit the predicted simulator behavior (hang, oracle divergence, or DAC
safe-mode fallback), and a clean fuzz corpus must lint silently.

The translation-validation layer lives alongside the lint passes:
:mod:`repro.analysis.symexec` symbolically executes kernels into affine
closed forms, :mod:`repro.analysis.certify` proves decoupled streams
equivalent to their source kernel (RPL05x), and
:mod:`repro.analysis.mutate` hammers that proof with seeded compiler
defects.  :mod:`repro.analysis.sarif` exports any report as SARIF 2.1.0.

Entry points: :func:`lint_kernel`, :func:`lint_launch`,
:func:`lint_program`, :func:`certify_kernel`, :func:`certify_program`,
:func:`run_mutation_campaign`; CLI: ``python -m repro lint`` and
``python -m repro certify``.
"""

from .certify import certify_kernel, certify_program
from .diagnostics import CODES, Diagnostic, LintReport, Severity
from .linter import lint_kernel, lint_launch, lint_program
from .mutate import MUTATORS, MutationReport, run_mutation_campaign
from .sarif import to_sarif, write_sarif
from .symexec import SymbolicKernel, symexec

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "MUTATORS",
    "MutationReport",
    "Severity",
    "SymbolicKernel",
    "certify_kernel",
    "certify_program",
    "lint_kernel",
    "lint_launch",
    "lint_program",
    "run_mutation_campaign",
    "symexec",
    "to_sarif",
    "write_sarif",
]
