"""CTA-level uniformity analysis.

A value is *uniform* when every thread of a CTA is guaranteed to compute the
same value for it.  This is the property barrier safety actually needs: a
branch guarded by a uniform predicate cannot split a CTA around a
``bar.sync``.  It is strictly coarser than the affine lattice's SCALAR
class: ``%ctaid.x`` is uniform (all threads of a CTA share it), and — under
the no-data-race assumption the rest of the lint enforces — so is a load
from a uniform address.

Like the other fixpoints here, definitions start optimistic (uniform) and
are demoted monotonically.
"""

from __future__ import annotations

from ..isa import (
    DeqToken,
    Immediate,
    Kernel,
    MemRef,
    Param,
    SpecialReg,
)
from ..compiler.affine_analysis import AffineAnalysis


class Uniformity:
    """Per-definition CTA-uniformity for one kernel."""

    def __init__(self, kernel: Kernel, analysis: AffineAnalysis):
        self.kernel = kernel
        self.analysis = analysis
        self.reaching = analysis.reaching
        #: def index -> bool (True = provably uniform across the CTA)
        self.def_uniform: dict[int, bool] = {}
        self._solve()

    def _leaf_uniform(self, op) -> bool | None:
        if isinstance(op, (Immediate, Param)):
            return True
        if isinstance(op, SpecialReg):
            # tid varies per thread; ntid/nctaid are launch constants and
            # ctaid is shared by the whole CTA (barriers are per-CTA).
            return op.family != "tid"
        if isinstance(op, DeqToken):
            return False
        if isinstance(op, MemRef):
            return None     # handled via the address operand
        return None         # Register / PredReg: from reaching defs

    def use_uniform(self, inst_index: int, op) -> bool:
        if isinstance(op, MemRef):
            return self.use_uniform(inst_index, op.address)
        leaf = self._leaf_uniform(op)
        if leaf is not None:
            return leaf
        defs = self.reaching.reaching(inst_index, op.name)
        if not defs:
            return True      # read-before-write: every thread reads zero
        return all(self.def_uniform.get(d, True) for d in defs)

    def _transfer(self, idx: int) -> bool:
        inst = self.kernel.instructions[idx]
        if any(isinstance(op, DeqToken) for op in inst.srcs + inst.dsts):
            return False
        if inst.is_load:
            # Uniform address => uniform value, assuming no data race on
            # the location (checked independently by the race pass).
            ref = inst.mem_ref()
            return ref is not None and self.use_uniform(idx, ref.address)
        if not all(self.use_uniform(idx, op) for op in inst.srcs):
            return False
        if inst.guard is not None:
            # A non-uniform guard makes the merge thread-dependent.
            if not self.use_uniform(idx, inst.guard):
                return False
            for dst in inst.written_regs():
                for d in self.reaching.reaching(idx, dst.name):
                    if not self.def_uniform.get(d, True):
                        return False
        # Execution under a divergent branch can also break uniformity:
        # only some threads update the register.
        for branch in self.analysis.control_deps.get(idx, ()):  # noqa: B007
            if not self.use_uniform(
                    branch, self.kernel.instructions[branch].guard):
                return False
        return True

    def _solve(self) -> None:
        insts = self.kernel.instructions
        for idx, inst in enumerate(insts):
            if inst.written_regs():
                self.def_uniform[idx] = True
        changed = True
        while changed:
            changed = False
            for idx in self.def_uniform:
                if not self.def_uniform[idx]:
                    continue       # monotone: never promoted back
                if not self._transfer(idx):
                    self.def_uniform[idx] = False
                    changed = True

    # ---- queries ------------------------------------------------------

    def branch_uniform(self, branch_index: int) -> bool:
        inst = self.kernel.instructions[branch_index]
        if inst.guard is None:
            return True
        return self.use_uniform(branch_index, inst.guard)
