"""Lint entry points: kernel, launch, and decoupled-program linting.

The driver composes the six passes:

* always: dead code (RPL001), uninitialized reads (RPL002/003), barrier
  divergence (RPL011/012);
* with a launch (geometry + memory image): races (RPL021/022) and bounds
  (RPL041/042) — without one these passes are recorded in
  ``report.skipped_passes`` rather than silently dropped;
* when the kernel decouples: queue pairing/pressure (RPL031-034) on the
  generated :class:`~repro.compiler.decouple.DecoupledProgram`, plus the
  translation-validation certifier (RPL050-054,
  :mod:`repro.analysis.certify`).  An already-decoupled stream kernel
  (containing enq/deq forms) is not re-decoupled.
"""

from __future__ import annotations

from ..config import GPUConfig
from ..isa import DeqToken, Kernel
from ..compiler.decouple import DecoupledProgram, decouple
from ..sim.launch import KernelLaunch
from .diagnostics import LintReport
from .passes import (
    LintContext,
    barrier_pass,
    bounds_pass,
    dead_code_pass,
    queue_pass,
    race_pass,
    uninit_pass,
)


def _is_stream_kernel(kernel: Kernel) -> bool:
    """Does the kernel already contain decoupled forms (enq / deq)?"""
    for inst in kernel.instructions:
        if inst.is_enq or isinstance(inst.guard, DeqToken):
            return True
        if any(isinstance(op, DeqToken) for op in inst.srcs + inst.dsts):
            return True
    return False


def lint_kernel(kernel: Kernel, config: GPUConfig | None = None,
                launch: KernelLaunch | None = None) -> LintReport:
    """Run every applicable pass over one kernel."""
    config = config or GPUConfig()
    ctx = LintContext(kernel, launch=launch, config=config)
    report = LintReport()
    report.extend(dead_code_pass(ctx))
    report.extend(uninit_pass(ctx))
    report.extend(barrier_pass(ctx))
    if launch is not None:
        report.extend(race_pass(ctx))
        report.extend(bounds_pass(ctx))
    else:
        report.skipped_passes.extend(["races", "bounds"])

    if _is_stream_kernel(kernel):
        report.skipped_passes.append("queues")
    else:
        try:
            program = decouple(kernel)
        except Exception as exc:    # defensive: lint must not crash
            report.skipped_passes.append(f"queues ({exc})")
        else:
            report.extend(queue_pass(program, config))
            if program.is_decoupled:
                from .certify import certify_program
                report.merge(certify_program(program))
    return report.finalize()


def lint_launch(launch: KernelLaunch,
                config: GPUConfig | None = None) -> LintReport:
    """Lint a launch: the kernel plus geometry/memory-aware passes."""
    return lint_kernel(launch.kernel, config=config, launch=launch)


def lint_program(program: DecoupledProgram,
                 config: GPUConfig | None = None) -> LintReport:
    """Lint an existing decoupled program (queue passes only)."""
    report = LintReport()
    report.extend(queue_pass(program, config))
    return report.finalize()
