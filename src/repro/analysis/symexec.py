"""Symbolic evaluation of kernels over an affine closed-form domain.

The certifier (:mod:`repro.analysis.certify`) needs, for every instruction
of a kernel, a *closed form* of each operand as a function of the launch
geometry: thread indices, CTA indices, kernel parameters, and — inside
loops — a per-iteration induction variable.  This module provides that
evaluator.  The domain is deliberately **more expressive** than the
compiler's affine-tuple lattice (:mod:`repro.affine`), so the certifier
can decide equivalence for everything the decoupler emits and degrade to
*unproven* (never to a false proof) for everything else:

* **Polynomials over symbols** — canonical multivariate polynomials with
  float coefficients over the symbols ``tid.x/y/z`` (thread-divergent),
  ``ctaid.* / ntid.* / nctaid.*`` and ``param:<name>`` (launch-uniform),
  and ``iter:<label>`` (the 0-based iteration index of the loop headed at
  ``<label>``).  Add/sub/mul/mad/shl-by-constant normalize here, so two
  differently-associated computations of the same affine address compare
  equal.
* **Uninterpreted atoms** — every operation without a polynomial rule
  (``rem``, ``min``/``max``/``abs``, bitwise, ``selp``, SFU, overflowing
  products, control-flow merges, loop trip counts) becomes an
  :class:`Atom`: a pure function of its canonicalized arguments.  Two
  atoms are equal iff their kinds and arguments are equal (congruence),
  which is sound because each listed kind is a deterministic function of
  its arguments.  The exceptions — ``load``, ``deq``, and ``opaque``
  (widening failure) — depend on state *outside* their arguments, so the
  certifier refuses to base a proof on them
  (:func:`uncertifiable_kinds`).
* **Loop widening** — at each natural-loop head, a register's value is
  checked for stability under ``n -> n+1`` substitution; a changed value
  is widened to the linear closed form ``v0 + n*delta`` when the
  per-iteration delta is ``n``-free, and collapses to an ``opaque`` atom
  otherwise.  Loop-exit edges substitute ``n := trip - 1``; the trip
  count resolves to a constant for constant bounds and to an
  ``exitcount`` atom (keyed by the loop's canonical continue condition —
  so two streams agree iff their loop predicates agree) otherwise.

Closed forms are *per-thread*: guarded writes and control-flow joins fold
into ``sel`` / ``merge`` atoms over canonical predicates, mirroring the
runtime's guarded tuple sets.  :func:`concretize` evaluates a closed form
at concrete ``(tid, ctaid, param)`` points with the exact datapath
semantics of :mod:`repro.sim.executor`, which is what the property tests
pin the whole domain against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.cfg import CFG
from ..isa import (
    CmpOp,
    DeqToken,
    Immediate,
    Instruction,
    Kernel,
    MemRef,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
)
from ..sim.executor import CMP_FUNCS, _shift, _to_int
from ..sim.executor import alu as _concrete_alu

#: Hard caps keeping polynomial products bounded; past these a product
#: falls back to an uninterpreted ``mul`` atom (still sound).
_MAX_TERMS = 128
_MAX_DEGREE = 8

#: Numeric trip-count resolution gives up past this many iterations.
_MAX_TRIP = 1 << 20

#: A widening slot may refine its guess this many times before collapsing
#: to an ``opaque`` atom (guesses stack when inner induction variables are
#: themselves still converging).
_MAX_WIDENINGS = 4


class NotConcretizable(ValueError):
    """A closed form references state concretization cannot supply
    (memory contents, queue state, or a widening-failure placeholder)."""


# ---------------------------------------------------------------------------
# Canonical ordering of heterogeneous domain objects.
# ---------------------------------------------------------------------------

def _key(x):
    """Total order over every object the domain embeds in monomials,
    atom arguments, and merge alternatives."""
    if isinstance(x, SymExpr):
        return ("E", x.key())
    if isinstance(x, Pred):
        return ("P", x.key())
    if isinstance(x, Atom):
        return ("A", x.key())
    if isinstance(x, frozenset):
        return ("F", tuple(sorted(_key(e) for e in x)))
    if isinstance(x, tuple):
        return ("T", tuple(_key(e) for e in x))
    if isinstance(x, bool):
        return ("b", x)
    if isinstance(x, (int, float)):
        return ("n", float(x))
    if isinstance(x, CmpOp):
        return ("c", x.value)
    return ("s", str(x))


def _mono_key(mono: tuple) -> tuple:
    return tuple(_key(s) for s in mono)


# ---------------------------------------------------------------------------
# Atoms: uninterpreted pure functions of canonical arguments.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Atom:
    """An uninterpreted term.  Congruence (same kind, same args -> same
    value) is sound for every kind except ``load``/``deq``/``opaque``,
    which close over state outside their arguments."""

    kind: str
    args: tuple

    def key(self):
        return (self.kind, tuple(_key(a) for a in self.args))

    def __repr__(self) -> str:
        return f"{self.kind}({', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Polynomials.
# ---------------------------------------------------------------------------

class SymExpr:
    """Canonical multivariate polynomial: ``terms`` is a sorted tuple of
    ``(monomial, coefficient)`` with each monomial a sorted tuple of
    symbols (strings) and :class:`Atom` instances."""

    __slots__ = ("terms", "_hash")

    def __init__(self, terms: tuple):
        self.terms = terms
        self._hash = hash(terms)

    # -- canonical identity ------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, SymExpr) and self.terms == other.terms

    def __hash__(self) -> int:
        return self._hash

    def key(self):
        return tuple((_mono_key(m), c) for m, c in self.terms)

    # -- inspection --------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return not self.terms or (len(self.terms) == 1
                                  and self.terms[0][0] == ())

    @property
    def const_value(self) -> float:
        if not self.terms:
            return 0.0
        return self.terms[0][1]

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "SymExpr") -> "SymExpr":
        d = dict(self.terms)
        for m, c in other.terms:
            d[m] = d.get(m, 0.0) + c
        return _make(d)

    def __sub__(self, other: "SymExpr") -> "SymExpr":
        return self + (-other)

    def __neg__(self) -> "SymExpr":
        return SymExpr(tuple((m, -c) for m, c in self.terms))

    def __mul__(self, other: "SymExpr") -> "SymExpr":
        d: dict[tuple, float] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                m = tuple(sorted(m1 + m2, key=_key))
                if len(m) > _MAX_DEGREE:
                    return atom_expr("mul", _sorted_pair(self, other))
                d[m] = d.get(m, 0.0) + c1 * c2
        if len(d) > _MAX_TERMS:
            return atom_expr("mul", _sorted_pair(self, other))
        return _make(d)

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for m, c in self.terms:
            if not m:
                parts.append(f"{c:g}")
            else:
                mono = "*".join(str(s) for s in m)
                parts.append(mono if c == 1.0 else f"{c:g}*{mono}")
        return " + ".join(parts)


def _make(d: dict[tuple, float]) -> SymExpr:
    items = [(m, c) for m, c in d.items() if c != 0.0]
    items.sort(key=lambda mc: _mono_key(mc[0]))
    return SymExpr(tuple(items))


def const(v) -> SymExpr:
    v = float(v)
    return SymExpr((((), v),)) if v != 0.0 else ZERO


def symbol(name: str) -> SymExpr:
    return SymExpr((((name,), 1.0),))


def from_atom(atom: Atom) -> SymExpr:
    return SymExpr((((atom,), 1.0),))


def atom_expr(kind: str, args: tuple) -> SymExpr:
    return from_atom(Atom(kind, args))


def _sorted_pair(a, b) -> tuple:
    return tuple(sorted((a, b), key=_key))


ZERO = SymExpr(())
ONE = SymExpr((((), 1.0),))


# ---------------------------------------------------------------------------
# Predicates.
# ---------------------------------------------------------------------------

_NEG_CMP = {
    CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ,
    CmpOp.LT: CmpOp.GE, CmpOp.GE: CmpOp.LT,
    CmpOp.GT: CmpOp.LE, CmpOp.LE: CmpOp.GT,
}

_CMP_PY = {
    CmpOp.EQ: lambda a, b: a == b, CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b, CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b, CmpOp.GE: lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Pred:
    """A canonical symbolic predicate.

    Kinds: ``cmp`` ``(CmpOp, lhs, rhs)``; ``const`` ``(bool,)``;
    ``sel`` ``(cond, then, else)``; ``merge`` ``(alternatives,)``;
    ``opaque`` (unprovable — e.g. a loop-carried predicate that failed
    widening, or a formal negation of one)."""

    kind: str
    payload: tuple

    def key(self):
        return (self.kind, tuple(_key(p) for p in self.payload))

    def __repr__(self) -> str:
        if self.kind == "cmp":
            op, l, r = self.payload
            return f"({l!r} {op.value} {r!r})"
        if self.kind == "const":
            return str(self.payload[0])
        return f"{self.kind}{self.payload!r}"


TRUE = Pred("const", (True,))
FALSE = Pred("const", (False,))


def cmp_pred(op: CmpOp, lhs: SymExpr, rhs: SymExpr) -> Pred:
    if lhs.is_const and rhs.is_const:
        return TRUE if _CMP_PY[op](lhs.const_value, rhs.const_value) \
            else FALSE
    if lhs == rhs:
        if op in (CmpOp.EQ, CmpOp.LE, CmpOp.GE):
            return TRUE
        return FALSE
    if op in (CmpOp.EQ, CmpOp.NE) and _key(rhs) < _key(lhs):
        lhs, rhs = rhs, lhs
    return Pred("cmp", (op, lhs, rhs))


def negate(p: Pred) -> Pred:
    if p.kind == "cmp":
        op, lhs, rhs = p.payload
        return Pred("cmp", (_NEG_CMP[op], lhs, rhs))
    if p.kind == "const":
        return FALSE if p.payload[0] else TRUE
    if p.kind == "sel":
        cond, a, b = p.payload
        return sel_pred(cond, negate(a), negate(b))
    if p.kind == "opaque" and p.payload and p.payload[0] == "not":
        return p.payload[1]
    return Pred("opaque", ("not", p))


def sel_pred(cond: Pred, a: Pred, b: Pred) -> Pred:
    if a == b:
        return a
    if cond.kind == "const":
        return a if cond.payload[0] else b
    return Pred("sel", (cond, a, b))


# ---------------------------------------------------------------------------
# Recursive walkers: atom collection, divergence, substitution.
# ---------------------------------------------------------------------------

def _walk_atoms(x, out: list) -> None:
    if isinstance(x, SymExpr):
        for m, _ in x.terms:
            for s in m:
                if isinstance(s, Atom):
                    _walk_atoms(s, out)
    elif isinstance(x, Atom):
        out.append(x)
        for a in x.args:
            _walk_atoms(a, out)
    elif isinstance(x, Pred):
        if x.kind == "opaque":
            out.append(Atom("opaque", x.payload))
        for a in x.payload:
            _walk_atoms(a, out)
    elif isinstance(x, (tuple, frozenset)):
        for a in x:
            _walk_atoms(a, out)


def atoms_of(x) -> list[Atom]:
    out: list[Atom] = []
    _walk_atoms(x, out)
    return out


#: Atom kinds that are *not* pure functions of their arguments, hence not
#: usable in an equivalence proof.
UNCERTIFIABLE_KINDS = frozenset({"load", "deq", "opaque"})


def uncertifiable_kinds(x) -> set[str]:
    """The subset of :data:`UNCERTIFIABLE_KINDS` appearing anywhere in a
    closed form (empty set -> the form is proof-grade)."""
    return {a.kind for a in atoms_of(x)} & UNCERTIFIABLE_KINDS


def _symbols_of(x, out: set) -> None:
    if isinstance(x, SymExpr):
        for m, _ in x.terms:
            for s in m:
                if isinstance(s, Atom):
                    _symbols_of(s, out)
                else:
                    out.add(s)
    elif isinstance(x, Atom):
        for a in x.args:
            _symbols_of(a, out)
    elif isinstance(x, Pred):
        for a in x.payload:
            _symbols_of(a, out)
    elif isinstance(x, (tuple, frozenset)):
        for a in x:
            _symbols_of(a, out)


def symbols_of(x) -> set[str]:
    out: set[str] = set()
    _symbols_of(x, out)
    return out


def is_divergent(x) -> bool:
    """Does the closed form depend on the lane (thread) index?"""
    return any(s.startswith("tid.") for s in symbols_of(x))


def subst(x, name: str, repl: SymExpr):
    """Substitute symbol ``name`` by ``repl`` everywhere in ``x`` (an
    expression, predicate, atom, or container), re-canonicalizing.
    ``exitcount`` atoms bind their own iteration symbol and are skipped
    for it."""
    if isinstance(x, SymExpr):
        out = ZERO
        for m, c in x.terms:
            factor = const(c)
            for s in m:
                if s == name:
                    factor = factor * repl
                elif isinstance(s, Atom):
                    factor = factor * from_atom(subst(s, name, repl))
                else:
                    factor = factor * symbol(s)
        # NB: the loop above loses the c==0 case only when terms is
        # empty; const(0) * anything handles the rest.
            out = out + factor
        return out
    if isinstance(x, Atom):
        if x.kind == "exitcount" and len(x.args) >= 2 and x.args[1] == name:
            return x
        return Atom(x.kind, tuple(subst(a, name, repl) for a in x.args))
    if isinstance(x, Pred):
        if x.kind == "cmp":
            op, lhs, rhs = x.payload
            return cmp_pred(op, subst(lhs, name, repl),
                            subst(rhs, name, repl))
        if x.kind == "sel":
            cond, a, b = x.payload
            return sel_pred(subst(cond, name, repl),
                            subst(a, name, repl), subst(b, name, repl))
        if x.kind == "const":
            return x
        return Pred(x.kind, tuple(subst(a, name, repl) for a in x.payload))
    if isinstance(x, frozenset):
        return frozenset(subst(a, name, repl) for a in x)
    if isinstance(x, tuple):
        return tuple(subst(a, name, repl) for a in x)
    return x


def contains_symbol(x, name: str) -> bool:
    return name in symbols_of(x)


# ---------------------------------------------------------------------------
# Loops.
# ---------------------------------------------------------------------------

@dataclass
class LoopInfo:
    """One natural loop, identified cross-stream by its head *label*."""

    name: str                       # head label (shared by both streams)
    head: int                       # head block index (stream-local)
    body: frozenset                 # block indices in the loop
    tails: tuple                    # back-edge source block indices
    sym: str = ""                   # "iter:<name>"
    cond: Pred | None = None        # canonical continue condition
    trip: SymExpr | None = None     # closed-form trip count

    def __post_init__(self):
        if not self.sym:
            self.sym = f"iter:{self.name}"


# ---------------------------------------------------------------------------
# Machine state.
# ---------------------------------------------------------------------------

class _State:
    __slots__ = ("regs", "preds")

    def __init__(self, regs=None, preds=None):
        self.regs: dict[str, SymExpr] = regs if regs is not None else {}
        self.preds: dict[str, Pred] = preds if preds is not None else {}

    def copy(self) -> "_State":
        return _State(dict(self.regs), dict(self.preds))

    def __eq__(self, other) -> bool:
        return isinstance(other, _State) and self.regs == other.regs \
            and self.preds == other.preds

    def subst_all(self, name: str, repl: SymExpr) -> "_State":
        return _State({k: subst(v, name, repl)
                       for k, v in self.regs.items()},
                      {k: subst(v, name, repl)
                       for k, v in self.preds.items()})


# ---------------------------------------------------------------------------
# Sites: per-instruction facts the certifier consumes.
# ---------------------------------------------------------------------------

@dataclass
class Site:
    """The certifier-relevant summary of one instruction occurrence."""

    index: int
    inst: Instruction
    kind: str                       # 'load'/'store'/'atom'/'setp'/
    #                                 'enq.data'/'enq.addr'/'enq.pred'/'deq'
    path: frozenset                 # canonical path condition of the block
    loops: tuple                    # sorted loop names containing the site
    guard: Pred | None              # canonical guard (negation folded in)
    value: object                   # SymExpr (addresses) or Pred (setp)


@dataclass
class SymbolicKernel:
    """The result of :func:`symexec` over one kernel."""

    kernel: Kernel
    cfg: CFG
    loops: dict[str, LoopInfo]
    sites: dict[int, Site]
    env_at: list                    # per-instruction (regs, preds) or None
    reachable: set = field(default_factory=set)

    def value_at(self, index: int, operand) -> SymExpr:
        env = self.env_at[index]
        if env is None:
            raise ValueError(f"instruction {index} is unreachable")
        return _operand_value(_State(*env), operand, index)

    def pred_at(self, index: int, name: str) -> Pred:
        env = self.env_at[index]
        if env is None:
            raise ValueError(f"instruction {index} is unreachable")
        return env[1].get(name, FALSE)


# ---------------------------------------------------------------------------
# Operand / instruction transfer.
# ---------------------------------------------------------------------------

def _operand_value(state: _State, op, index: int) -> SymExpr:
    if isinstance(op, Register):
        return state.regs.get(op.name, ZERO)
    if isinstance(op, Immediate):
        return const(op.value)
    if isinstance(op, Param):
        return symbol(f"param:{op.name}")
    if isinstance(op, SpecialReg):
        return symbol(f"{op.family}.{op.dim}")
    if isinstance(op, MemRef):
        return _operand_value(state, op.address, index) \
            + const(op.displacement)
    if isinstance(op, DeqToken):
        return atom_expr("deq", (op.kind, op.queue_id))
    if isinstance(op, PredReg):
        # A predicate read in value position (selp) — folded by caller.
        raise TypeError("predicate operand in value position")
    raise TypeError(f"cannot evaluate operand {op!r}")


def _guard_of(state: _State, inst: Instruction) -> Pred | None:
    if isinstance(inst.guard, PredReg):
        g = state.preds.get(inst.guard.name, FALSE)
        return negate(g) if inst.guard_negated else g
    if isinstance(inst.guard, DeqToken):
        return Pred("opaque", ("deq", inst.guard.kind, inst.guard.queue_id))
    return None


_POLY_OPS = {Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.NEG, Opcode.MUL,
             Opcode.MAD}

#: Commutative atom kinds whose arguments are sorted canonically.
_COMMUTATIVE = {Opcode.MIN: "min", Opcode.MAX: "max", Opcode.AND: "and",
                Opcode.OR: "or", Opcode.XOR: "xor"}


def _alu_value(opcode: Opcode, args: list[SymExpr]) -> SymExpr:
    """Symbolic ALU transfer.  Constant operands fold through the *real*
    datapath (:func:`repro.sim.executor.alu`) so folding semantics can
    never drift from the simulator."""
    if all(a.is_const for a in args):
        concrete = _concrete_alu(opcode, [a.const_value for a in args])
        return const(float(concrete))
    if opcode in _POLY_OPS:
        if opcode is Opcode.MOV:
            return args[0]
        if opcode is Opcode.ADD:
            return args[0] + args[1]
        if opcode is Opcode.SUB:
            return args[0] - args[1]
        if opcode is Opcode.NEG:
            return -args[0]
        if opcode is Opcode.MUL:
            return args[0] * args[1]
        return args[0] * args[1] + args[2]          # MAD
    if opcode is Opcode.SHL and args[1].is_const:
        k = args[1].const_value
        if k == int(k) and 0 <= k < 64:
            # The affine runtime itself models shl as a scale
            # (AffineTuple.shl); integer-exact values make this equal to
            # the datapath's 64-bit shift.
            return args[0] * const(float(2 ** int(k)))
    if opcode in _COMMUTATIVE:
        if args[0] == args[1]:
            return args[0] if opcode in (Opcode.MIN, Opcode.MAX,
                                         Opcode.AND, Opcode.OR) else ZERO
        return atom_expr(_COMMUTATIVE[opcode], _sorted_pair(args[0], args[1]))
    if opcode is Opcode.REM:
        return atom_expr("rem", (args[0], args[1]))
    if opcode is Opcode.DIV:
        return atom_expr("div", (args[0], args[1]))
    if opcode is Opcode.ABS:
        return atom_expr("abs", (args[0],))
    if opcode is Opcode.NOT:
        return atom_expr("not", (args[0],))
    if opcode is Opcode.SHL:
        return atom_expr("shl", (args[0], args[1]))
    if opcode is Opcode.SHR:
        return atom_expr("shr", (args[0], args[1]))
    return atom_expr(f"sfu.{opcode.value}", tuple(args))


def _guarded_expr(guard: Pred | None, new: SymExpr, old: SymExpr) -> SymExpr:
    if guard is None or guard == TRUE:
        return new
    if guard == FALSE:
        return old
    if new == old:
        return new
    return atom_expr("sel", (guard, new, old))


def _guarded_pred(guard: Pred | None, new: Pred, old: Pred) -> Pred:
    if guard is None or guard == TRUE:
        return new
    if guard == FALSE:
        return old
    return sel_pred(guard, new, old)


# ---------------------------------------------------------------------------
# The evaluator.
# ---------------------------------------------------------------------------

class _Evaluator:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.cfg = CFG(kernel)
        self.rpo = self.cfg.reverse_postorder()
        self.loops = self._find_loops()
        self.loop_by_head = {L.head: L for L in self.loops}
        self.ins: dict[int, _State] = {}
        self.outs: dict[int, _State] = {}
        self.pc: dict[int, frozenset] = {}
        self._wcount: dict[tuple, int] = {}
        self._rec_cache: dict[int, object] = {}
        self._entry_state: dict[int, _State] = {}
        self._back_edges = {(u, L.head) for L in self.loops for u in L.tails}
        # A loop's sole exit edge is fully described by the iteration
        # substitution; its branch condition must not leak into
        # downstream path conditions (it references a dead iteration
        # symbol).  Multi-exit loops (breaks) keep their conditions.
        self._sole_exits: set[tuple] = set()
        for L in self.loops:
            exits = [(p, s) for p in L.body
                     for s in self.cfg.blocks[p].successors
                     if s not in L.body]
            if len(exits) == 1:
                self._sole_exits.add(exits[0])

    # -- loop discovery ---------------------------------------------------

    def _find_loops(self) -> list[LoopInfo]:
        blocks = self.cfg.blocks
        by_head: dict[int, list[int]] = {}
        for b in blocks:
            for s in b.successors:
                if blocks[s].start <= b.start:
                    by_head.setdefault(s, []).append(b.index)
        loops = []
        for head, tails in sorted(by_head.items()):
            body = {head}
            work = [t for t in tails if t != head]
            while work:
                n = work.pop()
                if n in body:
                    continue
                body.add(n)
                work.extend(p for p in blocks[n].predecessors
                            if p not in body)
            names = []
            for t in tails:
                last = self.kernel.instructions[blocks[t].end - 1]
                if last.is_branch and last.target is not None:
                    names.append(last.target)
            name = min(names) if names else f"@block{head}"
            loops.append(LoopInfo(name=name, head=head,
                                  body=frozenset(body),
                                  tails=tuple(sorted(tails))))
        # Innermost first, so multi-loop exit edges substitute inner
        # iteration symbols before outer ones.
        loops.sort(key=lambda L: len(L.body))
        return loops

    # -- path conditions ---------------------------------------------------

    def _edge_pc(self, p: int, b: int, base: frozenset) -> frozenset:
        block = self.cfg.blocks[p]
        last = self.kernel.instructions[block.end - 1]
        if not (last.is_branch and isinstance(last.guard, PredReg)):
            return base
        succs = block.successors
        if len(succs) < 2 or succs[0] == succs[1]:
            return base
        if (p, b) in self._sole_exits:
            return base
        out = self.outs.get(p)
        g = out.preds.get(last.guard.name, FALSE) if out is not None \
            else FALSE
        taken_polarity = not last.guard_negated
        if b == succs[0]:
            return base | {(g, taken_polarity)}
        return base | {(g, not taken_polarity)}

    def _compute_pcs(self) -> None:
        pc: dict[int, frozenset] = {}
        for b in self.rpo:
            preds = [p for p in self.cfg.blocks[b].predecessors
                     if (p, b) not in self._back_edges and p in pc]
            if not preds:
                pc[b] = frozenset()
                continue
            sets = [self._edge_pc(p, b, pc[p]) for p in preds]
            inter = sets[0]
            for s in sets[1:]:
                inter = inter & s
            pc[b] = inter
        self.pc = pc

    # -- joins and widening ------------------------------------------------

    def _join(self, b: int, incoming: list) -> _State:
        if len(incoming) == 1:
            return incoming[0][1].copy()
        target_pc = self.pc.get(b, frozenset())
        conds = [frozenset(self._edge_pc(p, b, self.pc.get(p, frozenset()))
                           - target_pc)
                 for p, _ in incoming]
        merged = _State()
        reg_names: set[str] = set()
        pred_names: set[str] = set()
        for _, st in incoming:
            reg_names |= set(st.regs)
            pred_names |= set(st.preds)
        for name in reg_names:
            vals = [st.regs.get(name, ZERO) for _, st in incoming]
            if all(v == vals[0] for v in vals[1:]):
                merged.regs[name] = vals[0]
            else:
                alts = tuple(sorted(zip(conds, vals), key=_key))
                merged.regs[name] = atom_expr("merge", (alts,))
        for name in pred_names:
            vals = [st.preds.get(name, FALSE) for _, st in incoming]
            if all(v == vals[0] for v in vals[1:]):
                merged.preds[name] = vals[0]
            else:
                alts = tuple(sorted(zip(conds, vals), key=_key))
                merged.preds[name] = Pred("merge", (alts,))
        return merged

    def _loop_chain(self, loop: LoopInfo) -> list | None:
        """The loop body as a linear chain of blocks (head..tail), or
        None when the body has internal control flow."""
        chain = [loop.head]
        seen = {loop.head}
        b = loop.head
        while True:
            nxt = [s for s in self.cfg.blocks[b].successors
                   if s in loop.body and s != loop.head]
            if not nxt:
                break
            if len(nxt) > 1 or nxt[0] in seen:
                return None
            b = nxt[0]
            chain.append(b)
            seen.add(b)
        if seen != set(loop.body):
            return None
        return chain

    def _loop_recs(self, loop: LoopInfo):
        """(inits, recs) for a straight-line loop body: ``recs[r]`` is
        r's value after one iteration, written over ``carry:<loop>:<r>``
        symbols standing for the head values.  Cached per pass."""
        cached = self._rec_cache.get(loop.head, "miss")
        if cached != "miss":
            return cached
        result = None
        chain = self._loop_chain(loop)
        if chain is not None:
            regs: set[str] = set()
            preds: set[str] = set()
            for inst in self.kernel.instructions:
                regs |= {r.name for r in inst.written_regs()
                         if not isinstance(r, PredReg)}
                preds |= {r.name for r in inst.written_regs()
                          if isinstance(r, PredReg)}
            state = _State(
                {r: symbol(f"carry:{loop.name}:{r}") for r in regs},
                {p: Pred("opaque", ("carry", loop.name, p))
                 for p in preds})
            for b in chain:
                self._exec_block(b, state)
            recs = {r: v for r, v in state.regs.items()
                    if not contains_symbol(v, loop.sym)}
            base = self._entry_state.get(loop.head)
            inits = dict(base.regs) if base is not None else {}
            result = (inits, recs)
        self._rec_cache[loop.head] = result
        return result

    def _loopwall(self, loop: LoopInfo, name: str) -> SymExpr:
        """The sound fallback for a register that defeats polynomial
        widening: a ``looprec`` atom — a pure function of the loop's
        entry values, its per-iteration recurrences, and the iteration
        index — or a plain ``opaque`` atom when the body's recurrence
        cannot be extracted."""
        info = self._loop_recs(loop)
        plain = from_atom(Atom("opaque", ("loop", loop.name, name)))
        if info is None:
            return plain
        inits, recs = info
        if name not in recs:
            return plain
        prefix = f"carry:{loop.name}:"
        changed = {r for r in recs
                   if recs[r] != symbol(prefix + r)}
        if name not in changed:
            return plain
        # The sequence is a function of this register's recurrence AND
        # the entry value of every register it transitively reads —
        # close over exactly those (no more: unrelated body registers
        # must not perturb the atom's identity across streams).
        needed = {name}
        frontier = {name}
        while frontier:
            new = set()
            for r in frontier:
                for s in symbols_of(recs.get(r, ZERO)):
                    if isinstance(s, str) and s.startswith(prefix):
                        rn = s[len(prefix):]
                        if rn not in needed:
                            new.add(rn)
                            needed.add(rn)
            frontier = new
        if any(r not in recs for r in needed):
            return plain                        # a dependency was dropped
        init_args = tuple((r, inits.get(r, ZERO)) for r in sorted(needed))
        rec_args = tuple((r, recs[r]) for r in sorted(needed & changed))
        if any(contains_symbol(v, loop.sym) for _, v in init_args):
            return plain
        return from_atom(Atom("looprec", (loop.name, symbol(loop.sym),
                                          name, init_args, rec_args)))

    def _widen_reg(self, key: tuple, loop: LoopInfo, v0: SymExpr,
                   vb: SymExpr, prev: SymExpr | None) -> SymExpr:
        n = loop.sym
        opaque = self._loopwall(loop, key[2])
        count = self._wcount.get(key, 0)
        if count >= _MAX_WIDENINGS:
            return opaque
        if vb == v0 and (prev is None or prev == v0):
            return v0                           # loop-invariant
        h = prev if prev is not None else v0
        n_expr = symbol(n)
        if subst(h, n, n_expr + ONE) == vb and subst(h, n, ZERO) == v0:
            return h                            # stable closed form
        if prev is not None and prev == opaque:
            return opaque                       # already walled off
        if contains_symbol(v0, n):
            self._wcount[key] = _MAX_WIDENINGS
            return opaque
        # Guess a closed form by summing the per-iteration delta.  The
        # delta d(n) = vb - h is interpolated as a polynomial of degree
        # <= 2 in n (checked by reconstruction), then summed with
        # Faulhaber's formulas:  v(n) = v0 + sum_{m<n} d(m).  The guess
        # is provisional — it only survives if the *stability* check
        # above verifies it on a later pass, so an inaccurate delta
        # (inner registers still converging) merely costs a retry.
        d = vb - h
        vals = [subst(d, n, const(j)) for j in range(3)]
        c0 = vals[0]
        c1 = vals[0] * const(-1.5) + vals[1] * const(2.0) \
            + vals[2] * const(-0.5)
        c2 = vals[0] * const(0.5) - vals[1] + vals[2] * const(0.5)
        if any(contains_symbol(c, n) for c in (c0, c1, c2)):
            self._wcount[key] = _MAX_WIDENINGS
            return opaque
        n2 = n_expr * n_expr
        if c0 + c1 * n_expr + c2 * n2 != d:     # not polynomial in n
            self._wcount[key] = _MAX_WIDENINGS
            return opaque
        s1 = (n2 - n_expr) * const(0.5)
        s2 = (n2 * n_expr * const(2.0) - n2 * const(3.0) + n_expr) \
            * const(1.0 / 6.0)
        guess = v0 + c0 * n_expr + c1 * s1 + c2 * s2
        self._wcount[key] = count + 1
        if guess == h:                          # guess failed to converge
            self._wcount[key] = _MAX_WIDENINGS
            return opaque
        return guess

    def _merge_in(self, b: int) -> _State | None:
        if b == self.rpo[0] and not self.cfg.blocks[b].predecessors:
            return _State()
        incoming = []
        for p in self.cfg.blocks[b].predecessors:
            out = self.outs.get(p)
            if out is None:
                continue
            incoming.append((p, self._edge_transfer(p, b, out)))
        if not incoming:
            return _State() if b == self.rpo[0] else None
        loop = self.loop_by_head.get(b)
        if loop is None:
            return self._join(b, incoming)
        entry = [(p, st) for p, st in incoming if p not in loop.body]
        back = [(p, st) for p, st in incoming if p in loop.body]
        base = self._join(b, entry) if entry else _State()
        self._entry_state[b] = base
        if not back:
            return base
        backs = self._join(b, back)
        prev = self.ins.get(b)
        new = _State()
        for name in set(base.regs) | set(backs.regs) | \
                (set(prev.regs) if prev else set()):
            new.regs[name] = self._widen_reg(
                (b, "r", name), loop,
                base.regs.get(name, ZERO), backs.regs.get(name, ZERO),
                prev.regs.get(name) if prev else None)
        for name in set(base.preds) | set(backs.preds):
            q0 = base.preds.get(name, FALSE)
            qb = backs.preds.get(name, FALSE)
            if q0 == qb:
                new.preds[name] = q0
            else:
                new.preds[name] = Pred("opaque", ("loop", loop.name, name))
        return new

    # -- loop exits --------------------------------------------------------

    def _continue_cond(self, p: int, b: int, state: _State) -> Pred | None:
        """The canonical 'iteration continues' predicate for the exit
        edge p -> b, read off p's terminating conditional branch (None
        when the edge is unconditional)."""
        block = self.cfg.blocks[p]
        last = self.kernel.instructions[block.end - 1]
        if not (last.is_branch and isinstance(last.guard, PredReg)):
            return None
        succs = block.successors
        if len(succs) < 2 or succs[0] == succs[1]:
            return None
        g = state.preds.get(last.guard.name, FALSE)
        taken = negate(g) if last.guard_negated else g
        exit_cond = taken if b == succs[0] else negate(taken)
        return negate(exit_cond)

    def _count_true(self, loop: LoopInfo, cond: Pred) -> SymExpr:
        """Closed form of ``|{ m : cond(0..m) all hold }|`` — the number
        of leading iterations satisfying the continue condition.  That is
        exactly the iteration index at which a conditional exit edge is
        taken (head exits run the body that many times; tail exits ran it
        once more)."""
        if cond.kind == "const":
            if not cond.payload[0]:
                return ZERO
            return from_atom(Atom("opaque", ("infinite-loop", loop.name)))
        if cond.kind == "cmp":
            op, lhs, rhs = cond.payload
            d = lhs - rhs
            d0 = subst(d, loop.sym, ZERO)
            d1 = subst(d, loop.sym, ONE)
            step = d1 - d0
            if d0.is_const and step.is_const:
                a, s = d0.const_value, step.const_value
                t = 0
                while t < _MAX_TRIP and _CMP_PY[op](a + s * t, 0.0):
                    t += 1
                if t < _MAX_TRIP:
                    return const(t)
        return atom_expr("exitcount", (loop.name, loop.sym, cond))

    def _edge_transfer(self, p: int, b: int, out: _State) -> _State:
        left = [L for L in self.loops
                if p in L.body and b not in L.body]
        if not left:
            return out
        st = out
        # The edge's own branch resolves the innermost loop's iteration
        # count; additional (outer) loops left by the same edge are
        # mid-iteration breaks with no closed form.
        cont = self._continue_cond(p, b, out)
        for L in left:                          # innermost first (sorted)
            if cont is not None:
                final = self._count_true(L, cont)
                cont = None
            else:
                final = from_atom(Atom("opaque", ("break", L.name)))
            st = st.subst_all(L.sym, final)
        return st

    # -- the fixpoint ------------------------------------------------------

    def run(self) -> SymbolicKernel:
        max_passes = 24 + 8 * len(self.cfg.blocks)
        for _ in range(max_passes):
            self._compute_pcs()
            self._rec_cache.clear()
            changed = False
            for b in self.rpo:
                new_in = self._merge_in(b)
                if new_in is None:
                    continue
                if self.ins.get(b) != new_in:
                    changed = True
                self.ins[b] = new_in
                out = new_in.copy()
                self._exec_block(b, out)
                if self.outs.get(b) != out:
                    changed = True
                self.outs[b] = out
            if not changed:
                break
        else:
            # Did not converge: poison every state so the certifier
            # reports "unproven" rather than trusting a partial fixpoint.
            bad = from_atom(Atom("opaque", ("nonconvergent", self.kernel.name)))
            for st in list(self.ins.values()) + list(self.outs.values()):
                for r in st.regs:
                    st.regs[r] = bad
        return self._final_pass()

    def _exec_block(self, b: int, state: _State,
                    env_at=None, sites=None) -> None:
        block = self.cfg.blocks[b]
        for idx in range(block.start, block.end):
            inst = self.kernel.instructions[idx]
            if env_at is not None:
                env_at[idx] = (dict(state.regs), dict(state.preds))
            if sites is not None:
                self._record_site(sites, b, idx, inst, state)
            self._step(state, idx, inst)

    def _step(self, state: _State, idx: int, inst: Instruction) -> None:
        op = inst.opcode
        if inst.is_branch or inst.is_barrier or inst.is_exit or inst.is_enq:
            return
        guard = _guard_of(state, inst)
        if inst.is_memory:
            if inst.is_load:
                dst = inst.dsts[0]
                if isinstance(inst.srcs[0], DeqToken):
                    val = _operand_value(state, inst.srcs[0], idx)
                else:
                    addr = _operand_value(state, inst.srcs[0], idx)
                    val = atom_expr("load", (inst.space.value, addr, idx))
                old = state.regs.get(dst.name, ZERO)
                state.regs[dst.name] = _guarded_expr(guard, val, old)
            return                              # stores write no registers
        if op is Opcode.SETP:
            lhs = _operand_value(state, inst.srcs[0], idx)
            rhs = _operand_value(state, inst.srcs[1], idx)
            val = cmp_pred(inst.cmp, lhs, rhs)
            dst = inst.dsts[0]
            old = state.preds.get(dst.name, FALSE)
            state.preds[dst.name] = _guarded_pred(guard, val, old)
            return
        if op is Opcode.SELP:
            a = _operand_value(state, inst.srcs[0], idx)
            b = _operand_value(state, inst.srcs[1], idx)
            p = state.preds.get(inst.srcs[2].name, FALSE) \
                if isinstance(inst.srcs[2], PredReg) else TRUE
            if p.kind == "const":
                val = a if p.payload[0] else b
            elif a == b:
                val = a
            else:
                val = atom_expr("sel", (p, a, b))
        else:
            args = [_operand_value(state, s, idx) for s in inst.srcs]
            val = _alu_value(op, args)
        dst = inst.dsts[0]
        old = state.regs.get(dst.name, ZERO)
        state.regs[dst.name] = _guarded_expr(guard, val, old)

    # -- final artifacts ---------------------------------------------------

    def _record_site(self, sites: dict, b: int, idx: int,
                     inst: Instruction, state: _State) -> None:
        kind = None
        value = None
        if inst.is_enq:
            kind = inst.opcode.value            # 'enq.data' etc.
            src = inst.srcs[0]
            if inst.opcode is Opcode.ENQ_PRED:
                value = state.preds.get(src.name, FALSE)
            else:
                value = _operand_value(state, src, idx)
        elif inst.is_memory:
            token = next((o for o in inst.srcs + inst.dsts
                          if isinstance(o, DeqToken)), None)
            if token is not None:
                kind = "deq"
            else:
                kind = ("load" if inst.is_load
                        else "atom" if inst.opcode is Opcode.ATOM
                        else "store")
                ref = inst.mem_ref()
                value = _operand_value(state, ref, idx)
        elif inst.opcode is Opcode.SETP:
            kind = "setp"
            # Value recorded post-write below (guard folded in).
        if kind is None:
            return
        loops = tuple(sorted(L.name for L in self.loops if b in L.body))
        site = Site(index=idx, inst=inst, kind=kind,
                    path=self.pc.get(b, frozenset()), loops=loops,
                    guard=_guard_of(state, inst), value=value)
        if kind == "setp":
            # Execute a copy to capture the post-assignment predicate.
            shadow = state.copy()
            self._step(shadow, idx, inst)
            site.value = shadow.preds.get(inst.dsts[0].name, FALSE)
        sites[idx] = site

    def _final_pass(self) -> SymbolicKernel:
        self._compute_pcs()
        env_at: list = [None] * len(self.kernel.instructions)
        sites: dict[int, Site] = {}
        reachable = set()
        for b in self.rpo:
            if b not in self.ins:
                continue
            reachable.add(b)
            state = self.ins[b].copy()
            self._exec_block(b, state, env_at=env_at, sites=sites)
        loops: dict[str, LoopInfo] = {}
        for L in self.loops:
            conds = set()
            tail_exit = False
            for p in sorted(L.body):
                if p not in self.outs:
                    continue
                for s in self.cfg.blocks[p].successors:
                    if s in L.body:
                        continue
                    c = self._continue_cond(p, s, self.outs[p])
                    if c is not None:
                        conds.add(c)
                        tail_exit = tail_exit or p in L.tails
            if conds:
                ordered = sorted(conds, key=_key)
                L.cond = ordered[0] if len(ordered) == 1 else \
                    Pred("merge", (tuple(ordered),))
                L.trip = self._count_true(L, L.cond) + \
                    (ONE if tail_exit else ZERO)
            loops[L.name] = L
        return SymbolicKernel(kernel=self.kernel, cfg=self.cfg,
                              loops=loops, sites=sites, env_at=env_at,
                              reachable=reachable)


def symexec(kernel: Kernel) -> SymbolicKernel:
    """Symbolically execute a kernel to per-instruction closed forms."""
    return _Evaluator(kernel).run()


# ---------------------------------------------------------------------------
# Concretization (property-test oracle hook).
# ---------------------------------------------------------------------------

def _conc_pred(p: Pred, env: dict, shape) -> np.ndarray:
    if p.kind == "const":
        return np.full(shape, bool(p.payload[0]))
    if p.kind == "cmp":
        op, lhs, rhs = p.payload
        return np.broadcast_to(
            CMP_FUNCS[op](concretize(lhs, env), concretize(rhs, env)),
            shape).copy()
    if p.kind == "sel":
        cond, a, b = p.payload
        return np.where(_conc_pred(cond, env, shape),
                        _conc_pred(a, env, shape),
                        _conc_pred(b, env, shape))
    if p.kind == "merge":
        return _conc_merge(p.payload[0], env, shape,
                           lambda v: _conc_pred(v, env, shape))
    raise NotConcretizable(f"predicate {p!r}")


def _conc_condset(conds: frozenset, env: dict, shape) -> np.ndarray:
    mask = np.full(shape, True)
    for pred, polarity in conds:
        v = _conc_pred(pred, env, shape)
        mask &= v if polarity else ~v
    return mask


def _conc_merge(alts, env: dict, shape, eval_fn) -> np.ndarray:
    result = None
    covered = np.full(shape, False)
    for conds, value in alts:
        m = _conc_condset(conds, env, shape) & ~covered
        v = np.broadcast_to(np.asarray(eval_fn(value)), shape)
        result = np.where(m, v, result if result is not None
                          else np.zeros(shape))
        covered |= m
    if result is None or not covered.all():
        raise NotConcretizable("merge alternatives do not cover all lanes")
    return result


def _conc_exitcount(atom: Atom, env: dict, shape) -> np.ndarray:
    """Per-lane count of leading iterations satisfying the condition."""
    _name, sym, cond = atom.args
    count = np.zeros(shape)
    n = 0
    alive = _conc_pred(subst(cond, sym, const(0)), env, shape)
    while alive.any():
        count = np.where(alive, count + 1, count)
        n += 1
        if n > _MAX_TRIP:
            raise NotConcretizable("runaway exitcount")
        alive = alive & _conc_pred(subst(cond, sym, const(n)), env, shape)
    return count


def _conc_looprec(atom: Atom, env: dict, shape) -> np.ndarray:
    """Iterate a loop recurrence concretely: value of ``reg`` at the
    (per-lane) iteration index given by the atom's iteration operand."""
    loop_name, iter_expr, reg, init_args, rec_args = atom.args
    n_arr = np.broadcast_to(concretize(iter_expr, env), shape)
    prefix = f"carry:{loop_name}:"
    state = {r: np.broadcast_to(
        np.asarray(concretize(v, env), dtype=np.float64), shape).copy()
        for r, v in init_args}
    out = state[reg].copy()
    maxn = int(np.max(n_arr)) if n_arr.size else 0
    if maxn > 65536:
        raise NotConcretizable("runaway looprec iteration count")
    for m in range(1, maxn + 1):
        env2 = dict(env)
        for r, v in state.items():
            env2[prefix + r] = v
        for r, rv in rec_args:
            state[r] = np.broadcast_to(
                np.asarray(concretize(rv, env2), dtype=np.float64),
                shape).copy()
        out = np.where(n_arr >= m, state[reg], out)
    return out


_SFU_BY_NAME = {op.value: op for op in Opcode}


def _conc_atom(atom: Atom, env: dict, shape):
    k = atom.kind
    if k in UNCERTIFIABLE_KINDS:
        raise NotConcretizable(f"{k} atom")
    if k == "rem":
        a, m = (concretize(x, env) for x in atom.args)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(m == 0, 0.0, np.mod(a, m))
    if k == "div":
        a, m = (concretize(x, env) for x in atom.args)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(m == 0, 0.0, a / m)
    if k in ("min", "max"):
        a, b = (concretize(x, env) for x in atom.args)
        return np.minimum(a, b) if k == "min" else np.maximum(a, b)
    if k == "abs":
        return np.abs(concretize(atom.args[0], env))
    if k == "mul":
        a, b = (concretize(x, env) for x in atom.args)
        return a * b
    if k in ("and", "or", "xor"):
        a, b = (_to_int(concretize(x, env)) for x in atom.args)
        out = a & b if k == "and" else a | b if k == "or" else a ^ b
        return out.astype(np.float64)
    if k == "not":
        return (~_to_int(concretize(atom.args[0], env))).astype(np.float64)
    if k in ("shl", "shr"):
        a, n = (concretize(x, env) for x in atom.args)
        return _shift(a, n, left=(k == "shl"))
    if k == "sel":
        pred, a, b = atom.args
        return np.where(_conc_pred(pred, env, shape),
                        np.broadcast_to(np.asarray(concretize(a, env)),
                                        shape),
                        np.broadcast_to(np.asarray(concretize(b, env)),
                                        shape))
    if k == "merge":
        return _conc_merge(atom.args[0], env, shape,
                           lambda v: concretize(v, env))
    if k == "exitcount":
        return _conc_exitcount(atom, env, shape)
    if k == "looprec":
        return _conc_looprec(atom, env, shape)
    if k.startswith("sfu."):
        op = _SFU_BY_NAME[k[4:]]
        return _concrete_alu(op, [concretize(a, env) for a in atom.args])
    raise NotConcretizable(f"unknown atom kind {k!r}")


def _env_shape(env: dict):
    for v in env.values():
        arr = np.asarray(v)
        if arr.ndim:
            return arr.shape
    return (1,)


def concretize(value, env: dict) -> np.ndarray:
    """Evaluate a closed form at concrete points.

    ``env`` maps symbol names (``tid.x``, ``ctaid.x``, ``ntid.x``,
    ``param:A``, ...) to lane arrays or scalars; the result broadcasts to
    the lane shape.  Raises :class:`NotConcretizable` for forms that
    reference memory, queues, or widening failures."""
    shape = _env_shape(env)
    if isinstance(value, Pred):
        return _conc_pred(value, env, shape)
    if isinstance(value, Atom):
        return np.broadcast_to(
            np.asarray(_conc_atom(value, env, shape), dtype=np.float64),
            shape).copy()
    if not isinstance(value, SymExpr):
        return np.broadcast_to(np.float64(value), shape).copy()
    total = np.zeros(shape)
    for mono, coeff in value.terms:
        factor = np.full(shape, coeff)
        for s in mono:
            if isinstance(s, Atom):
                factor = factor * np.broadcast_to(
                    np.asarray(_conc_atom(s, env, shape),
                               dtype=np.float64), shape)
            else:
                if s not in env:
                    raise NotConcretizable(f"no binding for symbol {s!r}")
                factor = factor * np.asarray(env[s], dtype=np.float64)
        total = total + factor
    return total
