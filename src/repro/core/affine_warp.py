"""The affine warp: executes the affine instruction stream on tuples.

One affine warp per SM services every non-affine warp (paper §4).  Because
tuples are parameterized over thread indices with the block index folded
into the base (DESIGN.md), the affine warp executes the affine stream once
per resident CTA; a single hardware context round-robins over the resident
CTAs' streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..affine import (
    AffineError,
    AffinePredicate,
    AffineTuple,
    DivergentSet,
    MAX_DIVERGENT_TUPLES,
    apply_op,
    scalar,
)
from ..isa import (
    Immediate,
    Instruction,
    MemRef,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
    decoded_of,
)
from ..sim.simt_stack import SIMTStack
from .queues import BarrierMarker, TupleEntry


class DecoupleRuntimeError(RuntimeError):
    """The affine warp hit a value pattern the compiler should have
    excluded — a modeling bug, surfaced loudly."""


@dataclass(frozen=True)
class ConcretePredicate:
    """A predicate that had to be materialized per thread (divergent-tuple
    operands or divergent merges).  The PEU expands these on the SIMT lanes
    (the 7% tier of §4.3)."""

    bits: np.ndarray

    @property
    def is_scalar(self) -> bool:
        return False


@dataclass(frozen=True)
class ConcreteExpr:
    """An affine-stream value expanded into concrete per-thread values.

    Paper §3: "If an affine tuple cannot be expanded into predicate bit
    vectors or addresses, then it must be expanded into concrete vector
    values by evaluating function (1) explicitly for each thread."  The
    affine warp runs on the SIMT lanes (§4.4), so this fallback is a plain
    vector operation — correct, just not compact.  ``values`` covers the
    whole CTA."""

    values: np.ndarray

    @property
    def is_scalar(self) -> bool:
        return False

    def evaluate(self, tx, ty, tz) -> np.ndarray:
        # Only called full-width (the AEU slices explicitly).
        return self.values

    def add(self, other) -> "ConcreteExpr":
        if not other.is_scalar:
            raise AffineError("concrete values only add scalars lazily")
        return ConcreteExpr(self.values + other.scalar_value)

    def scale(self, factor: float) -> "ConcreteExpr":
        return ConcreteExpr(self.values * factor)


class AffineCTAExec:
    """Affine-stream execution state for one resident CTA."""

    def __init__(self, sm, cta, kernel, cfg):
        self.sm = sm
        self.cta = cta
        self.kernel = kernel
        self.code = decoded_of(kernel)      # shared per-kernel decode cache
        self.cfg = cfg
        launch = cta.launch
        self.launch = launch
        width = launch.warps_per_block * 32
        self.width = width
        bx, by, bz = launch.block_dim
        linear = np.arange(width)
        self.valid = linear < launch.threads_per_block
        clamped = np.minimum(linear, launch.threads_per_block - 1)
        self.tx = (clamped % bx).astype(np.float64)
        self.ty = ((clamped // bx) % by).astype(np.float64)
        self.tz = (clamped // (bx * by)).astype(np.float64)
        self.stack = SIMTStack(self.valid)
        self.regs: dict[str, object] = {}
        self.preds: dict[str, object] = {}
        self.dcrf: dict[int, np.ndarray] = {}
        self._next_cond = 0
        self.done = False
        self.barriers_seen = 0
        self.last_step_concrete = False
        self.cta_warps = sorted((w for w in sm.warps if w.cta is cta),
                                key=lambda w: w.warp_in_cta)

    # ---- operand evaluation -------------------------------------------

    def _expr(self, op):
        if isinstance(op, Register):
            return self.regs.get(op.name, scalar(0.0))
        if isinstance(op, Immediate):
            return scalar(op.value)
        if isinstance(op, Param):
            return scalar(self.launch.params[op.name])
        if isinstance(op, SpecialReg):
            if op.family == "tid":
                offsets = {"x": (1.0, 0.0, 0.0), "y": (0.0, 1.0, 0.0),
                           "z": (0.0, 0.0, 1.0)}[op.dim]
                return AffineTuple(0.0, offsets)
            axis = "xyz".index(op.dim)
            if op.family == "ntid":
                return scalar(self.launch.block_dim[axis])
            if op.family == "ctaid":
                return scalar(self.cta.block_idx[axis])
            return scalar(self.launch.grid_dim[axis])
        if isinstance(op, PredReg):
            pred = self.preds.get(op.name)
            if pred is None:
                pred = ConcretePredicate(np.zeros(self.width, dtype=bool))
            return pred
        if isinstance(op, MemRef):
            base = self._expr(op.address)
            if op.displacement:
                return apply_op(Opcode.ADD, [base, scalar(op.displacement)])
            return base
        raise TypeError(f"affine warp cannot evaluate {op!r}")

    def pred_bits(self, pred) -> np.ndarray:
        if isinstance(pred, ConcretePredicate):
            return pred.bits
        if isinstance(pred, AffinePredicate):
            return pred.evaluate(self.tx, self.ty, self.tz)
        raise TypeError(f"not a predicate: {pred!r}")

    def eval_concrete(self, expr) -> np.ndarray:
        """Per-thread concrete values (DivergentSets use the DCRF)."""
        if isinstance(expr, DivergentSet):
            return expr.evaluate_with(self.tx, self.ty, self.tz, self.dcrf)
        if isinstance(expr, ConcreteExpr):
            return expr.values
        return expr.evaluate(self.tx, self.ty, self.tz)

    # ---- divergent writes (§4.6, runtime side) --------------------------

    def _merge_write(self, name: str, new_expr, mask: np.ndarray) -> None:
        full = bool(np.array_equal(mask & self.valid, self.valid))
        old = self.regs.get(name, scalar(0.0))
        if isinstance(new_expr, ConcreteExpr) or \
                isinstance(old, ConcreteExpr):
            if full:
                self.regs[name] = new_expr
            else:
                merged = np.where(mask, self.eval_concrete(new_expr),
                                  self.eval_concrete(old))
                self.regs[name] = ConcreteExpr(merged)
            return
        if full or str(old) == str(new_expr):
            self.regs[name] = new_expr
            return
        cond_id = self._next_cond
        self._next_cond += 1
        self.dcrf[cond_id] = mask.copy()
        self.sm.stats.add("dac.dcrf_writes")
        alternatives = [(cond_id, new_expr)]
        if isinstance(old, DivergentSet):
            alternatives.extend(old.alternatives)
        else:
            alternatives.append((None, old))
        merged = DivergentSet(tuple(alternatives))
        if merged.leaf_count() > MAX_DIVERGENT_TUPLES:
            raise DecoupleRuntimeError(
                f"register {name} exceeded {MAX_DIVERGENT_TUPLES} divergent "
                f"tuples at runtime (compiler bound violated)")
        self.regs[name] = merged

    def _merge_pred_write(self, name: str, pred, mask: np.ndarray) -> None:
        full = bool(np.array_equal(mask & self.valid, self.valid))
        if full:
            self.preds[name] = pred
            return
        new_bits = self.pred_bits(pred)
        old = self.preds.get(name)
        old_bits = (self.pred_bits(old) if old is not None
                    else np.zeros(self.width, dtype=bool))
        merged = np.where(mask, new_bits, old_bits)
        self.preds[name] = ConcretePredicate(merged)

    # ---- stepping ----------------------------------------------------------

    def current_instruction(self) -> Instruction | None:
        if self.done:
            return None
        return self.kernel.instructions[self.stack.pc]

    def effective_mask(self, inst: Instruction) -> np.ndarray:
        mask = self.stack.active_mask & self.valid
        if isinstance(inst.guard, PredReg):
            pred = self.preds.get(inst.guard.name)
            bits = (self.pred_bits(pred) if pred is not None
                    else np.zeros(self.width, dtype=bool))
            mask = mask & (~bits if inst.guard_negated else bits)
        return mask

    def ready(self, now: int) -> bool:
        if self.done:
            return False
        decoded = self.code[self.stack.pc]
        if decoded.is_enq:
            atq = (self.sm.atq_pred if decoded.opcode is Opcode.ENQ_PRED
                   else self.sm.atq_mem)
            return atq.has_space()
        return True

    def step(self, now: int) -> None:
        """Execute one affine-stream instruction (caller checked ready)."""
        inst = self.current_instruction()
        pc = self.stack.pc
        self.last_step_concrete = False
        if inst.is_exit:
            self.done = True
            return
        if inst.is_barrier:
            self.barriers_seen += 1
            marker_a = BarrierMarker(self.barriers_seen)
            marker_b = BarrierMarker(self.barriers_seen)
            self.sm.atq_mem.push(id(self.cta), marker_a)
            self.sm.atq_pred.push(id(self.cta), marker_b)
            self.stack.pc = pc + 1
            return
        if inst.is_branch:
            self._step_branch(inst, pc)
            return
        mask = self.effective_mask(inst)
        if inst.is_enq:
            self._step_enq(inst, mask, now)
            self.stack.pc = pc + 1
            return
        self._step_alu(inst, mask)
        self.stack.pc = pc + 1

    def _step_branch(self, inst: Instruction, pc: int) -> None:
        target = self.kernel.target_index(inst.target)
        if inst.guard is None:
            self.stack.pc = target
            return
        pred = self.preds.get(inst.guard.name)
        if isinstance(pred, AffinePredicate) and pred.is_scalar:
            taken = pred.scalar_value ^ inst.guard_negated
            self.stack.pc = target if taken else pc + 1
            return
        bits = (self.pred_bits(pred) if pred is not None
                else np.zeros(self.width, dtype=bool))
        if inst.guard_negated:
            bits = ~bits
        active = self.stack.active_mask & self.valid
        taken = active & bits
        ntaken = active & ~bits
        if not ntaken.any():
            self.stack.pc = target
        elif not taken.any():
            self.stack.pc = pc + 1
        else:
            rpc = self.cfg.reconvergence_pc(pc)
            self.stack.diverge(taken, ntaken, target, pc + 1, rpc)
            self._count_stack_divergence(taken, ntaken)

    def _count_stack_divergence(self, taken, ntaken) -> None:
        """Two-level Affine SIMT Stack accounting (§4.5): warps that are
        all-taken or all-not-taken only touch the Warp Level Stack; mixed
        warps also write their Per Warp Stack."""
        stats = self.sm.stats
        stats.add("dac.wls_writes")
        # Mixed warps (some taken, some not) in one vectorized pass over the
        # CTA-wide masks; adding the count once is exact (integer-valued
        # float64 accumulation, same sum as per-warp increments).
        n = len(self.cta_warps)
        mixed = (taken[:n * 32].reshape(n, 32).any(axis=1)
                 & ntaken[:n * 32].reshape(n, 32).any(axis=1))
        count = int(np.count_nonzero(mixed))
        if count:
            stats.add("dac.pws_writes", count)
        if self.stack.depth > self.sm.config.dac.stack_depth:
            stats.add("dac.stack_overflows")

    def _step_enq(self, inst: Instruction, mask: np.ndarray,
                  now: int) -> None:
        if not mask.any():
            return
        cta_key = id(self.cta)
        if inst.opcode is Opcode.ENQ_PRED:
            pred = self.preds.get(inst.srcs[0].name)
            if pred is None:
                pred = ConcretePredicate(np.zeros(self.width, dtype=bool))
            entry = TupleEntry("pred", inst.queue_id, pred, mask.copy())
            atq = self.sm.atq_pred
        else:
            expr = self._expr(inst.srcs[0])
            kind = "data" if inst.opcode is Opcode.ENQ_DATA else "addr"
            entry = TupleEntry(kind, inst.queue_id, expr, mask.copy(),
                               space=inst.space)
            entry.dcrf = self.dcrf
            atq = self.sm.atq_mem
        if self.sm.faults.enabled:
            entry = self.sm.faults.on_enqueue(entry)
            if entry is None:
                return                         # injected ATQ drop
        atq.push(cta_key, entry)
        self.sm.stats.add("dac.atq_pushes")
        if self.sm.trace_on:
            self.sm.tracer.enqueue(now, self.sm.index, entry.kind,
                                   inst.queue_id)

    def _step_alu(self, inst: Instruction, mask: np.ndarray) -> None:
        if not mask.any():
            return
        args = [self._expr(op) for op in inst.srcs]
        concrete = False
        if inst.opcode is Opcode.SETP and any(
                isinstance(a, (DivergentSet, ConcreteExpr)) for a in args):
            # Divergent-tuple / concrete operands: the predicate is
            # materialized per thread; the PEU later expands it on the SIMT
            # lanes (§4.6).
            from ..sim.executor import CMP_FUNCS
            lhs, rhs = (self.eval_concrete(a) for a in args)
            result = ConcretePredicate(CMP_FUNCS[inst.cmp](lhs, rhs))
            concrete = True
        else:
            try:
                result = apply_op(inst.opcode, args, inst.cmp)
            except AffineError:
                # §3 fallback: expand to concrete per-thread values and run
                # the operation as an ordinary vector op on the SIMT lanes.
                result = self._concrete_fallback(inst, args)
                concrete = True
        dst = inst.dsts[0]
        if isinstance(dst, PredReg) or isinstance(result,
                                                  (AffinePredicate,
                                                   ConcretePredicate)):
            self._merge_pred_write(dst.name, result, mask)
        else:
            self._merge_write(dst.name, result, mask)
        self.last_step_concrete = concrete

    def _concrete_fallback(self, inst: Instruction, args):
        from ..sim.executor import alu
        values = []
        for arg in args:
            if isinstance(arg, (AffinePredicate, ConcretePredicate)):
                values.append(self.pred_bits(arg))
            else:
                values.append(self.eval_concrete(arg))
        result = alu(inst.opcode, values, inst.cmp)
        if inst.opcode is Opcode.SETP:
            return ConcretePredicate(np.asarray(result, dtype=bool))
        return ConcreteExpr(np.broadcast_to(
            np.asarray(result, dtype=np.float64), (self.width,)).copy())



class AffineWarpHandle:
    """The single per-SM affine warp context; multiplexes the resident
    CTAs' affine streams, round-robin."""

    def __init__(self) -> None:
        self.execs: list[AffineCTAExec] = []
        self._rr = 0

    @property
    def done(self) -> bool:
        """True when no resident affine stream can ever issue again.  The
        batched engine's chain-eligibility check reads this like a warp's
        ``done`` flag (a finished exec stays resident until CTA retire but
        its ``ready`` is permanently False)."""
        for exec_ in self.execs:
            if not exec_.done:
                return False
        return True

    def add(self, exec_: AffineCTAExec) -> None:
        self.execs.append(exec_)

    def remove(self, exec_: AffineCTAExec) -> None:
        self.execs.remove(exec_)

    def pick_ready(self, now: int) -> AffineCTAExec | None:
        n = len(self.execs)
        for i in range(n):
            exec_ = self.execs[(self._rr + i) % n]
            if exec_.ready(now):
                self._rr = (self._rr + i + 1) % max(1, n)
                return exec_
        return None
