"""The DAC-enabled SM: affine warp + expansion units + dequeue gating.

Extends the baseline SM (paper Fig. 9): an affine warp context shares the
ordinary issue slots (DAC has no dedicated affine functional unit, §4.4);
the AEU/PEU run in parallel with warp execution; the scoreboard stage gates
``deq`` instructions on their per-warp queues and on prefetched data being
present in the L1.
"""

from __future__ import annotations

import numpy as np

from ..isa import DeqToken, Instruction, Opcode
from ..sim.launch import CTAState
from ..sim.sm import SM
from ..sim.warp import WarpContext
from .affine_warp import AffineCTAExec, AffineWarpHandle
from .expansion import AddressExpansionUnit, PredicateExpansionUnit
from .queues import ATQ, PerWarpQueue


def _deq_token(inst: Instruction) -> DeqToken | None:
    for op in inst.srcs + inst.dsts:
        if isinstance(op, DeqToken):
            return op
    if isinstance(inst.guard, DeqToken):
        return inst.guard
    return None


def _deq_kind(inst: Instruction) -> str | None:
    token = _deq_token(inst)
    return token.kind if token is not None else None


class DACSM(SM):
    """SM with Decoupled Affine Computation hardware."""

    def __init__(self, gpu, index: int):
        super().__init__(gpu, index)
        dac = self.config.dac
        self.atq_mem = ATQ(dac.atq_entries // 2)
        self.atq_pred = ATQ(dac.atq_entries - dac.atq_entries // 2)
        # Freed ATQ space is what unblocks the affine warp's enqueues; it
        # lives on scheduler 0 (wake it when either queue drains).
        self.atq_mem.on_space = self._wake_affine
        self.atq_pred.on_space = self._wake_affine
        self.aeu = AddressExpansionUnit(self, self.atq_mem)
        self.peu = PredicateExpansionUnit(self, self.atq_pred)
        # A pushed ATQ entry gives the matching expansion unit new work.
        self.atq_mem.on_push = self.aeu.wake
        self.atq_pred.on_push = self.peu.wake
        self.affine_handle = AffineWarpHandle()
        self.schedulers[0].add_warp(self.affine_handle)
        self.affine_execs: dict[int, AffineCTAExec] = {}
        self._pwaq_capacity = max(1, dac.pwaq_entries
                                  // self.config.warps_per_sm)
        self._pwpq_capacity = max(1, dac.pwpq_entries
                                  // self.config.warps_per_sm)

    @property
    def program(self):
        return getattr(self.gpu, "dac_program", None)

    # ---- CTA lifecycle ------------------------------------------------

    def on_cta_assigned(self, cta: CTAState) -> None:
        for warp in self.warps:
            if warp.cta is cta:
                # A record arriving on a per-warp queue is a wake condition
                # for the owning scheduler (the warp may be blocked on an
                # empty queue); ``warp.sched`` was set by add_warp.
                # ... and a popped record frees the space a full-queue-
                # blocked expansion scan waits on.
                warp.pwaq = PerWarpQueue(self._pwaq_capacity,
                                         on_push=_record_wake(warp),
                                         on_pop=self.aeu.wake)
                warp.pwpq = PerWarpQueue(self._pwpq_capacity,
                                         on_push=_record_wake(warp),
                                         on_pop=self.peu.wake)
        program = self.program
        if program is None or not program.is_decoupled:
            return
        key = id(cta)
        self.atq_mem.register_cta(key)
        self.atq_pred.register_cta(key)
        exec_ = AffineCTAExec(self, cta, program.affine,
                              self.gpu.cfg_of(program.affine))
        self.affine_execs[key] = exec_
        self.affine_handle.add(exec_)
        # A fresh affine stream: the affine warp and the expansion units
        # have new work even if they were cached as blocked.
        self.wake_all()

    def on_cta_retired(self, cta: CTAState) -> None:
        key = id(cta)
        exec_ = self.affine_execs.pop(key, None)
        if exec_ is None:
            return
        self.affine_handle.remove(exec_)
        self.atq_mem.drop_cta(key)
        self.atq_pred.drop_cta(key)
        if not exec_.done:
            self.stats.add("dac.affine_unfinished")
        leftover = 0
        for warp in exec_.cta_warps:
            for record in warp.pwaq.drain():
                leftover += 1
                for line in record.locked_lines:
                    self.l1.unlock(line)
            leftover += len(warp.pwpq.drain())
        if leftover:
            self.stats.add("dac.leftover_records", leftover)
        # Unlocked lines free L1 lock-table space an AEU scan can be
        # blocked on (and the drained queues freed record space).
        self.aeu.wake()
        self.peu.wake()
        # The affine handle's readiness changed (one stream is gone); on
        # the walk engine this is just a wake, on the batched engine it
        # also marks the handle's readiness column dirty.
        self.schedulers[0].wake_warp(self.affine_handle)

    # ---- wake plumbing ---------------------------------------------------

    def wake_all(self) -> None:
        super().wake_all()
        self.aeu.wake()
        self.peu.wake()

    def _wake_affine(self) -> None:
        self.schedulers[0].wake_warp(self.affine_handle)

    # ---- batched-engine readiness mirror ---------------------------------

    def tick_units(self) -> list:
        # Intra-cycle rank order of DACSM.cycle: AEU, PEU, then schedulers.
        return [self.aeu, self.peu, *self.schedulers]

    def classify_warp(self, warp) -> tuple[bool, bool, int]:
        """Readiness mirror of the DAC issue paths (:meth:`try_issue`,
        :meth:`_try_issue_affine`, :meth:`_try_issue_deq`) for the batched
        engine's columns — same contract as the base method."""
        if warp is self.affine_handle:
            now = self.gpu.now
            for exec_ in self.affine_handle.execs:
                if exec_.ready(now):
                    return True, False, 0
            return False, False, 0
        if isinstance(warp, WarpContext) and not warp.done \
                and not warp.at_barrier:
            decoded = warp.code[warp.pc]
            if decoded.deq_token is not None:
                if not warp.scoreboard_ready(decoded):
                    return False, False, 0
                mask, active = warp.issue_mask(decoded)
                if not active:
                    return True, False, 0      # predicated-off: issues
                if decoded.deq_kind == "pred":
                    if warp.pwpq.head() is None:
                        return False, False, 1
                    return True, False, 0      # pred deq skips the LSU
                record = warp.pwaq.head()
                if record is None:
                    return False, False, 2
                if record.kind != decoded.deq_kind:
                    return True, False, 0      # issue raises the mismatch
                if decoded.deq_kind == "data" \
                        and record.fills_remaining > 0:
                    return False, False, 3
                return True, True, 0
        return super().classify_warp(warp)

    # ---- cycle -----------------------------------------------------------

    def cycle(self, now: int) -> bool:
        if self.checkers.enabled:
            self.checkers.on_cycle(self, now)
        progressed = False
        if self.affine_execs:
            if self.aeu.tick(now):
                progressed = True
            if self.peu.tick(now):
                progressed = True
        issued = super().cycle(now)
        return issued or progressed

    # ---- issue -------------------------------------------------------------

    def try_issue(self, warp, now: int, scheduler) -> int:
        if warp is self.affine_handle:
            return self._try_issue_affine(now)
        if isinstance(warp, WarpContext) and not warp.done \
                and not warp.at_barrier:
            decoded = warp.code[warp.pc]
            if decoded.deq_token is not None:
                if not warp.scoreboard_ready(decoded):
                    return 0
                return self._try_issue_deq(warp, decoded, now, scheduler)
        return super().try_issue(warp, now, scheduler)

    # ---- stall diagnosis (tracing only; must not mutate) ---------------

    def diagnose_warp(self, warp, now: int) -> str | None:
        if warp is self.affine_handle:
            # The affine warp only blocks on ATQ space for an enqueue
            # (``ready`` is unconditionally True for everything else).
            for exec_ in self.affine_handle.execs:
                if exec_.current_instruction() is not None:
                    return "queue_full"
            return None
        if isinstance(warp, WarpContext) and not warp.done \
                and not warp.at_barrier:
            inst = warp.launch.kernel.instructions[warp.pc]
            kind = _deq_kind(inst)
            if kind is not None:
                if not warp.regs_ready(inst):
                    return "memory" if warp.mem_pending else "scoreboard"
                if kind == "pred":
                    if warp.pwpq.head() is None:
                        return "queue_empty"
                    return "other"
                record = warp.pwaq.head()
                if record is None:
                    return "queue_empty"
                if kind == "data" and record.fills_remaining > 0:
                    return "memory"          # expanded, data not yet in L1
                if now < self.lsu_free:
                    return "memory"
                return "other"
        return super().diagnose_warp(warp, now)

    # ---- affine warp issue ----------------------------------------------

    def _try_issue_affine(self, now: int) -> int:
        exec_ = self.affine_handle.pick_ready(now)
        if exec_ is None:
            return 0
        decoded = exec_.code[exec_.stack.pc]
        inst = decoded.inst
        exec_.step(now)
        stats = self.stats
        stats.add("affine_warp_instructions")
        stats.add(decoded.affine_stat_key)
        if exec_.last_step_concrete:
            # §3 fallback: the value was expanded to concrete per-thread
            # vectors — a full-width vector op over every warp of the CTA.
            warps = len(exec_.cta_warps)
            stats.add("dac.concrete_fallbacks")
            stats.add("affine_alu_lanes", 32 * warps)
            stats.add("rf_accesses", 2 * warps)
            interval = self.config.issue_interval * warps
        else:
            if decoded.counts_alu:
                # Tuple computation maps one base + up to 6 offsets onto
                # SIMT lanes (§4.4, Fig. 12).
                stats.add("affine_alu_lanes", 7)
                stats.add("rf_accesses", 2)
            # Affine instructions occupy a scheduler slot for a single
            # cycle: a tuple fits comfortably in one 16-lane issue group.
            interval = 1
        if self.trace_on:
            self.tracer.warp_issue(now, self.index, -1, inst, 0, interval)
        return interval

    # ---- dequeue issue -------------------------------------------------

    def _try_issue_deq(self, warp: WarpContext, decoded, now: int,
                       scheduler) -> int:
        inst = decoded.inst
        token = decoded.deq_token
        kind = decoded.deq_kind
        mask, active = warp.issue_mask(decoded)
        if not active:
            # Fully predicated off: nothing was expanded for this warp, so
            # nothing is popped (matches the AEU skipping empty warps).
            self._count_issue(warp, decoded, 0)
            warp.stack.pc = warp.pc + 1
            if self.trace_on:
                self.tracer.warp_issue(now, self.index, warp.slot, inst, 0,
                                       self.config.issue_interval)
            return self.config.issue_interval

        if kind == "pred":
            record = warp.pwpq.head()
            if record is None:
                scheduler.note_stall("dac.stall_pred_record")
                return 0
            if self.checkers.enabled:
                self.checkers.check_dequeue(self, warp, token, record)
            warp.pwpq.pop()
            self.stats.add("dac.deq_preds")
            if self.trace_on:
                self.tracer.dequeue(now, self.index, warp.slot, "pred",
                                    record.queue_id)
            dst = inst.dsts[0]
            name = decoded.dst_name
            warp.executor.write(dst, record.bits, mask)
            warp.acquire(name)
            self.events.schedule(
                now + self.config.alu_latency,
                lambda t, w=warp, n=name: w.release(n))
            self._count_issue(warp, decoded, active)
            warp.stack.pc = warp.pc + 1
            if self.trace_on:
                self.tracer.warp_issue(now, self.index, warp.slot, inst,
                                       active,
                                       self.config.issue_interval)
            return self.config.issue_interval

        record = warp.pwaq.head()
        if record is None:
            scheduler.note_stall("dac.stall_no_record")
            return 0
        if self.checkers.enabled:
            self.checkers.check_dequeue(self, warp, token, record)
        if record.kind != kind:
            raise RuntimeError(
                f"PWAQ order mismatch: warp expects {kind}, head is "
                f"{record.kind} (kernel {warp.launch.kernel.name!r})")
        if kind == "data":
            if record.fills_remaining > 0:
                scheduler.note_stall("dac.stall_fill")
                return 0                       # data not yet in L1 (Fig. 9 ⑨)
            if now < self.lsu_free:
                return 0
            warp.pwaq.pop()
            self.stats.add("dac.lead_cycles", now - record.fill_time)
            self.stats.add("dac.issue_to_deq", now - record.issue_time)
            self._finish_deq_load(warp, inst, record, mask, now)
        else:
            if now < self.lsu_free:
                return 0
            warp.pwaq.pop()
            self._finish_deq_store(warp, inst, record, mask, now)
        self._count_issue(warp, decoded, active)
        warp.stack.pc = warp.pc + 1
        if self.trace_on:
            self.tracer.dequeue(now, self.index, warp.slot, record.kind,
                                record.queue_id)
            self.tracer.warp_issue(now, self.index, warp.slot, inst,
                                   active,
                                   self.config.issue_interval)
        return self.config.issue_interval

    def _finish_deq_load(self, warp: WarpContext, inst: Instruction,
                         record, mask, now: int) -> None:
        values = warp.launch.memory.load(record.addrs,
                                         warp.mask_bools(mask))
        dst = inst.dsts[0]
        warp.executor.write(dst, values, mask)
        self.stats.add("dac.deq_loads")
        self.stats.add("dac.deq_load_lines", len(record.lines))
        for line in record.locked_lines:
            self.l1.unlock(line)
        if record.locked_lines:
            # Freed lock-table space can unblock an AEU lock acquisition.
            self.aeu.wake()
        # Idempotent against a duplicated record (fault injection): a second
        # dequeue of the same object must not steal another record's lock.
        record.locked_lines = []
        missing = [line for line in record.lines
                   if not (self.l1.contains(line)
                           or self.l1.in_flight(line))]
        warp.acquire(dst.name)
        warp.mem_pending += 1
        if missing:
            # An unlocked line was evicted between fill and use: re-fetch.
            self.stats.add("dac.deq_refetches", len(missing))
            state = {"remaining": len(missing)}

            def on_line(t, state=state, w=warp, name=dst.name):
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    w.release(name)
                    w.mem_pending -= 1

            for line in missing:
                self.l1.read(line, now, on_line)
        else:
            self.events.schedule(
                now + self.config.l1.hit_latency,
                lambda t, w=warp, n=dst.name: (w.release(n),
                                               _dec_mem(w)))
        self.stats.add("l1.deq_reads", len(record.lines))
        self.lsu_free = now + max(1, len(record.lines))
        if self._engine is not None:
            self._engine.note_lsu(self)

    def _finish_deq_store(self, warp: WarpContext, inst: Instruction,
                          record, mask, now: int) -> None:
        raw = warp.executor.value(inst.srcs[0])
        values = np.broadcast_to(np.asarray(raw, dtype=np.float64),
                                 (warp.width,))
        bools = warp.mask_bools(mask)
        if inst.opcode is Opcode.ATOM:
            warp.launch.memory.atomic_add(record.addrs, values, bools)
        else:
            warp.launch.memory.store(record.addrs, values, bools)
        self.stats.add("dac.deq_stores")
        for line in record.lines:
            self.l1.write(line, now)
        self.lsu_free = now + max(1, len(record.lines))
        if self._engine is not None:
            self._engine.note_lsu(self)


def _dec_mem(warp: WarpContext) -> None:
    warp.mem_pending -= 1


def _record_wake(warp: WarpContext):
    """Targeted per-warp wake closure for queue pushes: the record's
    destination warp is known, so the batched engine can dirty exactly its
    readiness column (the walk engine just clears the sleep cache)."""
    def hook(w=warp):
        sched = w.sched
        if sched is not None:
            sched.wake_warp(w)
    return hook
