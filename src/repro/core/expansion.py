"""Address and Predicate Expansion Units (paper §4.2, §4.3, Fig. 11).

Each unit owns one integer ALU and, every cycle it is free, turns the head
tuple of some CTA's ATQ lane into one per-warp record: the AEU produces a
warp address record (cache-line addresses + word bit masks) and issues the
early, line-locked memory requests for loads; the PEU produces a predicate
bit vector using the cheapest applicable tier (one comparison for scalar
predicates, two for monotonic affine operands, full SIMT expansion
otherwise).
"""

from __future__ import annotations

import numpy as np

from ..affine import AffinePredicate, DivergentSet
from .affine_warp import AffineCTAExec, ConcreteExpr
from .queues import ATQ, AddressRecord, BarrierMarker, PredRecord, TupleEntry


class ExpansionUnit:
    """Shared machinery: CTA round-robin, barrier gating, busy tracking.

    Like the schedulers, a unit whose full scan found nothing processable
    caches that outcome and *sleeps*: the scan's inputs (ATQ heads, barrier
    generations, per-warp queue occupancy, the resident-CTA set) only change
    inside an instruction issue or a CTA assignment, both of which call
    ``DACSM.wake_all``/``wake``.  A blocked scan mutates nothing (the
    round-robin cursor only advances on progress), so skipping it is
    invisible to the timing model.
    """

    # Batched-engine wiring (issue_engine.BatchedState assigns these; the
    # walk engine leaves the defaults, making wake() a single store).
    _engine = None
    _rank = -1
    _bit = 0
    # A busy unit is mid-expansion: its tick reports progress (True), so
    # the batched run loop's skip-while-busy shortcut must count it as
    # issuing (schedulers return False while busy).
    _busy_progress = True

    def __init__(self, sm, atq: ATQ, name: str):
        self.sm = sm
        self.atq = atq
        self.name = name
        self.busy_until = 0
        self._rr = 0
        self._asleep = False

    def wake(self) -> None:
        self._asleep = False
        engine = self._engine
        if engine is not None:
            engine.awake |= self._bit

    def tick(self, now: int) -> bool:
        """One cycle of work.  Returns True when the unit made progress or
        is still mid-expansion (so the GPU loop does not fast-forward past
        it)."""
        if not self.sm.affine_execs:
            # The walk loop (DACSM.cycle) gates expansion ticks on live
            # affine streams; the batched loop ticks units directly, so
            # the same gate lives here (unreachable under the walk).
            self._asleep = True
            return False
        if now < self.busy_until:
            return True
        if self._asleep:
            return False
        keys = self.atq.cta_keys()
        if not keys:
            self._asleep = True
            return False
        for i in range(len(keys)):
            key = keys[(self._rr + i) % len(keys)]
            exec_ = self.sm.affine_execs.get(key)
            if exec_ is None:
                continue
            head = self.atq.head(key)
            if head is None:
                continue
            if isinstance(head, BarrierMarker):
                if exec_.cta.barrier_generation >= head.required_generation:
                    self.atq.pop(key)
                    self._rr = (self._rr + i) % len(keys)
                    return True
                continue                      # gated (§4.2)
            if self._process(head, exec_, key, now):
                self._rr = (self._rr + i) % len(keys)
                return True
        self._asleep = True
        return False

    def _process(self, entry: TupleEntry, exec_: AffineCTAExec,
                 key: int, now: int) -> bool:
        raise NotImplementedError

    def _advance(self, entry: TupleEntry, exec_: AffineCTAExec,
                 key: int) -> None:
        entry.next_warp += 1
        if entry.next_warp >= len(exec_.cta_warps):
            self.atq.pop(key)

    @staticmethod
    def _warp_slice(entry: TupleEntry, warp_index: int) -> np.ndarray:
        return entry.mask[warp_index * 32:(warp_index + 1) * 32]


class AddressExpansionUnit(ExpansionUnit):
    """The AEU: expands address tuples and issues early, locked loads."""

    def __init__(self, sm, atq: ATQ):
        super().__init__(sm, atq, "aeu")

    def _process(self, entry: TupleEntry, exec_: AffineCTAExec,
                 key: int, now: int) -> bool:
        # Skip warps with no active threads: no record, no dequeue.
        while entry.next_warp < len(exec_.cta_warps):
            if self._warp_slice(entry, entry.next_warp).any():
                break
            entry.next_warp += 1
        if entry.next_warp >= len(exec_.cta_warps):
            self.atq.pop(key)
            return True
        warp = exec_.cta_warps[entry.next_warp]
        if warp.pwaq.full():
            return False                       # back-pressure: try other CTAs
        mask = self._warp_slice(entry, entry.next_warp).copy()
        expr = entry.expr
        lane = slice(entry.next_warp * 32, (entry.next_warp + 1) * 32)
        if isinstance(expr, DivergentSet):
            addrs = expr.evaluate_with(exec_.tx, exec_.ty, exec_.tz,
                                       entry.dcrf)[lane]
            self.sm.stats.add("dac.divergent_expansions")
        elif isinstance(expr, ConcreteExpr):
            addrs = expr.values[lane]
            self.sm.stats.add("dac.concrete_expansions")
        else:
            addrs = expr.evaluate(exec_.tx[lane], exec_.ty[lane],
                                  exec_.tz[lane])
        lines, masks = self.sm.coalescer.lines_and_masks(addrs, mask)
        record = AddressRecord(kind=entry.kind, queue_id=entry.queue_id,
                               lines=lines, word_masks=masks, addrs=addrs,
                               mask=mask)
        faults = self.sm.faults
        records = (record,)
        if faults.enabled:
            records = faults.on_address_record(record)
            if not records:
                # Injected drop: the ALU work happened but the record is
                # lost before delivery (and before any early request).
                self.busy_until = now + faults.expansion_busy(
                    max(1, len(lines)))
                self._advance(entry, exec_, key)
                return True
            record = records[0]
        stats = self.sm.stats
        stats.add("dac.records")
        if entry.kind == "data":
            record.fills_remaining = len(lines)
            stats.add("dac.affine_loads")
            stats.add("dac.affine_load_lines", len(lines))
            for line in lines:
                lock = self.sm.config.dac.lock_lines \
                    and self.sm.l1.can_lock(line)
                if lock:
                    record.locked_lines.append(line)
                else:
                    stats.add("dac.lock_denied")
                self.sm.l1.read(
                    line, now,
                    lambda t, r=record, w=warp: self._on_fill(r, w, t),
                    lock=lock)
            record.issue_time = now
        else:
            stats.add("dac.affine_store_records")
        warp.pwaq.push(record)
        for extra in records[1:]:
            # Injected duplicate delivery (dropped silently when the warp's
            # queue has no room, as real duplicated state would be).
            if not warp.pwaq.full():
                warp.pwaq.push(extra)
        # One ALU: one accumulated line address per cycle (Fig. 11 ②③).
        busy = max(1, len(lines))
        if faults.enabled:
            busy = faults.expansion_busy(busy)
        self.busy_until = now + busy
        stats.add("dac.aeu_alu_cycles", max(1, len(lines)))
        if self.sm.trace_on:
            self.sm.tracer.expand(now, self.sm.index, warp.slot, entry.kind,
                                  entry.queue_id, len(lines))
        self._advance(entry, exec_, key)
        return True

    def _on_fill(self, record: AddressRecord, warp, now: int) -> None:
        record.fills_remaining -= 1
        record.fill_time = max(record.fill_time, now)
        # The destination warp may be cached as blocked on this record's
        # outstanding fills: every fill re-checks (conservative but cheap;
        # the batched engine additionally dirties the warp's column).
        sched = warp.sched
        if sched is not None:
            sched.wake_warp(warp)
        if record.fills_remaining == 0 and self.sm.trace_on:
            self.sm.tracer.record_fill(now, self.sm.index, record.queue_id)


class PredicateExpansionUnit(ExpansionUnit):
    """The PEU: expands predicates with the scalar / endpoint / SIMT tiers."""

    def __init__(self, sm, atq: ATQ):
        super().__init__(sm, atq, "peu")

    def _process(self, entry: TupleEntry, exec_: AffineCTAExec,
                 key: int, now: int) -> bool:
        pred = entry.expr
        stats = self.sm.stats
        if isinstance(pred, AffinePredicate) and pred.is_scalar:
            # One comparison covers the whole block (64% case, §4.3) —
            # push every warp's record this cycle.
            value = pred.scalar_value
            for w, warp in enumerate(exec_.cta_warps):
                mask = self._warp_slice(entry, w)
                if not mask.any():
                    continue
                if warp.pwpq.full():
                    return False
            faults = self.sm.faults
            # One shared uniform bit vector serves every warp's record:
            # consumers only read it, and the fault layer copies before
            # mutating (faults/plan.py), so aliasing is unobservable.
            bits = np.full(32, value)
            for w, warp in enumerate(exec_.cta_warps):
                mask = self._warp_slice(entry, w)
                if not mask.any():
                    continue
                record = PredRecord(entry.queue_id, bits, mask.copy())
                if faults.enabled:
                    record = faults.on_pred_record(record)
                warp.pwpq.push(record)
                stats.add("dac.pred_records")
                stats.add("dac.peu_scalar")
            self.atq.pop(key)
            self.busy_until = now + (faults.expansion_busy(1)
                                     if faults.enabled else 1)
            stats.add("dac.peu_alu_cycles")
            return True

        # Non-scalar: one warp per ALU slot.
        while entry.next_warp < len(exec_.cta_warps):
            if self._warp_slice(entry, entry.next_warp).any():
                break
            entry.next_warp += 1
        if entry.next_warp >= len(exec_.cta_warps):
            self.atq.pop(key)
            return True
        warp = exec_.cta_warps[entry.next_warp]
        if warp.pwpq.full():
            return False
        w = entry.next_warp
        mask = self._warp_slice(entry, w).copy()
        if entry.bits is None:
            entry.bits = exec_.pred_bits(pred)
        bits = entry.bits[w * 32:(w + 1) * 32].copy()
        cost = 2
        if isinstance(pred, AffinePredicate):
            lane = slice(w * 32, (w + 1) * 32)
            first = (exec_.tx[lane][0], exec_.ty[lane][0], exec_.tz[lane][0])
            last = (exec_.tx[lane][-1], exec_.ty[lane][-1],
                    exec_.tz[lane][-1])
            uniform = pred.endpoint_uniform(first, last)
            if uniform is not None:
                cost = 1                       # 2 comparisons, 93% case
                self.sm.stats.add("dac.peu_endpoint")
            else:
                self.sm.stats.add("dac.peu_simt")
        else:
            self.sm.stats.add("dac.peu_simt")
        record = PredRecord(entry.queue_id, bits, mask)
        faults = self.sm.faults
        if faults.enabled:
            record = faults.on_pred_record(record)
        warp.pwpq.push(record)
        self.sm.stats.add("dac.pred_records")
        self.busy_until = now + (faults.expansion_busy(cost)
                                 if faults.enabled else cost)
        self.sm.stats.add("dac.peu_alu_cycles", cost)
        self._advance(entry, exec_, key)
        return True
