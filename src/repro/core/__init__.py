"""Decoupled Affine Computation: the paper's primary contribution.

``run_dac`` is the one-call entry point: it compiles the kernel into affine
and non-affine streams and simulates it on a DAC-enabled GPU.
"""

from __future__ import annotations

from ..compiler.decouple import DecoupledProgram, decouple
from ..compiler.verifier import verify
from ..config import GPUConfig
from ..sim.gpu import GPU, RunResult
from ..sim.launch import KernelLaunch
from .affine_warp import AffineCTAExec, AffineWarpHandle, ConcretePredicate, \
    DecoupleRuntimeError
from .dac_sm import DACSM
from .expansion import AddressExpansionUnit, PredicateExpansionUnit
from .queues import ATQ, AddressRecord, BarrierMarker, PerWarpQueue, \
    PredRecord, TupleEntry


def run_dac(launch: KernelLaunch, config: GPUConfig,
            program: DecoupledProgram | None = None,
            tracer=None) -> RunResult:
    """Decouple the launch's kernel and simulate it under DAC.

    When the kernel has no eligible affine instructions the non-affine
    stream equals the original kernel and DAC behaves as the baseline —
    exactly the paper's low-coverage benchmarks (BFS, BT).
    """
    if program is None:
        program = decouple(launch.kernel)
        report = verify(program)
        if not report.ok:
            raise RuntimeError(f"decoupler produced inconsistent streams "
                               f"for {launch.kernel.name!r}:\n{report}")
    gpu = GPU(config.with_technique("dac"), dac_program=program,
              tracer=tracer)
    decoupled_launch = KernelLaunch(
        kernel=program.nonaffine,
        grid_dim=launch.grid_dim,
        block_dim=launch.block_dim,
        params=launch.params,
        memory=launch.memory,
        shared_words=launch.shared_words,
    )
    result = gpu.run(decoupled_launch)
    result.extra["program"] = program
    return result


__all__ = [
    "ATQ", "AddressExpansionUnit", "AddressRecord", "AffineCTAExec",
    "AffineWarpHandle", "BarrierMarker", "ConcretePredicate", "DACSM",
    "DecoupleRuntimeError", "DecoupledProgram", "PerWarpQueue",
    "PredRecord", "PredicateExpansionUnit", "TupleEntry", "decouple",
    "run_dac",
]
