"""Decoupled Affine Computation: the paper's primary contribution.

``run_dac`` is the one-call entry point: it compiles the kernel into affine
and non-affine streams and simulates it on a DAC-enabled GPU.
"""

from __future__ import annotations

from ..compiler.decouple import DecoupledProgram, decouple
from ..compiler.verifier import verify
from ..config import GPUConfig
from ..faults import CheckerError
from ..sim.gpu import GPU, RunResult, SimulationHang
from ..sim.launch import KernelLaunch
from .affine_warp import AffineCTAExec, AffineWarpHandle, ConcretePredicate, \
    DecoupleRuntimeError
from .dac_sm import DACSM
from .expansion import AddressExpansionUnit, PredicateExpansionUnit
from .queues import ATQ, AddressRecord, BarrierMarker, PerWarpQueue, \
    PredRecord, TupleEntry


def run_dac(launch: KernelLaunch, config: GPUConfig,
            program: DecoupledProgram | None = None,
            tracer=None, faults=None, checkers=None,
            safe_mode: bool = False) -> RunResult:
    """Decouple the launch's kernel and simulate it under DAC.

    When the kernel has no eligible affine instructions the non-affine
    stream equals the original kernel and DAC behaves as the baseline —
    exactly the paper's low-coverage benchmarks (BFS, BT).

    ``safe_mode=True`` adds graceful degradation: if a runtime checker
    fires, the affine machinery wedges the queues (:class:`SimulationHang`),
    or the affine warp trips a :class:`DecoupleRuntimeError`, the partially
    mutated memory image is rolled back and the launch replays
    non-decoupled on the baseline SM.  The replay's stats carry a
    ``dac.fallbacks`` count and the result records the triggering fault in
    ``extra["fallback_reason"]``.
    """
    if program is None:
        program = decouple(launch.kernel)
        report = verify(program)
        if not report.ok:
            raise RuntimeError(f"decoupler produced inconsistent streams "
                               f"for {launch.kernel.name!r}:\n{report}")
    gpu = GPU(config.with_technique("dac"), dac_program=program,
              tracer=tracer, faults=faults, checkers=checkers)
    decoupled_launch = KernelLaunch(
        kernel=program.nonaffine,
        grid_dim=launch.grid_dim,
        block_dim=launch.block_dim,
        params=launch.params,
        memory=launch.memory,
        shared_words=launch.shared_words,
    )
    snapshot = launch.memory.words.copy() if safe_mode else None
    try:
        result = gpu.run(decoupled_launch)
    except (CheckerError, SimulationHang, DecoupleRuntimeError) as exc:
        if not safe_mode:
            raise
        # Drain DAC state by abandoning the wedged GPU instance, restore
        # the pristine memory image, and replay non-decoupled.
        launch.memory.words[:] = snapshot
        from ..sim.gpu import simulate
        result = simulate(launch, config.with_technique("baseline"))
        result.stats.add("dac.fallbacks")
        result.extra["fallback_reason"] = f"{type(exc).__name__}: {exc}"
        result.extra["program"] = program
        return result
    result.extra["program"] = program
    return result


__all__ = [
    "ATQ", "AddressExpansionUnit", "AddressRecord", "AffineCTAExec",
    "AffineWarpHandle", "BarrierMarker", "ConcretePredicate", "DACSM",
    "DecoupleRuntimeError", "DecoupledProgram", "PerWarpQueue",
    "PredRecord", "PredicateExpansionUnit", "TupleEntry", "decouple",
    "run_dac",
]
