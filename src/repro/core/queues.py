"""DAC hardware queues: ATQ, PWAQ, PWPQ (paper Fig. 9, Table 1).

The Affine Tuple Queue buffers enqueued tuples until the expansion units
process them; the Per-Warp Address/Predicate Queues hold expanded records
until each non-affine warp dequeues them.  Queue capacities are the source
of back-pressure that bounds how far the affine warp runs ahead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TupleEntry:
    """One ATQ entry: an affine tuple (or predicate) awaiting expansion."""

    kind: str                       # 'data' | 'addr' | 'pred'
    queue_id: int
    expr: object                    # AffineExpr or a predicate object
    mask: np.ndarray                # active threads over the whole CTA
    space: object = None            # MemSpace for data/addr entries
    next_warp: int = 0              # expansion progress cursor
    bits: np.ndarray | None = None  # cached predicate evaluation
    dcrf: dict | None = None        # divergent-condition bits (§4.6)


@dataclass
class BarrierMarker:
    """ATQ marker emitted by the affine warp's replicated barrier: the
    expansion units may not process entries past it until the CTA's
    non-affine warps have passed the matching barrier (§4.2)."""

    required_generation: int


@dataclass
class AddressRecord:
    """One PWAQ entry: a warp's compactly-encoded memory access (line
    addresses + word bit masks, paper Fig. 11 ⑤)."""

    kind: str                       # 'data' | 'addr'
    queue_id: int
    lines: list[int]
    word_masks: list[int]
    addrs: np.ndarray               # concrete per-thread byte addresses
    mask: np.ndarray                # active threads of this warp
    fills_remaining: int = 0        # outstanding early requests (data only)
    locked_lines: list[int] = field(default_factory=list)
    issue_time: int = 0             # when the AEU sent the early requests
    fill_time: int = 0              # when the last early request returned


@dataclass
class PredRecord:
    """One PWPQ entry: a warp's predicate bit vector."""

    queue_id: int
    bits: np.ndarray
    mask: np.ndarray


class ATQ:
    """Affine Tuple Queue: per-CTA FIFOs sharing one entry budget, so the
    expansion units can switch among CTAs (§4.2 'one accumulated address
    register for each concurrent CTA')."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._queues: dict[int, deque] = {}
        self._count = 0
        # Wake hooks: freed entry space unblocks the affine warp's enqueues;
        # a pushed entry (tuple or barrier marker) gives the expansion unit
        # draining this ATQ new work.  The owning DACSM wires both.
        self.on_space = None
        self.on_push = None

    def register_cta(self, cta_key: int) -> None:
        self._queues.setdefault(cta_key, deque())

    def drop_cta(self, cta_key: int) -> list:
        leftovers = list(self._queues.pop(cta_key, ()))
        freed = sum(1 for e in leftovers if isinstance(e, TupleEntry))
        self._count -= freed
        if freed and self.on_space is not None:
            self.on_space()
        return leftovers

    def has_space(self) -> bool:
        return self._count < self.capacity

    def push(self, cta_key: int, entry) -> None:
        if isinstance(entry, TupleEntry):
            if not self.has_space():
                raise RuntimeError("ATQ overflow (caller must check)")
            self._count += 1
        self._queues[cta_key].append(entry)
        if self.on_push is not None:
            self.on_push()

    def head(self, cta_key: int):
        queue = self._queues.get(cta_key)
        return queue[0] if queue else None

    def pop(self, cta_key: int):
        entry = self._queues[cta_key].popleft()
        if isinstance(entry, TupleEntry):
            self._count -= 1
            if self.on_space is not None:
                self.on_space()
        return entry

    def cta_keys(self) -> list[int]:
        return list(self._queues)

    def recount(self) -> int:
        """Entries actually resident, walked from the structures (the
        runtime checkers compare this against the shared budget counter)."""
        return sum(sum(1 for e in q if isinstance(e, TupleEntry))
                   for q in self._queues.values())

    def __len__(self) -> int:
        return self._count


class PerWarpQueue:
    """A bounded FIFO attached to one non-affine warp (PWAQ or PWPQ).

    ``on_push`` is the wake hook for the owning warp's scheduler: a record
    arriving is exactly what a blocked dequeue instruction waits on.
    ``on_pop`` wakes the producing expansion unit: freed space is what a
    full-queue-blocked expansion scan waits on.
    """

    def __init__(self, capacity: int, on_push=None, on_pop=None):
        self.capacity = capacity
        self._items: deque = deque()
        self.on_push = on_push
        self.on_pop = on_pop

    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item) -> None:
        if self.full():
            raise RuntimeError("per-warp queue overflow (caller must check)")
        self._items.append(item)
        if self.on_push is not None:
            self.on_push()

    def head(self):
        return self._items[0] if self._items else None

    def pop(self):
        item = self._items.popleft()
        if self.on_pop is not None:
            self.on_pop()
        return item

    def __len__(self) -> int:
        return len(self._items)

    def drain(self) -> list:
        items = list(self._items)
        self._items.clear()
        if items and self.on_pop is not None:
            self.on_pop()
        return items
