"""Runtime architectural checkers for the DAC queues and expansion units.

:mod:`repro.compiler.verifier` proves queue discipline *statically* — every
``enq`` pairs with matching ``deq``s in matching order.  These monitors
promote the same invariants into optional *dynamic* guards, checked while
the simulation runs, so a microarchitectural fault (injected or real) that
violates them is caught at the first bad dequeue instead of surfacing
cycles later as wrong memory or a wedged warp:

* **queue order** — the record at a per-warp queue head carries exactly the
  ``queue_id`` and kind the consuming ``deq`` instruction names.
* **expansion consistency** — an address record's compact encoding (line
  addresses + word bit masks) re-derives from its per-thread addresses;
  the AEU and the non-affine warp agree on what memory is touched.
* **queue invariants** — shared ATQ budget matches the entries actually
  resident, capacities are respected, fill counts never go negative.

Checkers are passive: they never mutate simulator state and add no stats,
so an enabled checker changes neither timing nor results on a healthy run.
Like the fault injector, the null object is a fast path — every call site
is guarded by ``checkers.enabled``.
"""

from __future__ import annotations

from ..memory.coalescer import coalesce, word_mask


class CheckerError(RuntimeError):
    """A runtime architectural checker caught an invariant violation."""

    def __init__(self, check: str, detail: str):
        super().__init__(f"[{check}] {detail}")
        self.check = check
        self.detail = detail


class NullCheckers:
    """Do-nothing checker set installed by default (the fast path)."""

    enabled = False
    __slots__ = ()

    def check_dequeue(self, sm, warp, token, record) -> None:
        pass

    def on_cycle(self, sm, now: int) -> None:
        pass


NULL_CHECKERS = NullCheckers()


class RuntimeCheckers:
    """Per-cycle and per-dequeue invariant monitors for one simulation."""

    enabled = True

    def check_dequeue(self, sm, warp, token, record) -> None:
        """Validate the record a ``deq`` is about to consume (pre-pop)."""
        if record.queue_id != token.queue_id:
            raise CheckerError(
                "queue_order",
                f"sm{sm.index} warp slot {warp.slot}: deq expects queue "
                f"{token.queue_id}, head record is for queue "
                f"{record.queue_id}")
        kind = getattr(record, "kind", "pred")
        if kind != token.kind:
            raise CheckerError(
                "queue_order",
                f"sm{sm.index} warp slot {warp.slot}: deq expects a "
                f"{token.kind} record, head is {kind}")
        if kind == "pred":
            return
        if record.fills_remaining < 0:
            raise CheckerError(
                "queue_invariant",
                f"sm{sm.index} warp slot {warp.slot}: record for queue "
                f"{record.queue_id} has fills_remaining="
                f"{record.fills_remaining}")
        lines = coalesce(record.addrs, record.mask)
        if lines != record.lines:
            raise CheckerError(
                "expansion_consistency",
                f"sm{sm.index} warp slot {warp.slot}: record lines "
                f"{[hex(l) for l in record.lines]} != coalesce of its "
                f"addresses {[hex(l) for l in lines]}")
        masks = [word_mask(line, record.addrs, record.mask)
                 for line in lines]
        if masks != record.word_masks:
            raise CheckerError(
                "expansion_consistency",
                f"sm{sm.index} warp slot {warp.slot}: record word masks "
                f"disagree with its addresses for queue {record.queue_id}")

    def on_cycle(self, sm, now: int) -> None:
        """Queue-structure invariants, checked on every simulated cycle of
        a DAC SM."""
        for name, atq in (("atq_mem", sm.atq_mem), ("atq_pred",
                                                    sm.atq_pred)):
            count = len(atq)
            if count > atq.capacity:
                raise CheckerError(
                    "queue_invariant",
                    f"sm{sm.index} {name} holds {count} entries, "
                    f"capacity {atq.capacity} (cycle {now})")
            actual = atq.recount()
            if count != actual:
                raise CheckerError(
                    "queue_invariant",
                    f"sm{sm.index} {name} budget counter {count} != "
                    f"{actual} resident entries (cycle {now})")
        for warp in sm.warps:
            pwaq = getattr(warp, "pwaq", None)
            if pwaq is None:
                continue
            for qname, queue in (("pwaq", pwaq), ("pwpq", warp.pwpq)):
                if len(queue) > queue.capacity:
                    raise CheckerError(
                        "queue_invariant",
                        f"sm{sm.index} warp slot {warp.slot} {qname} "
                        f"holds {len(queue)} records, capacity "
                        f"{queue.capacity} (cycle {now})")
            head = pwaq.head()
            if head is not None and getattr(head, "fills_remaining", 0) < 0:
                raise CheckerError(
                    "queue_invariant",
                    f"sm{sm.index} warp slot {warp.slot} pwaq head has "
                    f"fills_remaining={head.fills_remaining} (cycle {now})")
