"""Detect-or-survive fault campaigns over the differential fuzz corpus.

The resilience contract: under any injected microarchitectural fault the
simulator must either **detect** the corruption (a runtime checker fires,
the machine wedges into a :class:`SimulationHang`, or the final memory
image differs from the functional oracle — all of which an experiment
harness can observe) or **survive** it (the run completes with a
bit-identical memory image, e.g. timing-only faults).  What is never
acceptable is a *silent* failure: an unbounded hang, or an unclassified
crash deep inside the model.

:func:`run_case` runs one (seed, fault) cell and classifies it;
:func:`run_campaign` sweeps seeds × fault classes and aggregates.  The
fuzz generator only emits kernels with deterministic memory images, so
the functional interpreter is a bit-exact oracle throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GPUConfig
from ..sim.functional import run_functional
from ..sim.gpu import SimulationHang
from ..workloads.fuzz import build_fuzz_launch
from .checkers import CheckerError, RuntimeCheckers
from .plan import FAULT_CLASSES, FaultPlan

#: Outcome taxonomy.  Everything except ``error`` honours the contract.
OUTCOMES = (
    "detected-checker",    # a runtime checker (or DAC runtime guard) fired
    "detected-hang",       # the machine wedged; SimulationHang reported it
    "detected-oracle",     # run completed but memory differs from oracle
    "survived",            # bit-identical memory despite the fault
    "fallback",            # safe mode replayed non-decoupled successfully
    "not-triggered",       # the kernel never reached the fault site
    "error",               # silent/unclassified failure — a repro bug
)


@dataclass(frozen=True)
class FaultOutcome:
    """One campaign cell: what happened when `kind` hit seed `seed`."""

    seed: int
    kind: str
    index: int
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome != "error"


@dataclass
class CampaignReport:
    outcomes: list = field(default_factory=list)

    def counts(self) -> dict[str, dict[str, int]]:
        """``{kind: {outcome: n}}`` over every recorded cell."""
        table: dict[str, dict[str, int]] = {}
        for cell in self.outcomes:
            per = table.setdefault(cell.kind, {})
            per[cell.outcome] = per.get(cell.outcome, 0) + 1
        return table

    def errors(self) -> list:
        return [c for c in self.outcomes if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def render(self) -> str:
        lines = ["fault campaign: detect-or-survive",
                 f"  cells: {len(self.outcomes)}"]
        table = self.counts()
        width = max((len(k) for k in table), default=4)
        for kind in sorted(table):
            per = table[kind]
            cells = ", ".join(f"{out}={per[out]}"
                              for out in OUTCOMES if out in per)
            lines.append(f"  {kind:<{width}}  {cells}")
        errs = self.errors()
        if errs:
            lines.append(f"  SILENT FAILURES: {len(errs)}")
            for cell in errs[:10]:
                lines.append(f"    seed {cell.seed} {cell.kind}[{cell.index}]"
                             f": {cell.detail}")
        else:
            lines.append("  no silent failures")
        return "\n".join(lines)


def _campaign_config(max_cycles: int) -> GPUConfig:
    # One SM keeps the fuzz kernels small and the hang bound tight.
    return GPUConfig(num_sms=1, max_cycles=max_cycles)


def run_case(seed: int, kind: str, index: int = 0, magnitude: int = 1,
             *, safe_mode: bool = False, checkers: bool = True,
             max_cycles: int = 300_000) -> FaultOutcome:
    """Inject one fault into one fuzz kernel under DAC and classify the
    result against the functional oracle."""
    from ..core import DecoupleRuntimeError, run_dac

    oracle = build_fuzz_launch(seed)
    run_functional(oracle)

    launch = build_fuzz_launch(seed)
    config = _campaign_config(max_cycles)
    injector = FaultPlan.single(kind, index, magnitude).injector()
    guard = RuntimeCheckers() if checkers else None

    def cell(outcome: str, detail: str = "") -> FaultOutcome:
        return FaultOutcome(seed, kind, index, outcome, detail)

    try:
        result = run_dac(launch, config, faults=injector, checkers=guard,
                         safe_mode=safe_mode)
    except CheckerError as exc:
        return cell("detected-checker", str(exc))
    except SimulationHang as exc:
        return cell("detected-hang", exc.reason)
    except DecoupleRuntimeError as exc:
        return cell("detected-checker", f"DecoupleRuntimeError: {exc}")
    except Exception as exc:                       # the contract's red line
        return cell("error", f"{type(exc).__name__}: {exc}")

    if "fallback_reason" in result.extra:
        if np.array_equal(oracle.memory.words, launch.memory.words):
            return cell("fallback", result.extra["fallback_reason"])
        return cell("error", "safe-mode replay produced a corrupt image: "
                    + result.extra["fallback_reason"])
    if injector.fired() == 0:
        return cell("not-triggered")
    if np.array_equal(oracle.memory.words, launch.memory.words):
        return cell("survived")
    diff = np.nonzero(oracle.memory.words != launch.memory.words)[0]
    return cell("detected-oracle",
                f"memory differs at words {diff[:8].tolist()}")


def run_campaign(seeds, classes=FAULT_CLASSES, index: int = 0,
                 magnitude: int = 1, *, safe_mode: bool = False,
                 checkers: bool = True, max_cycles: int = 300_000,
                 progress=None) -> CampaignReport:
    """Sweep seeds × fault classes; every cell must detect or survive."""
    report = CampaignReport()
    seeds = list(seeds)
    total = len(seeds) * len(classes)
    for seed in seeds:
        for kind in classes:
            cell = run_case(seed, kind, index, magnitude,
                            safe_mode=safe_mode, checkers=checkers,
                            max_cycles=max_cycles)
            report.outcomes.append(cell)
            if progress is not None:
                progress(len(report.outcomes), total, cell)
    return report
