"""Deterministic, seeded microarchitectural fault injection.

A :class:`FaultPlan` names *which* fault fires and *when* — ``(kind,
index, magnitude)`` triples where ``index`` counts dynamic events of that
kind — so a faulted run is exactly reproducible from ``(kernel seed, fault
plan)``.  The simulator calls the plan's :class:`FaultInjector` through
explicit hooks at the points the paper's correctness story depends on
(PAPER.md §4): ATQ enqueue, AEU/PEU expansion, per-warp record delivery,
cache fills, and DRAM responses.

The null injector is a fast path exactly like the null tracer: every hook
site is guarded by ``faults.enabled``, so fault-free runs execute the same
instruction stream (and produce bit-identical :class:`Stats`) as before the
subsystem existed.

Fault classes
-------------

===================  ======================================================
``tuple_corrupt``    perturb an affine tuple's base (and stride) at enqueue
``atq_drop``         drop an ATQ entry at enqueue (never expanded)
``record_corrupt``   perturb an expanded PWAQ record's thread addresses
``record_drop``      drop an expanded record (the warp's dequeue starves)
``record_dup``       deliver an expanded record twice (duplicated expansion)
``pred_corrupt``     flip bits in an expanded PWPQ predicate record
``expand_delay``     stretch one expansion's ALU busy window
``cache_tag_flip``   flip a tag bit of the line just filled into a cache
``dram_delay``       delay one DRAM read response
===================  ======================================================

Every class is *detect-or-survive* by construction of the checkers, the
hang detector, and the safe-mode fallback: drops starve a dequeue and
surface as a structured :class:`~repro.sim.gpu.SimulationHang`; corruptions
either trip a :class:`~repro.faults.checkers.CheckerError` or change the
memory image (caught by the differential oracle); delays and tag flips only
perturb timing.  :mod:`repro.faults.campaign` asserts this over a seeded
fuzz population.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Every injectable fault class, in campaign rotation order.
FAULT_CLASSES = (
    "tuple_corrupt",
    "atq_drop",
    "record_corrupt",
    "record_drop",
    "record_dup",
    "pred_corrupt",
    "expand_delay",
    "cache_tag_flip",
    "dram_delay",
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire on the ``index``-th dynamic event of
    ``kind``; ``magnitude`` scales the payload (delay cycles, bit position,
    address perturbation in words)."""

    kind: str
    index: int
    magnitude: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {self.kind!r}; choose "
                             f"from {FAULT_CLASSES}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults to inject into one simulation."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def single(cls, kind: str, index: int = 0,
               magnitude: int = 1, seed: int = 0) -> "FaultPlan":
        return cls(specs=(FaultSpec(kind, index, magnitude),), seed=seed)

    @classmethod
    def random(cls, seed: int, classes=FAULT_CLASSES,
               count: int = 1, max_index: int = 4) -> "FaultPlan":
        """A deterministic plan derived from ``seed``: ``count`` faults,
        classes rotated from the seed, early dynamic indices so the faults
        actually fire on small kernels."""
        rng = np.random.default_rng(seed)
        classes = tuple(classes)
        specs = []
        for i in range(count):
            kind = classes[(seed + i) % len(classes)]
            specs.append(FaultSpec(kind,
                                   int(rng.integers(0, max_index)),
                                   int(rng.integers(1, 4))))
        return cls(specs=tuple(specs), seed=seed)

    def injector(self) -> "FaultInjector | NullFaultInjector":
        """The runtime hook object for one GPU instance.  An empty plan
        yields the shared null injector (the fast path)."""
        if not self.specs:
            return NULL_FAULTS
        return FaultInjector(self)


class NullFaultInjector:
    """Do-nothing injector installed by default.  ``enabled`` is False so
    hot paths skip the hooks entirely; the methods still exist so cold
    paths may call them unguarded."""

    enabled = False
    __slots__ = ()

    #: Chronological ``(kind, detail)`` log of fired faults (always empty
    #: here; class attribute so the null object stays stateless).
    log: tuple = ()

    def attach(self, gpu) -> None:
        pass

    def on_enqueue(self, entry):
        return entry

    def on_address_record(self, record):
        return (record,)

    def on_pred_record(self, record):
        return record

    def expansion_busy(self, cycles: int) -> int:
        return cycles

    def cache_fill(self, cache, line_addr: int) -> None:
        pass

    def dram_delay(self) -> int:
        return 0

    def fired(self, kind: str | None = None) -> int:
        return 0


NULL_FAULTS = NullFaultInjector()


class FaultInjector:
    """Runtime state of one :class:`FaultPlan` over one simulation.

    Each hook counts its dynamic events; when the count matches an armed
    :class:`FaultSpec` the fault fires exactly once and is logged.  All
    perturbations are word-aligned and positive so corrupted addresses stay
    inside the device-memory image (a wild pointer would crash the
    functional layer rather than model a microarchitectural fault).
    """

    enabled = True

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._armed: dict[str, dict[int, FaultSpec]] = {}
        for spec in plan.specs:
            self._armed.setdefault(spec.kind, {})[spec.index] = spec
        self._counts: dict[str, int] = {}
        self.log: list[tuple[str, str]] = []
        self._gpu = None

    def attach(self, gpu) -> None:
        """Bind the owning GPU so fired faults land on its trace timeline
        (as ``fault.<kind>`` instant events) with the firing cycle."""
        self._gpu = gpu

    def _note(self, event: tuple[str, str]) -> None:
        self.log.append(event)
        gpu = self._gpu
        if gpu is not None and gpu.tracer.enabled:
            gpu.tracer.fault(gpu.now, event[0], event[1])

    def fired(self, kind: str | None = None) -> int:
        """How many faults actually fired (optionally of one class)."""
        if kind is None:
            return len(self.log)
        return sum(1 for k, _ in self.log if k == kind)

    def _match(self, kind: str) -> FaultSpec | None:
        armed = self._armed.get(kind)
        if armed is None:
            return None
        count = self._counts.get(kind, 0)
        self._counts[kind] = count + 1
        return armed.get(count)

    # ---- affine-warp enqueue (ATQ) ------------------------------------

    def on_enqueue(self, entry):
        """Called with every :class:`TupleEntry` the affine warp is about
        to push; returns the (possibly corrupted) entry, or ``None`` to
        drop it."""
        if entry.kind in ("data", "addr"):
            spec = self._match("tuple_corrupt")
            if spec is not None:
                corrupted = self._corrupt_expr(entry.expr, spec)
                if corrupted is not None:
                    entry.expr = corrupted
                    self._note(("tuple_corrupt",
                                     f"queue {entry.queue_id}"))
        spec = self._match("atq_drop")
        if spec is not None:
            self._note(("atq_drop", f"{entry.kind} entry for "
                             f"queue {entry.queue_id}"))
            return None
        return entry

    @staticmethod
    def _corrupt_expr(expr, spec: FaultSpec):
        """A word-aligned perturbation of an affine tuple (base, and stride
        for magnitude > 1) or of already-concrete per-thread values.
        Returns None when the expression form is not corruptible."""
        from ..affine import AffineTuple
        from ..core.affine_warp import ConcreteExpr
        if isinstance(expr, AffineTuple):
            if spec.magnitude > 1 and not expr.is_mod:
                return replace(expr, base=expr.base + 4.0,
                               offsets=tuple(o + 4.0 if o else o
                                             for o in expr.offsets))
            return replace(expr, base=expr.base + 4.0 * spec.magnitude)
        if isinstance(expr, ConcreteExpr):
            return ConcreteExpr(expr.values + 4.0 * spec.magnitude)
        return None

    # ---- expansion-unit output (PWAQ / PWPQ) --------------------------

    def on_address_record(self, record):
        """Called with every expanded :class:`AddressRecord` before it is
        delivered; returns the sequence of records to deliver (empty =
        dropped, two identical = duplicated expansion)."""
        spec = self._match("record_corrupt")
        if spec is not None:
            record.addrs = record.addrs + 4.0 * spec.magnitude
            self._note(("record_corrupt", f"queue {record.queue_id}"))
        spec = self._match("record_drop")
        if spec is not None:
            self._note(("record_drop", f"{record.kind} record for "
                             f"queue {record.queue_id}"))
            return ()
        spec = self._match("record_dup")
        if spec is not None:
            self._note(("record_dup", f"queue {record.queue_id}"))
            return (record, record)
        return (record,)

    def on_pred_record(self, record):
        """Called with every expanded :class:`PredRecord`; may flip bits."""
        spec = self._match("pred_corrupt")
        if spec is not None:
            bits = record.bits.copy()
            lane = spec.magnitude % len(bits)
            bits[lane] = ~bits[lane]
            record.bits = bits
            self._note(("pred_corrupt",
                             f"queue {record.queue_id} lane {lane}"))
        return record

    def expansion_busy(self, cycles: int) -> int:
        """ALU busy window for one expansion, possibly stretched."""
        spec = self._match("expand_delay")
        if spec is not None:
            self._note(("expand_delay",
                             f"+{16 * spec.magnitude} cycles"))
            return cycles + 16 * spec.magnitude
        return cycles

    # ---- memory system -------------------------------------------------

    def cache_fill(self, cache, line_addr: int) -> None:
        """Called after a line is installed; may flip a bit in its tag
        (the line then answers for a different address — a later demand
        access misses and refetches, a timing-only wound)."""
        spec = self._match("cache_tag_flip")
        if spec is None:
            return
        line = cache._lookup(line_addr)
        if line is not None:
            line.tag ^= 1 << (spec.magnitude % 8)
            self._note(("cache_tag_flip",
                             f"{cache.name} line {line_addr:#x}"))

    def dram_delay(self) -> int:
        """Extra cycles added to one DRAM read response."""
        spec = self._match("dram_delay")
        if spec is not None:
            delay = 64 * spec.magnitude
            self._note(("dram_delay", f"+{delay} cycles"))
            return delay
        return 0
