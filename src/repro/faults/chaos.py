"""Process-level chaos hooks for the supervised experiment service.

The PR-3 fault layer corrupts *architectural* state inside one
simulation; this module injects *infrastructure* faults — a worker
process that dies, wedges, or slows down mid-cell — which is what the
service supervisor (heartbeats, watchdog, circuit breakers, journal
replay) exists to survive.  Hooks are driven entirely by environment
variables so they cross every process boundary (spawned workers,
daemon subprocesses, restarts) without monkeypatching:

``REPRO_CHAOS``
    Semicolon-separated directives ``KIND:ABBR/TECH[:ARG][@LIMIT]``.
    ``ABBR`` and ``TECH`` may be ``*``.  Kinds:

    * ``die`` — ``os._exit(86)`` at the start of a matching simulation
      (indistinguishable from a SIGKILL'd worker mid-cell);
    * ``hang`` — sleep ``ARG`` seconds (default 3600) before simulating,
      i.e. a wedged worker the watchdog must kill;
    * ``delay`` — sleep ``ARG`` seconds (default 0.25) then simulate
      normally, to widen race windows in chaos tests.

    ``@LIMIT`` bounds total firings *across all processes*: each firing
    atomically claims a token file under ``REPRO_CHAOS_DIR`` via
    ``O_CREAT | O_EXCL``, so ``die:CP/dac@1`` kills exactly one worker
    no matter how many are racing, and the retry then succeeds.

``REPRO_CHAOS_DIR``
    Token directory for ``@LIMIT`` accounting (required when any
    directive carries a limit).

``REPRO_CHAOS_LOG``
    Append ``abbr/technique\\n`` per *actual* simulation (a single
    ``O_APPEND`` write, atomic at this size on POSIX).  Cache and
    journal hits never log — which is exactly how the chaos campaign
    proves that replayed cells were not re-simulated.

Everything is a no-op when the variables are unset: the directives are
parsed once per process and the fast path is one ``if`` on an empty
tuple.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Exit code of a chaos-killed worker (distinctive in supervisor logs).
CHAOS_EXIT = 86

ENV_SPEC = "REPRO_CHAOS"
ENV_DIR = "REPRO_CHAOS_DIR"
ENV_LOG = "REPRO_CHAOS_LOG"

_DEFAULT_ARG = {"die": 0.0, "hang": 3600.0, "delay": 0.25}


@dataclass(frozen=True)
class ChaosDirective:
    kind: str                 # die | hang | delay
    abbr: str                 # benchmark abbr or "*"
    technique: str            # technique or "*"
    arg: float                # seconds (hang/delay)
    limit: int | None         # max global firings (None = unlimited)
    index: int                # position in the spec (token namespace)

    def matches(self, abbr: str, technique: str) -> bool:
        return (self.abbr in ("*", abbr)
                and self.technique in ("*", technique))


class ChaosSpecError(ValueError):
    pass


def parse_spec(spec: str) -> tuple[ChaosDirective, ...]:
    """``"die:CP/dac@1;delay:*/*:0.1"`` → directives.  Raises
    :class:`ChaosSpecError` on malformed input — a chaos campaign that
    silently injects nothing would vacuously pass."""
    directives = []
    for index, part in enumerate(p for p in spec.split(";") if p.strip()):
        part = part.strip()
        limit = None
        if "@" in part:
            part, _, limit_s = part.rpartition("@")
            try:
                limit = int(limit_s)
            except ValueError:
                raise ChaosSpecError(f"bad @LIMIT in {part!r}@{limit_s!r}")
        fields = part.split(":")
        if len(fields) not in (2, 3) or "/" not in fields[1]:
            raise ChaosSpecError(
                f"expected KIND:ABBR/TECH[:ARG][@LIMIT], got {part!r}")
        kind, target = fields[0], fields[1]
        if kind not in _DEFAULT_ARG:
            raise ChaosSpecError(f"unknown chaos kind {kind!r}")
        abbr, _, technique = target.partition("/")
        arg = _DEFAULT_ARG[kind]
        if len(fields) == 3:
            try:
                arg = float(fields[2])
            except ValueError:
                raise ChaosSpecError(f"bad ARG in {part!r}")
        directives.append(ChaosDirective(kind, abbr, technique, arg,
                                         limit, index))
    return tuple(directives)


def _claim_token(directive: ChaosDirective, token_dir: str) -> bool:
    """Atomically claim one of the directive's ``limit`` firing slots;
    False once they are exhausted (across every process sharing the
    directory)."""
    assert directive.limit is not None
    os.makedirs(token_dir, exist_ok=True)
    stem = f"chaos-{directive.index}-{directive.kind}"
    for slot in range(directive.limit):
        path = os.path.join(token_dir, f"{stem}-{slot}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, f"{os.getpid()}\n".encode())
        os.close(fd)
        return True
    return False


def maybe_fire(abbr: str, technique: str,
               directives: tuple[ChaosDirective, ...] | None = None,
               token_dir: str | None = None) -> None:
    """Fire the first matching directive (if any) for this cell."""
    if directives is None:
        directives = _ENV_DIRECTIVES
    if not directives:
        return
    if token_dir is None:
        token_dir = os.environ.get(ENV_DIR)
    for directive in directives:
        if not directive.matches(abbr, technique):
            continue
        if directive.limit is not None:
            if token_dir is None:
                raise ChaosSpecError(
                    f"@LIMIT directive needs {ENV_DIR} set")
            if not _claim_token(directive, token_dir):
                continue
        if directive.kind == "die":
            os._exit(CHAOS_EXIT)
        elif directive.kind == "hang":
            time.sleep(directive.arg)
        elif directive.kind == "delay":
            time.sleep(directive.arg)
        return


def log_simulation(abbr: str, technique: str,
                   path: str | None = None) -> None:
    """Record one actual simulation in the chaos log (atomic append)."""
    if path is None:
        path = os.environ.get(ENV_LOG)
    if not path:
        return
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, f"{abbr}/{technique}\n".encode())
    finally:
        os.close(fd)


def read_log(path: str | os.PathLike) -> list[tuple[str, str]]:
    """The ``(abbr, technique)`` simulation events recorded at ``path``."""
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return []
    return [tuple(line.split("/", 1)) for line in lines if "/" in line]


_ENV_DIRECTIVES: tuple[ChaosDirective, ...] = ()
_installed = False


def install_from_env() -> bool:
    """Wrap :func:`repro.harness.runner.simulate_launch` with the chaos
    gate and simulation log.  Called by every worker entry point; a
    no-op (and cheap) when ``REPRO_CHAOS``/``REPRO_CHAOS_LOG`` are unset.

    The wrapper sits *below* the caches on purpose: a cell answered from
    the disk cache or the journal never fires chaos and never logs,
    so the log is a census of genuine re-simulations.
    """
    global _ENV_DIRECTIVES, _installed
    spec = os.environ.get(ENV_SPEC, "")
    log = os.environ.get(ENV_LOG)
    if not spec and not log:
        return False
    _ENV_DIRECTIVES = parse_spec(spec) if spec else ()
    if _installed:
        return True

    from ..harness import runner
    inner = runner.simulate_launch

    def chaotic_simulate_launch(launch, technique, config, tracer=None):
        # Benchmark kernels are named after their abbr (cp -> CP); fuzz
        # and ad-hoc kernels match only "*" directives.
        abbr = launch.kernel.name.upper()
        maybe_fire(abbr, technique)
        log_simulation(abbr, technique)
        return inner(launch, technique, config, tracer=tracer)

    runner.simulate_launch = chaotic_simulate_launch
    _installed = True
    return True
