"""Fault injection and runtime architectural checking (robustness layer).

Import :mod:`repro.faults.campaign` explicitly for the detect-or-survive
fuzz campaign; it pulls in the whole simulator and is kept out of this
package root so the sim core can import the hooks without a cycle.
:mod:`repro.faults.chaos` holds the process-level chaos hooks (worker
death, wedges, delays) that the service chaos campaign drives via
environment variables.
"""

from .checkers import CheckerError, NULL_CHECKERS, NullCheckers, \
    RuntimeCheckers
from .plan import FAULT_CLASSES, FaultInjector, FaultPlan, FaultSpec, \
    NULL_FAULTS, NullFaultInjector

__all__ = [
    "CheckerError",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_CHECKERS",
    "NULL_FAULTS",
    "NullCheckers",
    "NullFaultInjector",
    "RuntimeCheckers",
]
