"""Supervised worker pool: heartbeats, a liveness watchdog, respawn,
and per-workload circuit breakers.

The PR-3 parallel executor protects *one grid* inside *one process*;
this supervisor is the long-lived replacement the daemon fans out to.
Differences that matter:

* Workers are plain ``multiprocessing`` processes talking over duplex
  pipes — no shared queues, no feeder threads, so a SIGKILL'd worker
  can never poison another worker's channel, and
  ``multiprocessing.connection.wait`` doubles as the death detector
  (a dead peer's pipe polls ready and then EOFs).
* Every worker runs a heartbeat thread stamping a shared ``Value``; the
  watchdog kills workers whose heartbeat goes stale (a frozen or
  SIGSTOP'd process) *and* workers that sit on one cell past
  ``job_timeout`` (a wedged simulation — this subsumes the per-cell
  timeout of the PR-3 pool, where abandoning a hung worker meant
  abandoning the whole pool).
* A killed worker is respawned immediately: pool capacity is invariant.
* Each kill or crash while holding a job is a **strike** against that
  job's content digest.  At ``max_strikes`` the circuit breaker trips
  and the job is quarantined instead of being retried forever — the
  rest of the grid keeps flowing through the respawned workers.

The supervisor is synchronous and thread-driven so it can be used (and
chaos-tested) without the asyncio daemon on top; the daemon bridges the
callbacks onto its event loop.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import pickle
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field

from ..sim.gpu import SimulationHang

#: Job states a supervisor reports.
QUEUED, RUNNING, DONE, FAILED, QUARANTINED = \
    "queued", "running", "done", "failed", "quarantined"


def _worker_main(conn, heartbeat, cache_dir, hb_interval) -> None:
    """Worker body (top-level for spawn picklability): receive
    ``(digest, abbr, technique, scale, config)`` tasks, run them through
    the ordinary serial pipeline, ship back compressed result blobs.

    A heartbeat thread stamps ``heartbeat`` every ``hb_interval``
    seconds — proof the *process* is alive; per-job progress is judged
    by the parent's ``job_timeout``, not by us.
    """
    from ..faults import chaos
    from ..harness import runner
    chaos.install_from_env()
    if cache_dir is not None:
        runner.configure_cache(cache_dir)
    else:
        runner.configure_cache(enabled=False)

    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.time()
            stop.wait(hb_interval)

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            digest, abbr, technique, scale, config = message
            try:
                result = runner.run_one(abbr, technique, scale, config,
                                        use_cache=cache_dir is not None)
                blob = zlib.compress(pickle.dumps(
                    result, protocol=pickle.HIGHEST_PROTOCOL), 1)
                reply = ("done", digest, blob)
            except SimulationHang as hang:
                reply = ("error", digest, "SimulationHang", str(hang),
                         hang.to_dict())
            except Exception as exc:
                reply = ("error", digest, type(exc).__name__,
                         repr(exc), None)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                # Orphaned (the supervisor died under us).  The result
                # already hit the shared disk cache, so nothing is lost:
                # the next daemon generation dedups straight into it.
                break
    finally:
        stop.set()
        conn.close()


@dataclass
class WorkerInfo:
    """Introspection snapshot of one worker slot (the chaos campaign
    reads ``pid`` out of ``status`` responses to aim its SIGKILLs)."""

    wid: int
    pid: int | None
    alive: bool
    busy: str | None          # digest of the running job, if any
    heartbeat_age: float
    respawns: int

    def to_dict(self) -> dict:
        return {"wid": self.wid, "pid": self.pid, "alive": self.alive,
                "busy": self.busy,
                "heartbeat_age": round(self.heartbeat_age, 3),
                "respawns": self.respawns}


class _Worker:
    def __init__(self, wid: int, ctx, cache_dir, hb_interval: float):
        self.wid = wid
        self.respawns = 0
        self._ctx = ctx
        self._cache_dir = cache_dir
        self._hb_interval = hb_interval
        self.conn = None
        self.proc = None
        self.heartbeat = None
        self.job: str | None = None
        self.busy_since: float | None = None
        self.spawn()

    def spawn(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        self.heartbeat = self._ctx.Value("d", time.time())
        self.proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self.heartbeat, self._cache_dir,
                  self._hb_interval),
            daemon=True, name=f"repro-worker-{self.wid}")
        self.proc.start()
        child.close()
        self.conn = parent
        self.job = None
        self.busy_since = None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)

    def respawn(self) -> None:
        self.kill()
        self.respawns += 1
        self.spawn()

    def heartbeat_age(self, now: float) -> float:
        return now - self.heartbeat.value

    def info(self, now: float) -> WorkerInfo:
        return WorkerInfo(self.wid, self.proc.pid, self.proc.is_alive(),
                          self.job, self.heartbeat_age(now),
                          self.respawns)


@dataclass
class _Job:
    task: tuple               # (abbr, technique, GPUConfig)
    scale: str
    state: str = QUEUED
    strikes: int = 0
    error: str | None = None
    error_kind: str | None = None
    hang: dict | None = field(default=None, repr=False)


class Supervisor:
    """A fixed-size pool of supervised workers plus a dispatch thread.

    Callbacks (all optional, all invoked on the supervisor thread):

    * ``on_done(digest, task, scale, result)`` — cell finished;
    * ``on_failed(digest, kind, message, hang_dict)`` — deterministic
      in-task exception (never retried: re-running a deterministic
      failure only reproduces it more slowly);
    * ``on_strike(digest, reason)`` — a worker died/wedged mid-cell;
    * ``on_retry(digest)`` — struck cell re-queued;
    * ``on_quarantined(digest, task, scale, error)`` — breaker tripped.
    """

    def __init__(self, workers: int = 2, cache_dir=None,
                 job_timeout: float = 120.0,
                 heartbeat_interval: float = 0.25,
                 heartbeat_timeout: float = 15.0,
                 max_strikes: int = 2, poll_interval: float = 0.1,
                 start_method: str = "spawn",
                 on_done=None, on_failed=None, on_strike=None,
                 on_retry=None, on_quarantined=None):
        # "spawn" on purpose: the daemon runs an event loop and threads,
        # and a forked child inheriting their lock states mid-flight is
        # exactly the kind of heisenbug this subsystem exists to kill.
        self._ctx = mp.get_context(start_method)
        self.job_timeout = job_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.max_strikes = max_strikes
        self.poll_interval = poll_interval
        self.on_done = on_done
        self.on_failed = on_failed
        self.on_strike = on_strike
        self.on_retry = on_retry
        self.on_quarantined = on_quarantined

        self._lock = threading.RLock()
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[str] = deque()
        self._draining = False
        self._stop = threading.Event()
        self._workers = [_Worker(i, self._ctx, cache_dir,
                                 heartbeat_interval)
                         for i in range(max(1, workers))]
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-supervisor")
        self._thread.start()

    # -- submission ---------------------------------------------------------

    def submit(self, digest: str, task, scale: str,
               strikes: int = 0) -> str:
        """Queue one job (idempotent: a known digest just reports its
        current state).  ``strikes`` pre-loads the circuit breaker — the
        daemon passes journal-replayed strike counts so a cell that kept
        killing workers before a daemon crash cannot reset its breaker by
        crashing the daemon too.  Returns the job state after the call."""
        with self._lock:
            job = self._jobs.get(digest)
            if job is not None:
                return job.state
            if self._draining:
                return "rejected"
            self._jobs[digest] = _Job(task=task, scale=scale,
                                      strikes=strikes)
            self._queue.append(digest)
            return QUEUED

    def state(self, digest: str) -> str | None:
        with self._lock:
            job = self._jobs.get(digest)
            return job.state if job else None

    def job_error(self, digest: str) -> tuple[str | None, str | None, dict | None]:
        with self._lock:
            job = self._jobs.get(digest)
            if job is None:
                return None, None, None
            return job.error_kind, job.error, job.hang

    def queue_depth(self) -> int:
        """Jobs admitted but not yet settled — the backpressure signal."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state in (QUEUED, RUNNING))

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0,
                   QUARANTINED: 0}
            for job in self._jobs.values():
                out[job.state] += 1
            return out

    def workers_info(self) -> list[WorkerInfo]:
        now = time.time()
        with self._lock:
            return [w.info(now) for w in self._workers]

    # -- dispatch loop ------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._dispatch()
            conns = {}
            with self._lock:
                for worker in self._workers:
                    if worker.proc.is_alive():
                        conns[worker.conn] = worker
            ready = multiprocessing.connection.wait(
                list(conns), timeout=self.poll_interval)
            for conn in ready:
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue          # death; the watchdog settles it
                self._on_message(worker, message)
            self._watchdog()

    def _dispatch(self) -> None:
        with self._lock:
            if self._draining:
                return
            idle = [w for w in self._workers
                    if w.job is None and w.proc.is_alive()]
            while idle and self._queue:
                digest = self._queue.popleft()
                job = self._jobs[digest]
                if job.state != QUEUED:
                    continue
                worker = idle.pop()
                abbr, technique, config = job.task
                try:
                    worker.conn.send((digest, abbr, technique, job.scale,
                                      config))
                except (OSError, ValueError, BrokenPipeError):
                    self._queue.appendleft(digest)
                    continue          # watchdog will respawn the worker
                job.state = RUNNING
                worker.job = digest
                worker.busy_since = time.time()

    def _on_message(self, worker: _Worker, message) -> None:
        kind, digest = message[0], message[1]
        with self._lock:
            job = self._jobs.get(digest)
            if worker.job == digest:
                worker.job = None
                worker.busy_since = None
            if job is None or job.state not in (RUNNING, QUEUED):
                return                # stale result from a replaced twin
            if kind == "done":
                job.state = DONE
                result = pickle.loads(zlib.decompress(message[2]))
            else:
                job.state = FAILED
                job.error_kind, job.error, job.hang = message[2:5]
        if kind == "done":
            if self.on_done is not None:
                self.on_done(digest, job.task, job.scale, result)
        elif self.on_failed is not None:
            self.on_failed(digest, job.error_kind, job.error, job.hang)

    def _watchdog(self) -> None:
        now = time.time()
        strikes = []
        with self._lock:
            for worker in self._workers:
                dead = not worker.proc.is_alive()
                frozen = worker.heartbeat_age(now) > self.heartbeat_timeout
                wedged = (worker.job is not None
                          and worker.busy_since is not None
                          and now - worker.busy_since > self.job_timeout)
                if not (dead or frozen or wedged):
                    continue
                reason = ("worker died" if dead else
                          "heartbeat lost" if frozen else
                          f"exceeded job_timeout={self.job_timeout}s")
                held = worker.job
                worker.respawn()
                if held is not None:
                    strikes.append((held, reason))
        for digest, reason in strikes:
            self._strike(digest, reason)

    def _strike(self, digest: str, reason: str) -> None:
        with self._lock:
            job = self._jobs.get(digest)
            if job is None or job.state not in (RUNNING, QUEUED):
                return
            job.strikes += 1
            tripped = job.strikes >= self.max_strikes
            if tripped:
                job.state = QUARANTINED
                job.error = (f"circuit breaker tripped after "
                             f"{job.strikes} strike(s): {reason}")
            else:
                job.state = QUEUED
                self._queue.appendleft(digest)
        if self.on_strike is not None:
            self.on_strike(digest, reason)
        if tripped:
            if self.on_quarantined is not None:
                self.on_quarantined(digest, job.task, job.scale, job.error)
        elif self.on_retry is not None:
            self.on_retry(digest)

    # -- shutdown -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop dispatching queued work and wait for the *in-flight*
        cells to settle (they land in the journal via ``on_done``);
        queued-but-unstarted jobs stay journaled as pending for the next
        daemon generation.  Returns whether the pool drained in time."""
        with self._lock:
            self._draining = True
        deadline = time.time() + (timeout if timeout is not None
                                  else self.job_timeout + 5.0)
        while time.time() < deadline:
            with self._lock:
                if all(w.job is None for w in self._workers):
                    return True
            time.sleep(0.05)
        return False

    def close(self, drain: bool = True,
              timeout: float | None = None) -> bool:
        drained = self.drain(timeout) if drain else False
        self._stop.set()
        self._thread.join(timeout=5.0)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            worker.kill()
        return drained
