"""Supervised simulation service: a crash-tolerant experiment daemon.

``python -m repro serve`` runs a persistent daemon (asyncio over a unix
socket, newline-delimited JSON) that accepts simulation jobs from any
number of clients, dedups them against the in-flight table, the job
journal, and the content-hash disk cache, and fans them out to a
supervised worker pool.  The degradation ladder, from cheapest to most
drastic:

1. **dedup** — an identical job (same content digest) is answered from
   the journal/cache or attached to the in-flight copy;
2. **retry** — a worker that crashes or wedges mid-cell is killed and
   the cell re-queued;
3. **respawn** — the watchdog replaces dead/wedged workers so pool
   capacity recovers;
4. **circuit-break** — a cell that keeps killing workers trips its
   breaker after ``max_strikes`` and stops poisoning the pool;
5. **quarantine** — the broken cell is recorded in the journal and the
   rest of the grid completes with partial results.

A write-ahead journal (:mod:`repro.service.journal`) makes the daemon
itself crash-tolerant: every submitted job is journaled before it runs,
every finished cell's result blob is committed atomically, and a
restarted daemon replays the journal — completed cells answer instantly,
pending ones re-enter the queue.
"""

from .journal import JobJournal
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    job_digest,
    read_message,
    task_from_wire,
    task_to_wire,
    write_message,
)
from .supervisor import Supervisor, WorkerInfo

__all__ = [
    "JobJournal",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Supervisor",
    "WorkerInfo",
    "job_digest",
    "read_message",
    "task_from_wire",
    "task_to_wire",
    "write_message",
]
