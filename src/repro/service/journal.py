"""Write-ahead job journal with idempotent replay.

The daemon's crash story in one sentence: *the journal directory is the
daemon's state, the process is disposable.*  Every job transition is
appended to ``journal.jsonl`` (one JSON record per line, flushed and
fsync'd), and every finished cell's :class:`RunResult` is committed as
an atomic blob via the :class:`~repro.harness.parallel.GridCheckpoint`
machinery **before** the ``done`` record lands.  Replay is therefore
idempotent at every crash point:

* crash before the blob write → the job replays as pending and re-runs;
* crash between blob and ``done`` record → the blob *is* the commit
  record (``done`` requires a loadable blob, the WAL line is advisory),
  so the job replays as done;
* torn final line (crash mid-append) → that line fails to parse and is
  ignored; every record before it is intact.

Because the blob store and the ``state.json`` shadow are exactly a
``GridCheckpoint``, a journal directory can also be handed to
``run_grid(checkpoint=...)`` — the daemon and the local pool share one
resume format.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..harness.parallel import GridCheckpoint
from ..sim.gpu import RunResult

JOURNAL_NAME = "journal.jsonl"
RECORD_VERSION = 1


class JobJournal:
    """Append-only WAL plus atomic result blobs under one directory."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint = GridCheckpoint(self.root)
        self.path = self.root / JOURNAL_NAME
        self._handle = open(self.path, "a", encoding="utf-8")
        # Submissions append from the daemon's event loop, completions
        # from the supervisor thread — serialize the file handle.
        self._lock = threading.Lock()

    # -- appending ----------------------------------------------------------

    def _append(self, record: dict) -> None:
        record = {"v": RECORD_VERSION, **record}
        with self._lock:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_submit(self, digest: str, wire_task: dict) -> None:
        """Journal a job *before* it is queued (write-ahead)."""
        self._append({"op": "submit", "digest": digest, "task": wire_task})

    def record_done(self, digest: str, task, result: RunResult) -> None:
        """Commit a finished cell: blob first (atomic rename — the real
        commit point), then the advisory WAL record and checkpoint state."""
        self.checkpoint.record_done(digest, task, result)
        self._append({"op": "done", "digest": digest})

    def record_strike(self, digest: str, reason: str) -> None:
        self._append({"op": "strike", "digest": digest, "reason": reason})

    def record_quarantine(self, digest: str, task, error: str) -> None:
        self.checkpoint.record_quarantined(digest, task, error)
        self._append({"op": "quarantine", "digest": digest, "error": error})

    def record_unquarantine(self, digest: str) -> None:
        self.checkpoint.clear_quarantined(digest)
        self._append({"op": "unquarantine", "digest": digest})

    # -- reading ------------------------------------------------------------

    def load_result(self, digest: str) -> RunResult | None:
        return self.checkpoint.load_result(digest)

    def result_path(self, digest: str) -> Path:
        return self.checkpoint.result_path(digest)

    def replay(self) -> dict[str, dict]:
        """Fold the journal into per-job state::

            digest -> {"task": wire_task, "status": pending|done|quarantined,
                       "strikes": int, "error": str | None}

        ``done`` is only believed when the result blob actually loads —
        a record without its blob (impossible under the write ordering
        above, but cheap to tolerate) degrades to pending.
        """
        jobs: dict[str, dict] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            lines = []
        for line in lines:
            try:
                record = json.loads(line)
                op = record["op"]
                digest = record["digest"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue               # torn tail or foreign garbage
            job = jobs.setdefault(digest, {"task": None,
                                           "status": "pending",
                                           "strikes": 0, "error": None})
            if op == "submit":
                job["task"] = record.get("task")
            elif op == "done":
                job["status"] = "done"
            elif op == "strike":
                job["strikes"] += 1
            elif op == "quarantine":
                job["status"] = "quarantined"
                job["error"] = record.get("error")
            elif op == "unquarantine":
                if job["status"] == "quarantined":
                    job["status"] = "pending"
                    job["error"] = None
                    job["strikes"] = 0
        for digest, job in jobs.items():
            if job["status"] == "done" \
                    and self.load_result(digest) is None:
                job["status"] = "pending"
        return jobs

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
