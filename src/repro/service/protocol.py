"""Wire protocol of the experiment daemon: newline-delimited JSON.

One request object per line, one response object per line, over a unix
domain socket.  Requests carry an ``op``; responses carry ``ok`` and
either the answer or an ``error``.  The protocol is deliberately dumb —
flat JSON, no streaming, no binary frames — because the daemon and its
clients share a filesystem: big payloads (result blobs) travel as paths
into the journal's atomic blob store, not over the socket.

Ops (see :mod:`repro.service.daemon` for semantics):

* ``ping`` — liveness + version handshake;
* ``submit`` — a list of jobs; per-job reply is ``queued``, ``running``,
  ``done``, ``quarantined``, ``failed``, or ``busy`` (backpressure);
* ``wait`` — block (bounded) until one job settles;
* ``status`` — queue/worker/breaker introspection, incl. worker pids
  (the chaos campaign SIGKILLs those) and a ``GridReport`` dict;
* ``shutdown`` — graceful drain-and-exit.

A job is identified by the same content digest the checkpoint layer
uses (:meth:`repro.harness.parallel.GridCheckpoint.digest`): abbr,
technique, scale, and the full ``GPUConfig``.
"""

from __future__ import annotations

import dataclasses
import json

from ..config import GPUConfig
from ..harness.parallel import GridCheckpoint

PROTOCOL_VERSION = 1

#: One line must fit a grid submission; results never ride the socket.
MAX_LINE = 8 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed frame, oversized line, or version mismatch."""


def encode(message: dict) -> bytes:
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode(line: bytes) -> dict:
    if len(line) > MAX_LINE:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds MAX_LINE")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


def write_message(sock_file, message: dict) -> None:
    """Send one frame on a blocking socket file object."""
    sock_file.write(encode(message))
    sock_file.flush()


def read_message(sock_file) -> dict | None:
    """Read one frame from a blocking socket file; ``None`` on EOF."""
    line = sock_file.readline(MAX_LINE + 1)
    if not line:
        return None
    return decode(line)


# ---------------------------------------------------------------------------
# Job identity and task encoding.

def task_to_wire(task, scale: str) -> dict:
    """``(abbr, technique, GPUConfig)`` → JSON-able job description."""
    abbr, technique, config = task
    return {"abbr": abbr, "technique": technique, "scale": scale,
            "config": dataclasses.asdict(config)}


def task_from_wire(job: dict) -> tuple[tuple, str]:
    """Inverse of :func:`task_to_wire`: ``(task, scale)``."""
    try:
        task = (job["abbr"], job["technique"],
                GPUConfig.from_dict(job["config"]))
        return task, job["scale"]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed job description: {exc}") from None


def job_digest(task, scale: str) -> str:
    """Content digest identifying one job — shared with the checkpoint
    layer so journal dirs double as ``run_grid`` checkpoints."""
    return GridCheckpoint.digest(task, scale)
