"""The experiment daemon: asyncio over a unix socket, NDJSON framing.

``python -m repro serve`` keeps one journal, one disk cache, and one
supervised worker pool alive across any number of client grids — the
"simulate once, re-plot forever" cache of PR 1 promoted to "simulate
once *per fleet*".  The daemon itself holds no state a crash can lose:
job identity and completion live in the write-ahead journal
(:mod:`repro.service.journal`), results live in atomic blobs, and a
restarted daemon replays all of it before accepting connections.

Request handling is deliberately thin: the event loop only parses
frames, journals submissions, and parks waiters on events; everything
heavy (simulation, supervision, watchdog kills) happens in the worker
pool and its supervisor thread, which reports back via
``loop.call_soon_threadsafe``.

Backpressure: when ``queue_limit`` jobs are already admitted-but-
unsettled, further submissions answer ``{"state": "busy", "retry_after":
s}`` instead of queueing without bound; the client retries on the shared
capped-exponential-jitter schedule (:mod:`repro.harness.backoff`).

Shutdown (SIGTERM/SIGINT or the ``shutdown`` op) is graceful: the
listener closes, in-flight cells drain to the journal, workers exit,
and queued-but-unstarted jobs stay journaled as pending for the next
daemon generation.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
from pathlib import Path

from .. import __version__
from ..harness.diskcache import default_cache_dir, result_to_json_dict
from ..harness.parallel import GridReport
from .journal import JobJournal
from .protocol import (
    MAX_LINE,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    job_digest,
    task_from_wire,
    task_to_wire,
)
from .supervisor import Supervisor

#: Daemon-side job states surfaced on the wire (the supervisor's
#: queued/running collapse to "inflight" until a callback settles them).
INFLIGHT, DONE, FAILED, QUARANTINED = \
    "inflight", "done", "failed", "quarantined"


def default_state_dir() -> Path:
    """Journal location: ``$REPRO_SERVICE_STATE`` or a ``service``
    directory next to the default disk cache."""
    env = os.environ.get("REPRO_SERVICE_STATE")
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service"


class _DaemonJob:
    __slots__ = ("wire_task", "state", "error", "error_kind", "hang",
                 "event")

    def __init__(self, wire_task: dict, state: str = INFLIGHT):
        self.wire_task = wire_task
        self.state = state
        self.error: str | None = None
        self.error_kind: str | None = None
        self.hang: dict | None = None
        self.event = asyncio.Event()
        if state != INFLIGHT:
            self.event.set()


class ExperimentDaemon:
    def __init__(self, socket_path, state_dir=None, cache_dir=None,
                 use_cache: bool = True, workers: int = 2,
                 queue_limit: int = 64, job_timeout: float = 120.0,
                 heartbeat_timeout: float = 15.0, max_strikes: int = 2,
                 drain_timeout: float | None = None, log=None):
        self.socket_path = Path(socket_path)
        self.state_dir = Path(state_dir) if state_dir is not None \
            else default_state_dir()
        self.cache_dir = None
        if use_cache:
            self.cache_dir = Path(cache_dir) if cache_dir is not None \
                else default_cache_dir()
        self.workers = workers
        self.queue_limit = queue_limit
        self.job_timeout = job_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.max_strikes = max_strikes
        self.drain_timeout = drain_timeout
        self._log = log if log is not None \
            else (lambda msg: print(f"repro-serve: {msg}",
                                    file=sys.stderr, flush=True))

        self.jobs: dict[str, _DaemonJob] = {}
        self.report = GridReport()
        self.journal: JobJournal | None = None
        self.supervisor: Supervisor | None = None
        self.server: asyncio.AbstractServer | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.journal = JobJournal(self.state_dir)
        self.supervisor = Supervisor(
            workers=self.workers,
            cache_dir=self.cache_dir,
            job_timeout=self.job_timeout,
            heartbeat_timeout=self.heartbeat_timeout,
            max_strikes=self.max_strikes,
            on_done=self._sup_done,
            on_failed=self._sup_failed,
            on_strike=self._sup_strike,
            on_retry=self._sup_retry,
            on_quarantined=self._sup_quarantined,
        )
        self._replay()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            # A stale socket from a SIGKILL'd predecessor; the journal,
            # not the socket, is the real state.
            self.socket_path.unlink()
        self.server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path),
            limit=MAX_LINE + 2)
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                self.loop.add_signal_handler(
                    sig, lambda s=sig: asyncio.ensure_future(
                        self.shutdown(f"signal {s}")))
        self._log(f"listening on {self.socket_path} "
                  f"(workers={self.workers}, journal={self.state_dir}, "
                  f"cache={self.cache_dir or 'off'})")

    def _replay(self) -> None:
        """Idempotent journal replay: done cells answer instantly,
        quarantined cells stay quarantined, pending cells re-enter the
        queue with their strike counts intact."""
        replayed = self.journal.replay()
        resumed = requeued = 0
        for digest, entry in replayed.items():
            wire_task = entry["task"]
            if wire_task is None:
                continue              # strike/quarantine without a submit
            if entry["status"] == "done":
                self.jobs[digest] = _DaemonJob(wire_task, DONE)
                self.report.resumed += 1
                resumed += 1
            elif entry["status"] == "quarantined":
                job = _DaemonJob(wire_task, QUARANTINED)
                job.error = entry["error"] or "quarantined"
                self.jobs[digest] = job
                task, _scale = task_from_wire(wire_task)
                self.report.quarantined.append(task)
                self.report.failures[task] = job.error
            else:
                task, scale = task_from_wire(wire_task)
                self.jobs[digest] = _DaemonJob(wire_task, INFLIGHT)
                self.supervisor.submit(digest, task, scale,
                                       strikes=entry["strikes"])
                requeued += 1
        self.report.total = len(self.jobs)
        if resumed or requeued:
            self._log(f"journal replay: {resumed} done, "
                      f"{requeued} requeued")

    async def serve(self) -> None:
        await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self._cleanup()

    async def shutdown(self, reason: str = "requested") -> None:
        if self._stopping.is_set():
            return
        self._log(f"shutting down ({reason}): draining in-flight cells")
        self._stopping.set()

    async def _cleanup(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self.supervisor is not None:
            # Blocking drain off the loop: in-flight cells finish and
            # journal through the normal callbacks.
            await self.loop.run_in_executor(
                None, lambda: self.supervisor.close(
                    drain=True, timeout=self.drain_timeout))
        if self.journal is not None:
            self.journal.close()
        with contextlib.suppress(FileNotFoundError):
            self.socket_path.unlink()
        self._log("stopped")

    # -- supervisor callbacks (supervisor thread) ---------------------------

    def _sup_done(self, digest, task, scale, result) -> None:
        self.journal.record_done(digest, task, result)
        self.loop.call_soon_threadsafe(self._settle, digest, DONE, None)

    def _sup_failed(self, digest, kind, message, hang) -> None:
        self.loop.call_soon_threadsafe(
            self._settle, digest, FAILED, (kind, message, hang))

    def _sup_strike(self, digest, reason) -> None:
        self.journal.record_strike(digest, reason)
        if "job_timeout" in reason:
            self.loop.call_soon_threadsafe(self._count_timeout)

    def _sup_retry(self, digest) -> None:
        self.loop.call_soon_threadsafe(self._count_retry)

    def _sup_quarantined(self, digest, task, scale, error) -> None:
        self.journal.record_quarantine(digest, task, error)
        self.loop.call_soon_threadsafe(
            self._settle, digest, QUARANTINED, error)

    # -- loop-side settlement ----------------------------------------------

    def _settle(self, digest: str, state: str, detail) -> None:
        job = self.jobs.get(digest)
        if job is None or job.state != INFLIGHT:
            return
        job.state = state
        if state == DONE:
            self.report.completed += 1
        elif state == FAILED:
            job.error_kind, job.error, job.hang = detail
        elif state == QUARANTINED:
            job.error = detail
            task, _scale = task_from_wire(job.wire_task)
            self.report.quarantined.append(task)
            self.report.failures[task] = detail
        job.event.set()

    def _count_retry(self) -> None:
        self.report.retries += 1

    def _count_timeout(self) -> None:
        self.report.timeouts += 1

    # -- request handling ---------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode({"ok": False,
                                         "error": "frame too large"}))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = decode(line)
                    response = await self._dispatch(request)
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                writer.write(encode(response))
                await writer.drain()
                if response.get("op") == "goodbye":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong",
                    "version": PROTOCOL_VERSION, "repro": __version__,
                    "pid": os.getpid()}
        if op == "submit":
            return self._op_submit(request)
        if op == "wait":
            return await self._op_wait(request)
        if op == "status":
            return self._op_status()
        if op == "shutdown":
            asyncio.ensure_future(self.shutdown("client request"))
            return {"ok": True, "op": "goodbye"}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_submit(self, request: dict) -> dict:
        wire_jobs = request.get("jobs")
        if not isinstance(wire_jobs, list):
            raise ProtocolError("submit needs a 'jobs' list")
        replies = []
        for wire_task in wire_jobs:
            task, scale = task_from_wire(wire_task)
            digest = job_digest(task, scale)
            job = self.jobs.get(digest)
            if job is not None:
                # Dedup: same content digest — whether done (journal),
                # in flight (attach to the running copy), or settled.
                replies.append({"digest": digest,
                                "state": self._wire_state(digest, job)})
                continue
            if self._stopping.is_set() \
                    or self.supervisor.queue_depth() >= self.queue_limit:
                replies.append({"digest": digest, "state": "busy",
                                "retry_after": 0.5})
                continue
            self.journal.record_submit(digest, task_to_wire(task, scale))
            self.jobs[digest] = _DaemonJob(task_to_wire(task, scale))
            self.supervisor.submit(digest, task, scale)
            self.report.total += 1
            replies.append({"digest": digest, "state": "queued"})
        return {"ok": True, "jobs": replies}

    def _wire_state(self, digest: str, job: _DaemonJob) -> str:
        if job.state == INFLIGHT:
            return self.supervisor.state(digest) or "queued"
        return job.state

    async def _op_wait(self, request: dict) -> dict:
        digest = request.get("digest")
        job = self.jobs.get(digest)
        if job is None:
            return {"ok": False, "error": f"unknown job {digest!r}"}
        timeout = float(request.get("timeout", 30.0))
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(job.event.wait(), timeout)
        state = self._wire_state(digest, job)
        response = {"ok": True, "digest": digest, "state": state}
        if job.state == DONE:
            response["result_path"] = str(self.journal.result_path(digest))
            if request.get("inline"):
                result = self.journal.load_result(digest)
                if result is not None:
                    response["result"] = result_to_json_dict(result)
        elif job.state == FAILED:
            response.update({"kind": job.error_kind,
                             "message": job.error, "hang": job.hang})
        elif job.state == QUARANTINED:
            response["error"] = job.error
        return response

    def _op_status(self) -> dict:
        return {
            "ok": True,
            "pid": os.getpid(),
            "queue_depth": self.supervisor.queue_depth(),
            "queue_limit": self.queue_limit,
            "counts": self.supervisor.counts(),
            "workers": [w.to_dict() for w in
                        self.supervisor.workers_info()],
            "report": self.report.to_dict(),
            "jobs_total": len(self.jobs),
        }


def run_daemon(socket_path, state_dir=None, cache_dir=None,
               use_cache: bool = True, workers: int = 2,
               queue_limit: int = 64, job_timeout: float = 120.0,
               heartbeat_timeout: float = 15.0, max_strikes: int = 2,
               drain_timeout: float | None = None) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    daemon = ExperimentDaemon(
        socket_path, state_dir=state_dir, cache_dir=cache_dir,
        use_cache=use_cache, workers=workers, queue_limit=queue_limit,
        job_timeout=job_timeout, heartbeat_timeout=heartbeat_timeout,
        max_strikes=max_strikes, drain_timeout=drain_timeout)
    try:
        asyncio.run(daemon.serve())
    except KeyboardInterrupt:
        pass
    return 0
