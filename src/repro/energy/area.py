"""Area model for DAC's added hardware (paper §4.8).

Reproduces the paper's accounting: per-SM SRAM structures (sized from the
DAC configuration) at a CACTI-derived density, plus two expansion-unit
ALUs, against a GTX 480 die of 520 mm².
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DACConfig, GPUConfig

#: Per-entry storage in bytes, matching §4.8's totals:
#: ATQ 24 entries = 393 B; PWAQ 192 = 1560 B; PWPQ 192 = 768 B;
#: WLS depth 8 = 224 B; PWS 8 x 48 = 1536 B; DCRF mirrors the stack.
ATQ_ENTRY_BYTES = 393 / 24
PWAQ_ENTRY_BYTES = 1560 / 192
PWPQ_ENTRY_BYTES = 768 / 192
WLS_ENTRY_BYTES = 224 / 8
PWS_ENTRY_BYTES = 1536 / (8 * 48)

#: CACTI-style density implied by the paper: ~6 KB of structures -> 0.21 mm².
SRAM_MM2_PER_KB = 0.21 / 6.0

#: GPUWattch-style ALU area (two ALUs -> 0.16 mm²).
ALU_MM2 = 0.08

GTX480_DIE_MM2 = 520.0


@dataclass
class AreaReport:
    sram_bytes_per_sm: float
    sram_mm2_per_sm: float
    alu_mm2_per_sm: float
    num_sms: int
    die_mm2: float

    @property
    def per_sm_mm2(self) -> float:
        return self.sram_mm2_per_sm + self.alu_mm2_per_sm

    @property
    def total_mm2(self) -> float:
        return self.per_sm_mm2 * self.num_sms

    @property
    def overhead_fraction(self) -> float:
        return self.total_mm2 / self.die_mm2

    def table(self) -> str:
        rows = [
            f"SRAM per SM       {self.sram_bytes_per_sm:7.0f} B  "
            f"{self.sram_mm2_per_sm:.3f} mm2",
            f"ALUs per SM                    {self.alu_mm2_per_sm:.3f} mm2",
            f"Total ({self.num_sms} SMs)               "
            f"{self.total_mm2:.2f} mm2",
            f"Die                          {self.die_mm2:.0f} mm2",
            f"Overhead                     "
            f"{self.overhead_fraction * 100:.2f} %",
        ]
        return "\n".join(rows)


def dac_sram_bytes(dac: DACConfig, warps_per_sm: int = 48) -> float:
    """Total added SRAM per SM for a DAC configuration."""
    atq = dac.atq_entries * ATQ_ENTRY_BYTES
    pwaq = dac.pwaq_entries * PWAQ_ENTRY_BYTES
    pwpq = dac.pwpq_entries * PWPQ_ENTRY_BYTES
    wls = dac.stack_depth * WLS_ENTRY_BYTES
    pws = dac.stack_depth * warps_per_sm * PWS_ENTRY_BYTES
    dcrf = wls + pws                     # §4.8: same storage as the stack
    return atq + pwaq + pwpq + wls + pws + dcrf


def area_report(config: GPUConfig | None = None) -> AreaReport:
    config = config or GPUConfig.gtx480()
    sram_bytes = dac_sram_bytes(config.dac, config.warps_per_sm)
    return AreaReport(
        sram_bytes_per_sm=sram_bytes,
        sram_mm2_per_sm=sram_bytes / 1024 * SRAM_MM2_PER_KB,
        alu_mm2_per_sm=config.dac.expansion_alus * ALU_MM2,
        num_sms=15,
        die_mm2=GTX480_DIE_MM2,
    )
