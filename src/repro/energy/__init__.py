"""Energy and area models (GPUWattch/CACTI substitutes)."""

from .area import AreaReport, area_report, dac_sram_bytes
from .model import CLOCK_HZ, ENERGY_PJ, EnergyBreakdown, energy_of

__all__ = [
    "AreaReport", "CLOCK_HZ", "ENERGY_PJ", "EnergyBreakdown",
    "area_report", "dac_sram_bytes", "energy_of",
]
