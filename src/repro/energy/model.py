"""Event-based energy model (the GPUWattch/CACTI substitute, paper §5.6).

Dynamic energy = Σ (event count × per-event energy); static energy =
leakage power × execution time.  Per-event constants are calibrated so a
baseline Fermi run lands near GPUWattch's reported breakdown (ALU and
register file dominating dynamic energy, DRAM significant for streaming
workloads, static ≈ a third of total).  DAC's added structures use the
paper's Table 1 pJ/access numbers verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.gpu import RunResult

#: Shader clock, Hz (GTX 480).
CLOCK_HZ = 1.4e9

#: Per-event dynamic energies in picojoules.
ENERGY_PJ = {
    "warp_issue": 220.0,         # fetch/decode/issue/commit per warp inst
    "alu_op": 11.0,              # per thread ALU operation
    "sfu_op": 55.0,              # per thread SFU operation
    "rf_access": 5.5,            # per thread per operand
    "shared_access": 32.0,       # per warp shared-memory access
    "l1_access": 72.0,           # per 128 B line access
    "l2_access": 260.0,
    "dram_access": 2100.0,
    # DAC structures (paper Table 1).
    "atq_access": 5.3,
    "pwaq_access": 3.4,
    "pwpq_access": 1.5,
    "pws_access": 2.7,
    "expansion_alu": 11.0,       # the AEU/PEU integer ALUs
    # MTA prefetch buffer (16 KB, comparable to a small cache).
    "prefetch_buffer": 40.0,
}

#: Chip leakage power in watts: an uncore constant plus a per-SM term
#: (scaled configurations keep per-SM leakage).  Calibrated so leakage is
#: roughly a third of a busy baseline run's total, the Fermi-era split
#: GPUWattch reports.
STATIC_UNCORE_W = 1.5
STATIC_PER_SM_W = 0.45


@dataclass
class EnergyBreakdown:
    """Energy in joules, split into the Fig. 21 categories."""

    alu: float = 0.0
    register_file: float = 0.0
    dac_overhead: float = 0.0
    other_dynamic: float = 0.0
    static: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def dynamic(self) -> float:
        return (self.alu + self.register_file + self.dac_overhead
                + self.other_dynamic)

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Per-category energy as a fraction of the baseline *total* — the
        stacked bars of Fig. 21."""
        ref = baseline.total
        return {
            "dac_overhead": self.dac_overhead / ref,
            "alu": self.alu / ref,
            "register": self.register_file / ref,
            "other_dynamic": self.other_dynamic / ref,
            "static": self.static / ref,
            "total": self.total / ref,
        }


def energy_of(result: RunResult) -> EnergyBreakdown:
    """Compute the energy breakdown for one simulation run."""
    s = result.stats
    pj = ENERGY_PJ
    out = EnergyBreakdown()

    out.alu = (s["alu_ops"] * pj["alu_op"]
               + s["sfu_ops"] * pj["sfu_op"]
               + s["affine_alu_lanes"] * pj["alu_op"]
               + s["cae.affine_alu_ops"] * pj["alu_op"]) * 1e-12
    out.register_file = s["rf_accesses"] * pj["rf_access"] * 1e-12

    issue = (s["warp_instructions"] + s["affine_warp_instructions"]) \
        * pj["warp_issue"]
    l1 = (s["l1.accesses"] + s["l1.writes"] + s["l1.deq_reads"]) \
        * pj["l1_access"]
    l2 = (s["l2.accesses"] + s["l2.writes"]) * pj["l2_access"]
    dram = (s["dram.reads"] + s["dram.writes"]) * pj["dram_access"]
    shared = s["shared_accesses"] * pj["shared_access"]
    mta = (s["mta.buffer_hits"] + s["mta.prefetches"]) \
        * pj["prefetch_buffer"]
    out.other_dynamic = (issue + l1 + l2 + dram + shared + mta) * 1e-12

    atq = 2 * s["dac.atq_pushes"] * pj["atq_access"]
    pwaq = (s["dac.records"] + s["dac.deq_loads"] + s["dac.deq_stores"]) \
        * pj["pwaq_access"]
    pwpq = (s["dac.pred_records"] + s["dac.deq_preds"]) * pj["pwpq_access"]
    stack = (s["dac.pws_writes"] + s["dac.wls_writes"]
             + s["dac.dcrf_writes"]) * pj["pws_access"]
    expansion = (s["dac.aeu_alu_cycles"] + s["dac.peu_alu_cycles"]) \
        * pj["expansion_alu"]
    out.dac_overhead = (atq + pwaq + pwpq + stack + expansion) * 1e-12

    seconds = result.cycles / CLOCK_HZ
    static_watts = STATIC_UNCORE_W + STATIC_PER_SM_W * result.config.num_sms
    out.static = static_watts * seconds

    out.detail = {
        "issue": issue * 1e-12, "l1": l1 * 1e-12, "l2": l2 * 1e-12,
        "dram": dram * 1e-12, "shared": shared * 1e-12, "mta": mta * 1e-12,
    }
    return out
