"""Chrome Trace Event Format export.

Turns a :class:`~repro.trace.tracer.Tracer`'s event stream into the JSON
object-format trace that ``chrome://tracing`` / Perfetto load directly:
one process per SM (plus one for the memory hierarchy), one thread row per
warp slot, scheduler, and hardware unit.  Timestamps are cycles reported as
microseconds, so one trace-viewer microsecond is one simulated cycle.

Reference: "Trace Event Format" (Google), the ``ph`` codes used here:
``X`` complete events, ``i`` instant events, ``C`` counters, ``M``
metadata.
"""

from __future__ import annotations

import json

from .tracer import AFFINE_SLOT, Tracer

#: Thread-id layout inside an SM process.  Warp slots use their own ids
#: (0..warps_per_sm-1); the rows below sit above them.
_SCHED_TID_BASE = 900        # scheduler attribution timelines
_AFFINE_TID = 890            # the DAC affine warp
_UNIT_TID = 880              # AEU/PEU expansion + queue events
_CTA_TID = 870               # CTA lifecycle + barriers
_MEM_PID = 10_000            # the memory-hierarchy pseudo-process


def _tid_of(slot: int) -> int:
    return _AFFINE_TID if slot == AFFINE_SLOT else slot


def chrome_trace(tracer: Tracer) -> dict:
    """Build the Trace Event Format dict for one traced run."""
    events: list[dict] = []
    sms_seen: set[int] = set()
    mem_levels: dict[str, int] = {}

    for kind, ts, sm, tid, name, args in tracer.events:
        if kind == "mem":
            level_tid = mem_levels.setdefault(sm, len(mem_levels))
            events.append({"name": f"{sm}.{name}", "ph": "i", "s": "t",
                           "ts": float(ts), "pid": _MEM_PID,
                           "tid": level_tid, "args": args or {}})
            continue
        sms_seen.add(sm)
        if kind == "issue":
            events.append({"name": name, "ph": "X", "ts": float(ts),
                           "dur": float(args["dur"]), "pid": sm,
                           "tid": _tid_of(tid), "cat": "issue",
                           "args": {"active": args["active"]}})
        elif kind == "slot":
            events.append({"name": name, "ph": "X", "ts": float(ts),
                           "dur": float(args["dur"]), "pid": sm,
                           "tid": _SCHED_TID_BASE + tid, "cat": "slot",
                           "args": {}})
        elif kind in ("enq", "deq", "expand", "fill", "load"):
            row = (_UNIT_TID if kind in ("enq", "expand", "fill")
                   else _tid_of(tid))
            events.append({"name": name, "ph": "i", "s": "t",
                           "ts": float(ts), "pid": sm, "tid": row,
                           "cat": kind, "args": args or {}})
        elif kind in ("barrier", "cta"):
            payload = dict(args or {})
            if "block" in payload:
                payload["block"] = list(payload["block"])
            events.append({"name": name, "ph": "i", "s": "p",
                           "ts": float(ts), "pid": sm, "tid": _CTA_TID,
                           "cat": kind, "args": payload})
        elif kind == "fault":
            # Injected faults render globally: one mark explains a whole
            # downstream anomaly (a starved queue, a late fill burst).
            events.append({"name": name, "ph": "i", "s": "g",
                           "ts": float(ts), "pid": sm, "tid": _CTA_TID,
                           "cat": kind, "args": args or {}})

    for cycle, sm, atq, pwaq, pwpq, runahead in tracer.samples:
        sms_seen.add(sm)
        events.append({"name": "queues", "ph": "C", "ts": float(cycle),
                       "pid": sm, "tid": 0,
                       "args": {"atq": atq, "pwaq": pwaq, "pwpq": pwpq}})
        events.append({"name": "runahead", "ph": "C", "ts": float(cycle),
                       "pid": sm, "tid": 0,
                       "args": {"records": runahead}})

    meta: list[dict] = []
    for sm in sorted(sms_seen):
        meta.append({"name": "process_name", "ph": "M", "pid": sm, "tid": 0,
                     "args": {"name": f"SM {sm}"}})
        meta.append({"name": "thread_name", "ph": "M", "pid": sm,
                     "tid": _AFFINE_TID, "args": {"name": "affine warp"}})
        meta.append({"name": "thread_name", "ph": "M", "pid": sm,
                     "tid": _UNIT_TID, "args": {"name": "expansion units"}})
        meta.append({"name": "thread_name", "ph": "M", "pid": sm,
                     "tid": _CTA_TID, "args": {"name": "CTA / barrier"}})
    if mem_levels:
        meta.append({"name": "process_name", "ph": "M", "pid": _MEM_PID,
                     "tid": 0, "args": {"name": "memory hierarchy"}})
        for level, tid in mem_levels.items():
            meta.append({"name": "thread_name", "ph": "M", "pid": _MEM_PID,
                         "tid": tid, "args": {"name": level}})

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "cycles": tracer.cycles,
            "issue_slots": tracer.issue_slots,
            "unit": "1 trace us = 1 simulated cycle",
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle)
