"""Cycle-level observability: structured event tracing, stall attribution,
queue-occupancy sampling, and Chrome-trace / CSV export.

Tracing is off by default: every GPU carries a :data:`NULL_TRACER` whose
``enabled`` flag gates all instrumentation, so untraced (and cached /
parallel) runs pay nothing and produce bit-identical Stats.  Pass a
:class:`Tracer` to :func:`repro.sim.gpu.simulate`, :func:`repro.core.run_dac`,
or ``run_one(..., trace=...)`` to record a run, then export it::

    tracer = Tracer(sample_interval=32)
    result = run_one("LIB", "dac", trace=tracer)
    write_chrome_trace(tracer, "lib_dac.json")   # open in chrome://tracing
    print(stall_report(result, tracer))
"""

from .chrome import chrome_trace, write_chrome_trace
from .export import (
    OCCUPANCY_COLUMNS,
    stall_buckets,
    stall_report,
    write_occupancy_csv,
)
from .tracer import (
    AFFINE_SLOT,
    NULL_TRACER,
    NullTracer,
    STALL_REASONS,
    Tracer,
)

__all__ = [
    "AFFINE_SLOT", "NULL_TRACER", "NullTracer", "OCCUPANCY_COLUMNS",
    "STALL_REASONS", "Tracer", "chrome_trace", "stall_buckets",
    "stall_report", "write_chrome_trace", "write_occupancy_csv",
]
