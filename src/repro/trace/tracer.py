"""Structured cycle-level event tracer.

The tracer is a passive observer: simulation components emit events into it
(guarded by ``tracer.enabled`` so the untraced fast path stays untouched),
and the GPU main loop *commits* one attribution record per scheduler per
simulated cycle.  Because the main loop fast-forwards over cycles in which
nothing can change, a commit carries a ``delta`` — the number of cycles the
recorded per-scheduler state was in force — which keeps tracing exact
without forcing cycle-by-cycle simulation.

Two invariants make the data trustworthy:

* every (SM, scheduler, cycle) slot is attributed to exactly one bucket
  (``issued``, ``busy``, or a stall reason), so the buckets sum to
  ``cycles x num_sms x num_schedulers``;
* the tracer never mutates simulator state, so a traced run is cycle-exact
  with an untraced one.
"""

from __future__ import annotations

from collections import Counter

#: Every attribution bucket a scheduler slot can land in.  ``issued`` is the
#: cycle an instruction left the scheduler; ``busy`` is the tail of a
#: multi-cycle issue window; the rest are stall reasons; ``other`` is a
#: defensive catch-all for a diagnosis that disagrees with the issue logic.
STALL_REASONS = (
    "issued", "busy", "scoreboard", "memory", "barrier",
    "queue_empty", "queue_full", "idle", "other",
)

#: Synthetic warp-slot id used for the DAC affine warp in issue events.
AFFINE_SLOT = -1


class NullTracer:
    """Do-nothing tracer installed by default.

    ``enabled`` is False so hot paths skip event construction entirely; the
    methods still exist so cold paths may call them unguarded.
    """

    enabled = False
    __slots__ = ()

    def warp_issue(self, now, sm, slot, inst, active, interval):
        pass

    def load_issue(self, now, sm, slot, lines):
        pass

    def load_fill(self, now, sm, slot):
        pass

    def enqueue(self, now, sm, kind, queue_id):
        pass

    def dequeue(self, now, sm, slot, kind, queue_id):
        pass

    def expand(self, now, sm, slot, kind, queue_id, lines):
        pass

    def record_fill(self, now, sm, queue_id):
        pass

    def mem_access(self, now, level, line, hit):
        pass

    def mem_fill(self, now, level, line):
        pass

    def barrier_release(self, now, sm, block_idx):
        pass

    def fault(self, now, kind, detail):
        pass

    def cta_assign(self, now, sm, block_idx):
        pass

    def cta_retire(self, now, sm, block_idx):
        pass

    def commit(self, now, delta, sms):
        pass

    def finalize(self, stats, cycles, config):
        pass


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer.

    Events are stored as flat tuples ``(kind, ts, sm, tid, name, args)`` —
    cheap to append, interpreted by the exporters.  ``samples`` holds the
    queue-occupancy time series; ``stall_cycles``/``warp_stalls`` hold the
    committed attribution buckets.
    """

    enabled = True
    __slots__ = ("events", "samples", "stall_cycles", "warp_stalls",
                 "sample_interval", "trace_memory", "_next_sample",
                 "_segments", "cycles", "issue_slots")

    def __init__(self, sample_interval: int = 64,
                 trace_memory: bool = True):
        self.events: list[tuple] = []
        self.samples: list[tuple] = []       # (cycle, sm, atq, pwaq, pwpq,
        #                                       runahead)
        self.stall_cycles: Counter = Counter()
        self.warp_stalls: Counter = Counter()    # (sm, slot, reason) -> cyc
        self.sample_interval = max(1, int(sample_interval))
        self.trace_memory = trace_memory
        self._next_sample = 0
        # (sm, sched) -> [reason, start]; run-length encodes the per-
        # scheduler attribution timeline for the Chrome export.
        self._segments: dict[tuple[int, int], list] = {}
        self.cycles = 0
        self.issue_slots = 0                 # schedulers per cycle, chipwide

    # ---- event hooks (called from the simulator) ----------------------

    def warp_issue(self, now, sm, slot, inst, active, interval):
        self.events.append(("issue", now, sm, slot, inst.opcode.value,
                            {"active": int(active), "dur": int(interval)}))

    def load_issue(self, now, sm, slot, lines):
        self.events.append(("load", now, sm, slot, "ld.issue",
                            {"lines": int(lines)}))

    def load_fill(self, now, sm, slot):
        self.events.append(("load", now, sm, slot, "ld.fill", None))

    def enqueue(self, now, sm, kind, queue_id):
        self.events.append(("enq", now, sm, AFFINE_SLOT, f"enq.{kind}",
                            {"queue": queue_id}))

    def dequeue(self, now, sm, slot, kind, queue_id):
        self.events.append(("deq", now, sm, slot, f"deq.{kind}",
                            {"queue": queue_id}))

    def expand(self, now, sm, slot, kind, queue_id, lines):
        self.events.append(("expand", now, sm, slot, f"expand.{kind}",
                            {"queue": queue_id, "lines": int(lines)}))

    def record_fill(self, now, sm, queue_id):
        self.events.append(("fill", now, sm, AFFINE_SLOT, "record.fill",
                            {"queue": queue_id}))

    def mem_access(self, now, level, line, hit):
        if self.trace_memory:
            self.events.append(("mem", now, level, 0,
                                "hit" if hit else "miss", {"line": line}))

    def mem_fill(self, now, level, line):
        if self.trace_memory:
            self.events.append(("mem", now, level, 0, "fill",
                                {"line": line}))

    def barrier_release(self, now, sm, block_idx):
        self.events.append(("barrier", now, sm, 0, "barrier.release",
                            {"block": tuple(block_idx)}))

    def fault(self, now, kind, detail):
        self.events.append(("fault", now, 0, 0, f"fault.{kind}",
                            {"detail": detail}))

    def cta_assign(self, now, sm, block_idx):
        self.events.append(("cta", now, sm, 0, "cta.assign",
                            {"block": tuple(block_idx)}))

    def cta_retire(self, now, sm, block_idx):
        self.events.append(("cta", now, sm, 0, "cta.retire",
                            {"block": tuple(block_idx)}))

    # ---- per-cycle commit (called only from the GPU main loop) ----------

    def commit(self, now, delta, sms):
        """Attribute the just-simulated cycle (and the ``delta - 1``
        fast-forwarded cycles whose state is provably identical) to each
        scheduler's recorded reason, and sample queue occupancy."""
        stall_cycles = self.stall_cycles
        warp_stalls = self.warp_stalls
        segments = self._segments
        for sm in sms:
            for sched in sm.schedulers:
                reason = sched.stall_reason
                stall_cycles[reason] += delta
                warp_stalls[(sm.index, sched.stall_slot, reason)] += delta
                key = (sm.index, sched.index)
                seg = segments.get(key)
                if seg is None:
                    segments[key] = [reason, now]
                elif seg[0] != reason:
                    self.events.append(("slot", seg[1], sm.index,
                                        sched.index, seg[0],
                                        {"dur": now - seg[1]}))
                    seg[0] = reason
                    seg[1] = now
        if now >= self._next_sample:
            self._sample(now, sms)
            self._next_sample = now + self.sample_interval

    def _sample(self, now, sms):
        """Queue-occupancy / runahead snapshot.  Duck-typed so the same
        sampler covers every SM flavour: non-DAC SMs report zeros."""
        for sm in sms:
            atq_mem = getattr(sm, "atq_mem", None)
            if atq_mem is not None:
                atq = len(atq_mem) + len(sm.atq_pred)
            else:
                atq = 0
            pwaq = pwpq = 0
            for warp in sm.warps:
                q = getattr(warp, "pwaq", None)
                if q is not None:
                    pwaq += len(q)
                    pwpq += len(warp.pwpq)
            # Runahead distance: decoupled work produced by the affine side
            # but not yet consumed by a dequeue, in records.
            self.samples.append((now, sm.index, atq, pwaq, pwpq,
                                 atq + pwaq + pwpq))

    # ---- end of run -----------------------------------------------------

    def finalize(self, stats, cycles, config):
        """Flush open timeline segments and surface the attribution buckets
        as ``issue.*`` counters (only traced runs carry them)."""
        for (sm, sched), (reason, start) in sorted(self._segments.items()):
            if cycles > start:
                self.events.append(("slot", start, sm, sched, reason,
                                    {"dur": cycles - start}))
        self._segments.clear()
        self.cycles = cycles
        self.issue_slots = config.num_sms * config.num_schedulers
        for reason, cyc in self.stall_cycles.items():
            stats.add(f"issue.{reason}", cyc)
