"""Tabular exports: per-interval occupancy CSV and the stall-attribution
report an architect reads first."""

from __future__ import annotations

import csv

from .tracer import AFFINE_SLOT, STALL_REASONS, Tracer

OCCUPANCY_COLUMNS = ("cycle", "sm", "atq", "pwaq", "pwpq", "runahead")


def write_occupancy_csv(tracer: Tracer, path) -> None:
    """Write the queue-occupancy / runahead time series as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(OCCUPANCY_COLUMNS)
        writer.writerows(tracer.samples)


def stall_buckets(stats) -> dict[str, float]:
    """The committed ``issue.*`` attribution buckets of a traced run."""
    return {key[len("issue."):]: value
            for key, value in stats.as_dict().items()
            if key.startswith("issue.")}


def stall_report(result, tracer: Tracer | None = None,
                 top_warps: int = 8) -> str:
    """Render the per-slot attribution table (and, when the tracer is
    available, the most-stalled warp slots).

    Every scheduler slot of every cycle lands in exactly one bucket, so the
    ``cycles`` column sums to ``cycles x num_sms x num_schedulers``.
    """
    buckets = stall_buckets(result.stats)
    if not buckets:
        return "no stall attribution recorded (run with tracing enabled)"
    slots = result.cycles * result.config.num_sms \
        * result.config.num_schedulers
    order = {reason: i for i, reason in enumerate(STALL_REASONS)}
    lines = ["stall attribution (per scheduler slot)",
             f"{'bucket':<14} {'cycles':>14} {'share':>8}"]
    for reason in sorted(buckets, key=lambda r: order.get(r, 99)):
        cyc = buckets[reason]
        lines.append(f"{reason:<14} {cyc:>14,.0f} {cyc / slots:>8.1%}")
    lines.append(f"{'total':<14} {sum(buckets.values()):>14,.0f} "
                 f"{sum(buckets.values()) / slots:>8.1%}")

    if tracer is not None and tracer.warp_stalls:
        stalled = {}
        for (sm, slot, reason), cyc in tracer.warp_stalls.items():
            if reason in ("issued", "busy", "idle"):
                continue
            key = (sm, slot)
            stalled[key] = stalled.get(key, 0) + cyc
        if stalled:
            lines.append("")
            lines.append(f"most-stalled warp slots (top {top_warps})")
            ranked = sorted(stalled.items(), key=lambda kv: -kv[1])
            for (sm, slot), cyc in ranked[:top_warps]:
                name = "affine" if slot == AFFINE_SLOT else f"w{slot}"
                lines.append(f"  sm{sm} {name:<8} {cyc:>12,.0f} cycles")
    return "\n".join(lines)
