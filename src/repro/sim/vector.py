"""The vector datapath: batched numpy warp execution.

Selected with ``GPUConfig.datapath = "vector"``.  Three changes over the
scalar reference datapath (which stays the differential oracle):

* **Register file** — one ``(warp_slots, 32)`` float64 bank per register
  name, pooled per SM (:class:`VectorRegisterFile`); each warp's ``regs``
  dict holds row views into the banks, so writeback never allocates.
* **Masks** — uint32 bitmasks (:class:`repro.sim.simt_stack.LaneMask`)
  throughout: guard evaluation, branch splits, and the SIMT stack
  (:class:`repro.sim.simt_stack.VectorSIMTStack`) are integer bit
  operations; the bool lane vector is materialized lazily only when the
  memory system needs fancy indexing.  Predicates are stored as bitmask
  integers, packed/unpacked at the SETP/SELP boundaries.
* **Compiled micro-ops** — each static ALU instruction is compiled once
  (``Decoded.vop``) into a closure of pre-resolved operand fetchers around
  the *shared* :func:`repro.sim.executor.alu` kernel, eliminating the
  per-issue isinstance chains.

Bit-identity with the scalar datapath is a hard requirement: identical
float64 ufuncs in identical order, popcounts in place of bool reductions,
and masked blends expressed as exact bitwise equivalents.  The test suite
enforces it (``tests/test_differential_fuzz.py`` three-way oracle,
``tests/test_property_vector_ops.py`` per-primitive proofs, and the golden
Stats matrix run under both datapaths).
"""

from __future__ import annotations

import numpy as np

from ..isa import (
    Immediate,
    Instruction,
    MemRef,
    MemSpace,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
)
from .executor import alu
from .launch import CTAState, KernelLaunch
from .simt_stack import FULL_MASK, LaneMask, VectorSIMTStack, pack_mask, \
    unpack_mask
from .warp import WarpContext


class VectorRegisterFile:
    """Pooled register storage: one ``(slots, 32)`` float64 bank per
    register name, created zeroed on first touch (matching the scalar
    datapath's lazy-zero registers).  Warp slots are recycled across CTAs;
    :meth:`reset_slot` re-zeroes a slot's rows on reassignment."""

    __slots__ = ("slots", "width", "_banks")

    def __init__(self, slots: int, width: int = 32):
        self.slots = slots
        self.width = width
        self._banks: dict[str, np.ndarray] = {}

    def row(self, name: str, slot: int) -> np.ndarray:
        bank = self._banks.get(name)
        if bank is None:
            bank = self._banks[name] = np.zeros((self.slots, self.width),
                                                dtype=np.float64)
        return bank[slot]

    def reset_slot(self, slot: int) -> None:
        for bank in self._banks.values():
            bank[slot, :] = 0.0


class VectorWarpContext(WarpContext):
    """Warp state on the vector datapath: bitmask SIMT stack, register row
    views, predicate bitmasks."""

    datapath = "vector"

    __slots__ = ("regfile", "initial_bits")

    def __init__(self, launch: KernelLaunch, cta: CTAState,
                 warp_in_cta: int, slot: int, width: int = 32,
                 regfile: VectorRegisterFile | None = None):
        if width != 32:
            raise ValueError("the vector datapath is 32-lane only")
        self.regfile = regfile if regfile is not None \
            else VectorRegisterFile(slot + 1, width)
        super().__init__(launch, cta, warp_in_cta, slot, width)

    def _init_datapath(self) -> None:
        self.initial_bits = pack_mask(self.initial_mask)
        self.stack = VectorSIMTStack(self.initial_bits)
        self.regs: dict[str, np.ndarray] = {}     # name -> (32,) row view
        self.preds: dict[str, int] = {}           # name -> uint32 bitmask
        self.executor = VectorWarpExecutor(self)
        self.regfile.reset_slot(self.slot)

    # ---- mask facts (O(1) on bitmasks) ----------------------------------

    def active_any(self) -> bool:
        return self.stack.top_bits != 0

    def active_all(self) -> bool:
        return self.stack.top_bits == FULL_MASK

    def active_count(self) -> int:
        return self.stack.top_bits.bit_count()

    # ---- datapath-agnostic mask API -------------------------------------

    def issue_mask(self, decoded):
        guard = decoded.guard_pred
        if guard is None:
            mask = self.stack.active
            return mask, mask.bits.bit_count()
        pred = self.preds.get(guard.name, 0)
        if decoded.guard_negated:
            pred ^= FULL_MASK
        bits = self.stack.top_bits & pred
        return LaneMask(bits), bits.bit_count()

    def mask_count(self, mask: LaneMask) -> int:
        return mask.bits.bit_count()

    def mask_any(self, mask: LaneMask) -> bool:
        return mask.bits != 0

    def mask_all(self, mask: LaneMask) -> bool:
        return mask.bits == FULL_MASK

    def mask_bools(self, mask: LaneMask) -> np.ndarray:
        return mask.bools()

    def mask_is_initial(self, mask: LaneMask) -> bool:
        return mask.bits == self.initial_bits

    def branch_split(self, mask: LaneMask):
        ntaken = self.stack.top_bits & ~mask.bits
        return mask, LaneMask(ntaken), mask.bits != 0, ntaken != 0


class VectorWarpExecutor:
    """Executes instructions for one vector-datapath warp.

    Mirrors :class:`repro.sim.executor.WarpExecutor`'s surface, with
    :class:`LaneMask` masks.  ALU work routes through the shared
    :func:`repro.sim.executor.alu` kernel so both datapaths compute every
    float64 result with the same ufuncs in the same order."""

    __slots__ = ("warp",)

    def __init__(self, warp: VectorWarpContext):
        self.warp = warp

    # ---- operand access ------------------------------------------------

    def reg(self, name: str) -> np.ndarray:
        warp = self.warp
        row = warp.regs.get(name)
        if row is None:
            row = warp.regs[name] = warp.regfile.row(name, warp.slot)
        return row

    def pred_bools(self, name: str) -> np.ndarray:
        return unpack_mask(self.warp.preds.get(name, 0))

    def value(self, op):
        warp = self.warp
        if isinstance(op, Register):
            return self.reg(op.name)
        if isinstance(op, Immediate):
            return op.value
        if isinstance(op, Param):
            return warp.launch.params[op.name]
        if isinstance(op, SpecialReg):
            return warp.special(op.family, op.dim)
        if isinstance(op, PredReg):
            return self.pred_bools(op.name)
        raise TypeError(f"cannot evaluate operand {op!r}")

    def addresses(self, ref: MemRef) -> np.ndarray:
        base = self.value(ref.address)
        addrs = np.asarray(base + ref.displacement, dtype=np.float64)
        if addrs.ndim == 0:
            addrs = np.full(self.warp.width, float(addrs))
        return addrs

    # ---- writeback -----------------------------------------------------

    def write(self, dst, values, mask: LaneMask) -> None:
        if isinstance(dst, PredReg):
            self.write_pred(dst.name, values, mask)
        else:
            self.write_reg(dst.name, values, mask)

    def write_reg(self, name: str, values, mask: LaneMask) -> None:
        current = self.reg(name)
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape != (32,):
            vals = np.broadcast_to(vals, (32,))
        if mask.bits == FULL_MASK:
            current[:] = vals
        else:
            # Elementwise masked copy: exact equivalent of the scalar
            # datapath's current[mask] = vals[mask].
            np.copyto(current, vals, where=mask.bools())

    def write_pred(self, name: str, values, mask: LaneMask) -> None:
        vals = np.asarray(values, dtype=bool)
        if vals.shape != (32,):
            vals = np.broadcast_to(vals, (32,))
        vbits = pack_mask(vals)
        preds = self.warp.preds
        bits = mask.bits
        preds[name] = (preds.get(name, 0) & ~bits & FULL_MASK) \
            | (vbits & bits)

    # ---- guards --------------------------------------------------------

    def guard_mask(self, inst: Instruction, base: LaneMask) -> LaneMask:
        guard = inst.guard
        if isinstance(guard, PredReg):
            pred = self.warp.preds.get(guard.name, 0)
            if inst.guard_negated:
                pred ^= FULL_MASK
            return LaneMask(base.bits & pred)
        return base

    # ---- instruction execution -----------------------------------------

    def execute_alu_decoded(self, decoded, mask: LaneMask) -> None:
        vop = decoded.vop
        if vop is None:
            vop = decoded.vop = _compile_alu(decoded.inst)
        vop(self, mask)

    def execute_alu(self, inst: Instruction, mask: LaneMask) -> None:
        args = [self.value(s) for s in inst.srcs]
        result = alu(inst.opcode, args, inst.cmp)
        self.write(inst.dsts[0], result, mask)

    def execute_load(self, inst: Instruction, mask: LaneMask,
                     addrs: np.ndarray) -> None:
        warp = self.warp
        bools = mask.bools()
        if inst.space is MemSpace.SHARED:
            vals = np.zeros(warp.width, dtype=np.float64)
            idx = addrs[bools].astype(np.int64) // 4
            vals[bools] = warp.cta.shared[idx]
        else:
            vals = warp.launch.memory.load(addrs, bools)
        self.write(inst.dsts[0], vals, mask)

    def execute_store(self, inst: Instruction, mask: LaneMask,
                      addrs: np.ndarray) -> None:
        warp = self.warp
        bools = mask.bools()
        raw = self.value(inst.srcs[0])
        vals = np.broadcast_to(np.asarray(raw, dtype=np.float64),
                               (warp.width,))
        if inst.space is MemSpace.SHARED:
            idx = addrs[bools].astype(np.int64) // 4
            if inst.opcode is Opcode.ATOM:
                np.add.at(warp.cta.shared, idx, vals[bools])
            else:
                warp.cta.shared[idx] = vals[bools]
        elif inst.opcode is Opcode.ATOM:
            warp.launch.memory.atomic_add(addrs, vals, bools)
        else:
            warp.launch.memory.store(addrs, vals, bools)


# ---- micro-op compilation ------------------------------------------------

def _compile_fetch(op):
    """An operand -> a fetch closure over the executor (resolved once per
    static instruction instead of per dynamic issue)."""
    if isinstance(op, Register):
        name = op.name
        return lambda ex: ex.reg(name)
    if isinstance(op, Immediate):
        value = op.value
        return lambda ex: value
    if isinstance(op, Param):
        name = op.name
        return lambda ex: ex.warp.launch.params[name]
    if isinstance(op, SpecialReg):
        family, dim = op.family, op.dim
        return lambda ex: ex.warp.special(family, dim)
    if isinstance(op, PredReg):
        name = op.name
        return lambda ex: ex.pred_bools(name)
    raise TypeError(f"cannot compile operand fetch for {op!r}")


def _compile_alu(inst: Instruction):
    """Compile one static ALU/SFU instruction into a ``(executor, mask)``
    closure.  The arithmetic itself stays in the shared :func:`alu` kernel
    — compilation only pre-resolves operand fetches and the destination."""
    fetchers = tuple(_compile_fetch(op) for op in inst.srcs)
    opcode = inst.opcode
    cmp = inst.cmp
    dst = inst.dsts[0]
    name = dst.name
    if isinstance(dst, PredReg):
        def run(ex: VectorWarpExecutor, mask: LaneMask,
                _fetch=fetchers) -> None:
            ex.write_pred(name, alu(opcode, [f(ex) for f in _fetch], cmp),
                          mask)
    else:
        def run(ex: VectorWarpExecutor, mask: LaneMask,
                _fetch=fetchers) -> None:
            ex.write_reg(name, alu(opcode, [f(ex) for f in _fetch], cmp),
                         mask)
    return run
