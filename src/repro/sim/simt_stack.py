"""Baseline per-warp SIMT reconvergence stack (paper §3, §4.5 background).

Standard post-dominator reconvergence: a divergent branch pushes one entry
per path with the reconvergence PC (the branch block's immediate
post-dominator); an entry pops when its PC reaches its RPC.
"""

from __future__ import annotations

import numpy as np


class SIMTStack:
    """Stack of (mask, pc, rpc) entries; the top entry is what executes."""

    __slots__ = ("_masks", "_pcs", "_rpcs", "max_depth")

    def __init__(self, initial_mask: np.ndarray, entry_pc: int = 0):
        self._masks: list[np.ndarray] = [initial_mask.copy()]
        self._pcs: list[int] = [entry_pc]
        self._rpcs: list[int] = [-1]          # sentinel: never pops
        self.max_depth = 1

    @property
    def pc(self) -> int:
        return self._pcs[-1]

    @pc.setter
    def pc(self, value: int) -> None:
        self._pcs[-1] = value
        self._pop_reconverged()

    @property
    def active_mask(self) -> np.ndarray:
        return self._masks[-1]

    @property
    def depth(self) -> int:
        return len(self._pcs)

    def _pop_reconverged(self) -> None:
        while len(self._pcs) > 1 and self._pcs[-1] == self._rpcs[-1]:
            self._pcs.pop()
            self._rpcs.pop()
            self._masks.pop()

    def diverge(self, taken_mask: np.ndarray, ntaken_mask: np.ndarray,
                target_pc: int, fallthrough_pc: int, rpc: int) -> None:
        """Split the top entry at a divergent branch.  Entries whose start PC
        already equals the RPC are not pushed (their lanes simply wait in the
        entry below)."""
        self._pcs[-1] = rpc
        self._pop_reconverged()
        if ntaken_mask.any() and fallthrough_pc != rpc:
            self._push(ntaken_mask, fallthrough_pc, rpc)
        if taken_mask.any() and target_pc != rpc:
            self._push(taken_mask, target_pc, rpc)

    def _push(self, mask: np.ndarray, pc: int, rpc: int) -> None:
        self._masks.append(mask.copy())
        self._pcs.append(pc)
        self._rpcs.append(rpc)
        self.max_depth = max(self.max_depth, len(self._pcs))
