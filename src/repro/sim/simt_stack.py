"""Baseline per-warp SIMT reconvergence stack (paper §3, §4.5 background).

Standard post-dominator reconvergence: a divergent branch pushes one entry
per path with the reconvergence PC (the branch block's immediate
post-dominator); an entry pops when its PC reaches its RPC.

Two implementations share these semantics:

* :class:`SIMTStack` — the scalar-datapath reference, masks as 32-element
  bool arrays.  This is the differential oracle; its behaviour is pinned.
* :class:`VectorSIMTStack` — the vector-datapath variant, masks as a
  uint32 bitmask vector (one word per entry) with lane-level bool views
  materialized lazily through :class:`LaneMask`.
"""

from __future__ import annotations

import numpy as np

#: All 32 lanes of a warp set.
FULL_MASK = 0xFFFFFFFF


def pack_mask(bools) -> int:
    """Bool lane vector -> uint32 bitmask (bit *i* = lane *i*)."""
    arr = np.asarray(bools, dtype=bool)
    if arr.shape != (32,):
        arr = np.broadcast_to(arr, (32,))
    return int(np.packbits(arr, bitorder="little").view(np.uint32)[0])


def unpack_mask(bits: int, width: int = 32) -> np.ndarray:
    """uint32 bitmask -> bool lane vector (inverse of :func:`pack_mask`)."""
    raw = np.frombuffer(int(bits).to_bytes(4, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].view(np.bool_)


class LaneMask:
    """A 32-lane mask as a uint32 bitmask with a lazily-materialized bool
    view.  Bit operations (any/all/count, guard AND, branch splits) run on
    the integer; the bool array exists only once something needs lane-level
    fancy indexing (memory, coalescer) and is then cached."""

    __slots__ = ("bits", "_bools")

    def __init__(self, bits: int, bools: np.ndarray | None = None):
        self.bits = bits
        self._bools = bools

    def bools(self) -> np.ndarray:
        view = self._bools
        if view is None:
            view = self._bools = unpack_mask(self.bits)
        return view

    def any(self) -> bool:
        return self.bits != 0

    def all(self) -> bool:
        return self.bits == FULL_MASK

    def count(self) -> int:
        return self.bits.bit_count()

    def __repr__(self) -> str:
        return f"LaneMask({self.bits:#010x})"


def _bits_of(mask) -> int:
    return mask.bits if isinstance(mask, LaneMask) else int(mask)


class SIMTStack:
    """Stack of (mask, pc, rpc) entries; the top entry is what executes."""

    __slots__ = ("_masks", "_pcs", "_rpcs", "max_depth")

    def __init__(self, initial_mask: np.ndarray, entry_pc: int = 0):
        self._masks: list[np.ndarray] = [initial_mask.copy()]
        self._pcs: list[int] = [entry_pc]
        self._rpcs: list[int] = [-1]          # sentinel: never pops
        self.max_depth = 1

    @property
    def pc(self) -> int:
        return self._pcs[-1]

    @pc.setter
    def pc(self, value: int) -> None:
        self._pcs[-1] = value
        self._pop_reconverged()

    @property
    def active_mask(self) -> np.ndarray:
        return self._masks[-1]

    @property
    def depth(self) -> int:
        return len(self._pcs)

    def _pop_reconverged(self) -> None:
        while len(self._pcs) > 1 and self._pcs[-1] == self._rpcs[-1]:
            self._pcs.pop()
            self._rpcs.pop()
            self._masks.pop()

    def diverge(self, taken_mask: np.ndarray, ntaken_mask: np.ndarray,
                target_pc: int, fallthrough_pc: int, rpc: int) -> None:
        """Split the top entry at a divergent branch.  Entries whose start PC
        already equals the RPC are not pushed (their lanes simply wait in the
        entry below)."""
        self._pcs[-1] = rpc
        self._pop_reconverged()
        if ntaken_mask.any() and fallthrough_pc != rpc:
            self._push(ntaken_mask, fallthrough_pc, rpc)
        if taken_mask.any() and target_pc != rpc:
            self._push(taken_mask, target_pc, rpc)

    def _push(self, mask: np.ndarray, pc: int, rpc: int) -> None:
        self._masks.append(mask.copy())
        self._pcs.append(pc)
        self._rpcs.append(rpc)
        self.max_depth = max(self.max_depth, len(self._pcs))


class VectorSIMTStack:
    """Bitmask-vector SIMT stack: entry masks live in a uint32 numpy vector
    indexed by depth; the top-of-stack mask is mirrored as a
    :class:`LaneMask` so the issue path's any/all/count questions are O(1)
    integer operations.  Semantics are identical to :class:`SIMTStack`
    (``mask.any()`` on a bool vector is exactly ``bits != 0``, push/pop
    ordering is the same code path)."""

    __slots__ = ("_bits", "_pcs", "_rpcs", "_depth", "max_depth", "_top")

    def __init__(self, initial_mask, entry_pc: int = 0, capacity: int = 16):
        bits = (pack_mask(initial_mask)
                if isinstance(initial_mask, np.ndarray)
                else _bits_of(initial_mask))
        self._bits = np.zeros(capacity, dtype=np.uint32)
        self._bits[0] = bits
        self._pcs: list[int] = [entry_pc]
        self._rpcs: list[int] = [-1]          # sentinel: never pops
        self._depth = 1
        self.max_depth = 1
        self._top = LaneMask(bits)

    @property
    def pc(self) -> int:
        return self._pcs[-1]

    @pc.setter
    def pc(self, value: int) -> None:
        self._pcs[-1] = value
        if self._depth > 1 and value == self._rpcs[-1]:
            self._pop_reconverged()

    @property
    def active(self) -> LaneMask:
        return self._top

    #: Kept under the scalar stack's name so dumps/diagnostics can treat
    #: both uniformly; returns a LaneMask, not a bool array.
    @property
    def active_mask(self) -> LaneMask:
        return self._top

    @property
    def top_bits(self) -> int:
        return self._top.bits

    @property
    def depth(self) -> int:
        return self._depth

    def _pop_reconverged(self) -> None:
        popped = False
        while self._depth > 1 and self._pcs[-1] == self._rpcs[-1]:
            self._pcs.pop()
            self._rpcs.pop()
            self._depth -= 1
            popped = True
        if popped:
            self._top = LaneMask(int(self._bits[self._depth - 1]))

    def diverge(self, taken_mask, ntaken_mask, target_pc: int,
                fallthrough_pc: int, rpc: int) -> None:
        """Split the top entry at a divergent branch; mirrors
        :meth:`SIMTStack.diverge` exactly, over bitmasks."""
        taken = _bits_of(taken_mask)
        ntaken = _bits_of(ntaken_mask)
        self._pcs[-1] = rpc
        if self._depth > 1 and rpc == self._rpcs[-1]:
            self._pop_reconverged()
        if ntaken and fallthrough_pc != rpc:
            self._push(ntaken, fallthrough_pc, rpc)
        if taken and target_pc != rpc:
            self._push(taken, target_pc, rpc)

    def _push(self, bits: int, pc: int, rpc: int) -> None:
        if self._depth == len(self._bits):
            self._bits = np.concatenate(
                [self._bits, np.zeros_like(self._bits)])
        self._bits[self._depth] = bits
        self._depth += 1
        self._pcs.append(pc)
        self._rpcs.append(rpc)
        if self._depth > self.max_depth:
            self.max_depth = self._depth
        self._top = LaneMask(bits)
