"""Functional (value-level) execution of warp instructions.

The timing models call into this module at issue time ("execute-at-issue",
the structure GPGPU-sim uses): results are computed immediately, and the
timing layer decides when dependent instructions may observe them via the
scoreboard.
"""

from __future__ import annotations

import numpy as np

from ..isa import (
    CmpOp,
    Immediate,
    Instruction,
    MemRef,
    MemSpace,
    Opcode,
    Param,
    PredReg,
    Register,
    SpecialReg,
)

CMP_FUNCS = {
    CmpOp.EQ: np.equal,
    CmpOp.NE: np.not_equal,
    CmpOp.LT: np.less,
    CmpOp.LE: np.less_equal,
    CmpOp.GT: np.greater,
    CmpOp.GE: np.greater_equal,
}


#: int64 range endpoints exactly representable in float64: -2**63 is exact;
#: the largest float64 *below* 2**63 is 2**63 - 1024 (53-bit mantissa).
_INT64_MIN_F = np.float64(-(2 ** 63))
_INT64_MAX_F = np.float64(2 ** 63 - 1024)


def _to_int(x):
    """float64 lanes -> int64 with *pinned* edge semantics.

    A plain ``astype(np.int64)`` is C-undefined for NaN and for values
    outside int64 range (and numpy both warns and produces a
    platform-dependent pattern).  The datapath instead defines: NaN -> 0,
    out-of-range -> saturate to the nearest exactly-representable int64
    endpoint.  Integers with \\|x\\| <= 2**53 (every value the integer-exact
    workloads produce) convert exactly, same as before.
    """
    arr = np.asarray(x, dtype=np.float64)
    clipped = np.clip(arr, _INT64_MIN_F, _INT64_MAX_F)
    if arr.ndim:
        nan = np.isnan(arr)
        if nan.any():
            clipped = np.where(nan, 0.0, clipped)
    elif np.isnan(arr):
        clipped = np.float64(0.0)
    return clipped.astype(np.int64)


def _shift(a, counts, left: bool):
    """64-bit shift with *pinned* out-of-range semantics: any shift count
    outside [0, 64) yields 0 (a barrel shifter flushing invalid counts).
    The C-level ``<<`` / ``>>`` is undefined there — and Python ints would
    instead grow without bound — so the semantics are made explicit and a
    regression test (tests/test_int_width.py) holds them in place."""
    values = _to_int(a)
    n = _to_int(counts)
    safe = n & 63            # always in range for the C operator
    shifted = (values << safe) if left else (values >> safe)
    return np.where((n >= 0) & (n < 64), shifted, 0).astype(np.float64)


def alu(opcode: Opcode, args: list, cmp: CmpOp | None = None):
    """Evaluate an ALU/SFU op over float64 lane arrays (or scalars)."""
    a = args[0] if args else None
    if opcode is Opcode.MOV:
        return np.asarray(a, dtype=np.float64)
    if opcode is Opcode.ADD:
        return a + args[1]
    if opcode is Opcode.SUB:
        return a - args[1]
    if opcode is Opcode.MUL:
        return a * args[1]
    if opcode is Opcode.MAD:
        return a * args[1] + args[2]
    if opcode is Opcode.DIV:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(args[1] == 0, 0.0, a / args[1])
    if opcode is Opcode.REM:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(args[1] == 0, 0.0, np.mod(a, args[1]))
    if opcode is Opcode.MIN:
        return np.minimum(a, args[1])
    if opcode is Opcode.MAX:
        return np.maximum(a, args[1])
    if opcode is Opcode.ABS:
        return np.abs(a)
    if opcode is Opcode.NEG:
        return -np.asarray(a, dtype=np.float64)
    if opcode is Opcode.AND:
        return (_to_int(a) & _to_int(args[1])).astype(np.float64)
    if opcode is Opcode.OR:
        return (_to_int(a) | _to_int(args[1])).astype(np.float64)
    if opcode is Opcode.XOR:
        return (_to_int(a) ^ _to_int(args[1])).astype(np.float64)
    if opcode is Opcode.NOT:
        return (~_to_int(a)).astype(np.float64)
    if opcode is Opcode.SHL:
        return _shift(a, args[1], left=True)
    if opcode is Opcode.SHR:
        return _shift(a, args[1], left=False)
    if opcode is Opcode.SELP:
        return np.where(args[2], a, args[1])
    if opcode is Opcode.SETP:
        return CMP_FUNCS[cmp](a, args[1])
    if opcode is Opcode.RCP:
        with np.errstate(divide="ignore"):
            return np.where(a == 0, 0.0, 1.0 / a)
    if opcode is Opcode.SQRT:
        return np.sqrt(np.abs(a))
    if opcode is Opcode.EXP:
        return np.exp(np.clip(a, -60.0, 60.0))
    if opcode is Opcode.LOG:
        return np.log(np.abs(a) + 1e-30)
    if opcode is Opcode.SIN:
        return np.sin(a)
    if opcode is Opcode.COS:
        return np.cos(a)
    raise ValueError(f"not an ALU opcode: {opcode}")


class WarpExecutor:
    """Evaluates operands and executes instructions for one warp context.

    The warp context must expose ``regs`` / ``preds`` dicts, ``special``
    scalars and per-lane thread-index arrays, the launch (for params and
    memory), and the CTA's shared memory array.
    """

    def __init__(self, warp):
        self.warp = warp

    # ---- operand evaluation ------------------------------------------

    def value(self, op):
        warp = self.warp
        if isinstance(op, Register):
            reg = warp.regs.get(op.name)
            if reg is None:
                reg = np.zeros(warp.width, dtype=np.float64)
                warp.regs[op.name] = reg
            return reg
        if isinstance(op, Immediate):
            return op.value
        if isinstance(op, Param):
            return warp.launch.params[op.name]
        if isinstance(op, SpecialReg):
            return warp.special(op.family, op.dim)
        if isinstance(op, PredReg):
            pred = warp.preds.get(op.name)
            if pred is None:
                pred = np.zeros(warp.width, dtype=bool)
                warp.preds[op.name] = pred
            return pred
        raise TypeError(f"cannot evaluate operand {op!r}")

    def addresses(self, ref: MemRef) -> np.ndarray:
        base = self.value(ref.address)
        addrs = np.asarray(base + ref.displacement, dtype=np.float64)
        if addrs.ndim == 0:
            addrs = np.full(self.warp.width, float(addrs))
        return addrs

    # ---- writeback -----------------------------------------------------

    def write(self, dst, values, mask: np.ndarray) -> None:
        warp = self.warp
        dtype = bool if isinstance(dst, PredReg) else np.float64
        current = self.value(dst)
        vals = np.asarray(values, dtype=dtype)
        if vals.shape != (warp.width,):
            vals = np.broadcast_to(vals, (warp.width,))
        full = (warp.active_all() if mask is warp.stack.active_mask
                else mask.all())
        if full:
            # Full-mask writeback (the common case): plain copy instead of
            # two boolean fancy-index operations.
            current[:] = vals
        else:
            current[mask] = vals[mask]

    # ---- instruction execution -----------------------------------------

    def guard_mask(self, inst: Instruction, base_mask: np.ndarray):
        if isinstance(inst.guard, PredReg):
            pred = self.value(inst.guard)
            return base_mask & (~pred if inst.guard_negated else pred)
        return base_mask

    def execute_alu(self, inst: Instruction, mask: np.ndarray) -> None:
        args = [self.value(s) for s in inst.srcs]
        result = alu(inst.opcode, args, inst.cmp)
        self.write(inst.dsts[0], result, mask)

    def execute_alu_decoded(self, decoded, mask: np.ndarray) -> None:
        """Decode-cache entry point (datapath-shared issue-path surface;
        the vector executor compiles a micro-op here)."""
        self.execute_alu(decoded.inst, mask)

    def execute_load(self, inst: Instruction, mask: np.ndarray,
                     addrs: np.ndarray) -> None:
        warp = self.warp
        if inst.space is MemSpace.SHARED:
            vals = np.zeros(warp.width, dtype=np.float64)
            idx = addrs[mask].astype(np.int64) // 4
            vals[mask] = warp.cta.shared[idx]
        else:
            vals = warp.launch.memory.load(addrs, mask)
        self.write(inst.dsts[0], vals, mask)

    def execute_store(self, inst: Instruction, mask: np.ndarray,
                      addrs: np.ndarray) -> None:
        warp = self.warp
        raw = self.value(inst.srcs[0])
        vals = np.broadcast_to(np.asarray(raw, dtype=np.float64),
                               (warp.width,))
        if inst.space is MemSpace.SHARED:
            idx = addrs[mask].astype(np.int64) // 4
            if inst.opcode is Opcode.ATOM:
                np.add.at(warp.cta.shared, idx, vals[mask])
            else:
                warp.cta.shared[idx] = vals[mask]
        elif inst.opcode is Opcode.ATOM:
            warp.launch.memory.atomic_add(addrs, vals, mask)
        else:
            warp.launch.memory.store(addrs, vals, mask)
