"""Top-level GPU: SMs + memory hierarchy + CTA dispatch + main loop."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..compiler.cfg import CFG
from ..config import GPUConfig
from ..events import EventQueue
from ..faults import NULL_CHECKERS, NULL_FAULTS
from ..memory.coalescer import CoalesceCache
from ..memory.hierarchy import MemoryHierarchy
from ..stats import Stats
from ..trace.tracer import NULL_TRACER
from .launch import KernelLaunch
from .sm import SM


class DeadlockError(RuntimeError):
    """The machine can make no further progress (a modeling bug or a
    mis-decoupled kernel)."""


class SimulationHang(DeadlockError):
    """A structured hang report: either forward progress stopped entirely
    (``no_progress``) or the run hit the ``max_cycles`` wall.

    Beyond the message, the exception carries machine-readable state so the
    harness and the fault campaign can classify hangs without parsing text:
    the PR-2 stall attribution of every scheduler at the moment of death,
    DAC queue occupancies, the cycle of the last issued instruction, and a
    per-warp state table.
    """

    def __init__(self, reason: str, cycle: int, last_progress_cycle: int,
                 stall_snapshot: dict, queue_occupancy: dict,
                 warp_states: list[str]):
        self.reason = reason
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.stall_snapshot = dict(stall_snapshot)
        self.queue_occupancy = dict(queue_occupancy)
        self.warp_states = list(warp_states)
        super().__init__(self._render())

    def to_dict(self) -> dict:
        """Lossless JSON-able form so a hang report can cross the service
        wire.  ``queue_occupancy`` is keyed by SM index (an int), which
        JSON would silently stringify — :meth:`from_dict` restores it."""
        return {
            "reason": self.reason,
            "cycle": self.cycle,
            "last_progress_cycle": self.last_progress_cycle,
            "stall_snapshot": dict(self.stall_snapshot),
            "queue_occupancy": {str(sm): dict(occ) for sm, occ
                                in self.queue_occupancy.items()},
            "warp_states": list(self.warp_states),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationHang":
        occupancy = {}
        for sm, occ in data["queue_occupancy"].items():
            try:
                key = int(sm)
            except ValueError:
                key = sm
            occupancy[key] = dict(occ)
        return cls(data["reason"], data["cycle"],
                   data["last_progress_cycle"], data["stall_snapshot"],
                   occupancy, data["warp_states"])

    def _render(self) -> str:
        head = ("simulation hang" if self.reason == "no_progress"
                else f"exceeded max_cycles")
        lines = [f"{head} at cycle {self.cycle} "
                 f"(last progress at cycle {self.last_progress_cycle})"]
        if self.stall_snapshot:
            stalls = ", ".join(f"{k}={v}" for k, v in
                               sorted(self.stall_snapshot.items()))
            lines.append(f"  scheduler stalls: {stalls}")
        for sm, occ in sorted(self.queue_occupancy.items()):
            body = ", ".join(f"{k}={v}" for k, v in sorted(occ.items()))
            lines.append(f"  sm{sm} queues: {body}")
        lines.extend(self.warp_states)
        return "\n".join(lines)


@dataclass
class RunResult:
    """Outcome of simulating one kernel launch."""

    cycles: int
    stats: Stats
    config: GPUConfig
    kernel_name: str
    extra: dict = field(default_factory=dict)

    @property
    def warp_instructions(self) -> float:
        return self.stats["warp_instructions"]

    @property
    def ipc(self) -> float:
        return self.stats["thread_instructions"] / max(1, self.cycles)

    def speedup_over(self, baseline: "RunResult") -> float:
        return baseline.cycles / max(1, self.cycles)


class GPU:
    """A simulated GPU instance.  Create one per kernel launch."""

    def __init__(self, config: GPUConfig, dac_program=None, tracer=None,
                 faults=None, checkers=None):
        self.config = config
        self.dac_program = dac_program
        self.stats = Stats()
        self.events = EventQueue()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NULL_FAULTS
        self.checkers = checkers if checkers is not None else NULL_CHECKERS
        self.faults.attach(self)
        self.now = 0
        # Effective issue engine.  The observability layers — tracing,
        # fault injection, runtime checkers — are defined per executed
        # scheduler walk (stall attribution, per-cycle checker cadence,
        # fault-site ordering), so they pin the reference walk engine.
        self.issue_engine = config.issue_engine
        if self.issue_engine == "batched" and (
                self.tracer.enabled or self.faults.enabled
                or self.checkers.enabled):
            self.issue_engine = "walk"
        self.hierarchy = MemoryHierarchy(config, self.events, self.stats,
                                         tracer=self.tracer,
                                         faults=self.faults)
        self.coalescer = CoalesceCache()
        self.sms = [self._make_sm(i) for i in range(config.num_sms)]
        self.engine = None
        if self.issue_engine == "batched":
            from .issue_engine import BatchedState
            self.engine = BatchedState(self)
        self._pending_blocks: deque[tuple[int, int, int]] = deque()
        self._launch: KernelLaunch | None = None
        self._last_progress = 0

    def _make_sm(self, index: int) -> SM:
        technique = self.config.technique
        if technique == "baseline":
            return SM(self, index)
        if technique == "cae":
            from ..baselines.cae import CAESM
            return CAESM(self, index)
        if technique == "mta":
            from ..baselines.mta import MTASM
            return MTASM(self, index)
        if technique == "dac":
            from ..core.dac_sm import DACSM
            return DACSM(self, index)
        raise ValueError(f"unknown technique: {technique}")

    # ---- shared analyses -------------------------------------------------

    def cfg_of(self, kernel) -> CFG:
        # The CFG rides on the kernel object itself: an ``id()``-keyed map
        # can serve a stale CFG when a collected kernel's id is reused, and
        # kernels (eq-comparing dataclasses) are unhashable, so a
        # WeakKeyDictionary is not an option either.
        cfg = getattr(kernel, "_cfg", None)
        if cfg is None:
            cfg = CFG(kernel)
            kernel._cfg = cfg
        return cfg

    def reconvergence(self, kernel, branch_index: int) -> int:
        return self.cfg_of(kernel).reconvergence_pc(branch_index)

    # ---- CTA dispatch -------------------------------------------------------

    def _fill_sms(self) -> None:
        progress = True
        while self._pending_blocks and progress:
            progress = False
            for sm in self.sms:
                if not self._pending_blocks:
                    break
                if sm.can_accept(self._launch):
                    sm.assign_cta(self._launch,
                                  self._pending_blocks.popleft())
                    progress = True

    def on_cta_complete(self, sm: SM) -> None:
        if self._pending_blocks and sm.can_accept(self._launch):
            sm.assign_cta(self._launch, self._pending_blocks.popleft())

    # ---- main loop ---------------------------------------------------------

    def run(self, launch: KernelLaunch) -> RunResult:
        if self.engine is not None:
            from .issue_engine import run_batched
            return run_batched(self, launch)
        if launch.warps_per_block > self.config.warps_per_sm:
            raise ValueError("CTA needs more warp slots than an SM has")
        self._launch = launch
        self._pending_blocks = deque(launch.block_indices())
        self._fill_sms()

        now = 0
        idle_streak = 0
        self._last_progress = 0
        tracer = self.tracer
        trace = tracer.enabled
        while True:
            self.now = now
            self.events.run_until(now)
            issued = False
            for sm in self.sms:
                if sm.cycle(now):
                    issued = True
            if not self._pending_blocks and not any(sm.busy()
                                                    for sm in self.sms):
                break
            if now >= self.config.max_cycles:
                raise self._hang("max_cycles", now)
            if issued:
                if trace:
                    tracer.commit(now, 1, self.sms)
                self._last_progress = now
                now += 1
                idle_streak = 0
                continue
            # Nothing issued: fast-forward to the next time anything can
            # change — an event, or a scheduler coming off its busy window.
            # The set of executed cycles is part of the timing semantics
            # (blocked DAC dequeues accrue stall counters each executed
            # cycle), so the skip condition must stay machine-wide; the
            # per-scheduler next-wake tracking lives inside Scheduler.tick,
            # which makes the non-skippable cycles O(1) per scheduler.
            candidates = []
            next_event = self.events.next_time()
            if next_event is not None:
                candidates.append(max(next_event, now + 1))
            for sm in self.sms:
                if now < sm.lsu_free:
                    candidates.append(sm.lsu_free)
                for sched in sm.schedulers:
                    if sched.warps and sched.busy_until > now:
                        candidates.append(sched.busy_until)
            if not candidates:
                idle_streak += 1
                if idle_streak > 4:
                    raise self._hang("no_progress", now)
                if trace:
                    tracer.commit(now, 1, self.sms)
                now += 1
                continue
            idle_streak = 0
            # The skipped cycles are provably quiescent (no event fires, no
            # scheduler frees up), so the tracer attributes them in bulk to
            # the state recorded at ``now``.
            nxt = min(candidates)
            if trace:
                tracer.commit(now, nxt - now, self.sms)
            now = nxt

        # Drain in-flight writes/events so the memory stats are complete
        # (does not extend the reported cycle count).
        while len(self.events):
            self.events.run_until(self.events.next_time())

        self.stats.add("cycles", now)
        if trace:
            tracer.finalize(self.stats, now, self.config)
        return RunResult(cycles=now, stats=self.stats, config=self.config,
                         kernel_name=launch.kernel.name)

    def _hang(self, reason: str, now: int) -> SimulationHang:
        """The structured report for either hang path: per-scheduler stall
        attribution (the read-only PR-2 diagnosis), DAC queue occupancies,
        and a per-warp state table."""
        stalls: dict[str, int] = {}
        for sm in self.sms:
            for scheduler in sm.schedulers:
                if not scheduler.warps:
                    continue
                why, _slot = sm.diagnose_stall(scheduler, now)
                stalls[why] = stalls.get(why, 0) + 1
        occupancy: dict[int, dict[str, int]] = {}
        for sm in self.sms:
            if not hasattr(sm, "atq_mem"):
                continue
            occupancy[sm.index] = {
                "atq_mem": len(sm.atq_mem),
                "atq_pred": len(sm.atq_pred),
                "pwaq": sum(len(w.pwaq) for w in sm.warps
                            if hasattr(w, "pwaq")),
                "pwpq": sum(len(w.pwpq) for w in sm.warps
                            if hasattr(w, "pwpq")),
            }
        return SimulationHang(reason, now, self._last_progress, stalls,
                              occupancy, self._warp_states())

    def _warp_states(self) -> list[str]:
        lines = []
        for sm in self.sms:
            for warp in sm.warps:
                inst = warp.launch.kernel.instructions[warp.pc] \
                    if not warp.done else None
                lines.append(
                    f"  sm{sm.index} warp slot {warp.slot} "
                    f"cta {warp.cta.block_idx} pc {warp.pc} "
                    f"done={warp.done} barrier={warp.at_barrier} "
                    f"pending={ {k: v for k, v in warp.pending.items() if v} } "
                    f"inst={inst}")
        return lines


def simulate(launch: KernelLaunch, config: GPUConfig, tracer=None,
             faults=None, checkers=None) -> RunResult:
    """Convenience one-call entry point."""
    return GPU(config, tracer=tracer, faults=faults,
               checkers=checkers).run(launch)
