"""Kernel-launch state: device memory, grid geometry, parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

WORD = 4          # every data element is one 4-byte word


class GlobalMemory:
    """Flat device memory, word-addressed internally, byte-addressed in the
    ISA.  Values are float64 words (exact for integers up to 2**53)."""

    def __init__(self, size_bytes: int = 1 << 22):
        if size_bytes % WORD:
            raise ValueError("memory size must be a multiple of 4 bytes")
        self.words = np.zeros(size_bytes // WORD, dtype=np.float64)
        self._next_free = 128           # keep address 0 unused
        #: byte address -> requested byte length, for every allocation.
        #: The lint bounds pass checks indexing against these extents.
        self.allocations: dict[int, int] = {}

    @property
    def size_bytes(self) -> int:
        return len(self.words) * WORD

    def alloc(self, num_words: int) -> int:
        """Bump-allocate; returns the byte address (128-byte aligned)."""
        addr = self._next_free
        self._next_free += ((num_words * WORD + 127) // 128) * 128
        if self._next_free > self.size_bytes:
            raise MemoryError("device memory exhausted")
        self.allocations[addr] = num_words * WORD
        return addr

    def extent_at(self, byte_addr: int) -> int | None:
        """Byte length of the allocation starting at ``byte_addr``, if any."""
        return self.allocations.get(int(byte_addr))

    def alloc_array(self, values) -> int:
        data = np.asarray(values, dtype=np.float64)
        addr = self.alloc(data.size)
        self.words[addr // WORD: addr // WORD + data.size] = data
        return addr

    def read_array(self, byte_addr: int, num_words: int) -> np.ndarray:
        start = byte_addr // WORD
        return self.words[start:start + num_words].copy()

    def load(self, byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        out = np.zeros(len(byte_addrs), dtype=np.float64)
        idx = (byte_addrs[mask].astype(np.int64)) // WORD
        out[mask] = self.words[idx]
        return out

    def store(self, byte_addrs: np.ndarray, values: np.ndarray,
              mask: np.ndarray) -> None:
        idx = (byte_addrs[mask].astype(np.int64)) // WORD
        self.words[idx] = values[mask]

    def atomic_add(self, byte_addrs: np.ndarray, values: np.ndarray,
                   mask: np.ndarray) -> None:
        idx = (byte_addrs[mask].astype(np.int64)) // WORD
        np.add.at(self.words, idx, values[mask])


@dataclass
class KernelLaunch:
    """One kernel launch: the kernel, grid geometry, parameter values, and
    the device memory image it runs against."""

    kernel: "object"                       # repro.isa.Kernel
    grid_dim: tuple[int, int, int]
    block_dim: tuple[int, int, int]
    params: dict[str, float]
    memory: GlobalMemory
    shared_words: int = 0                  # shared memory per CTA

    def __post_init__(self) -> None:
        missing = set(self.kernel.params) - set(self.params)
        if missing:
            raise ValueError(f"missing kernel parameters: {sorted(missing)}")

    @property
    def threads_per_block(self) -> int:
        bx, by, bz = self.block_dim
        return bx * by * bz

    @property
    def num_blocks(self) -> int:
        gx, gy, gz = self.grid_dim
        return gx * gy * gz

    @property
    def warps_per_block(self) -> int:
        return (self.threads_per_block + 31) // 32

    def block_indices(self) -> list[tuple[int, int, int]]:
        gx, gy, gz = self.grid_dim
        return [(x, y, z) for z in range(gz) for y in range(gy)
                for x in range(gx)]


@dataclass
class CTAState:
    """A resident cooperative thread array on an SM."""

    block_idx: tuple[int, int, int]
    launch: KernelLaunch
    shared: np.ndarray = field(default=None)
    warps_done: int = 0
    barrier_count: int = 0
    barrier_generation: int = 0

    def __post_init__(self) -> None:
        if self.shared is None:
            self.shared = np.zeros(max(1, self.launch.shared_words),
                                   dtype=np.float64)
