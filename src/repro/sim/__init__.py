"""Cycle-level SIMT GPU timing model (the GPGPU-sim substitute)."""

from ..config import (
    CacheConfig,
    CAEConfig,
    DACConfig,
    DRAMConfig,
    GPUConfig,
    MTAConfig,
)
from ..stats import Stats
from .executor import WarpExecutor, alu
from .functional import (
    FunctionalInterpreter,
    FunctionalResult,
    TraceEntry,
    run_functional,
)
from .gpu import GPU, DeadlockError, RunResult, SimulationHang, simulate
from .launch import CTAState, GlobalMemory, KernelLaunch
from .scheduler import Scheduler
from .simt_stack import SIMTStack
from .sm import SM
from .warp import WarpContext

__all__ = [
    "CAEConfig", "CTAState", "CacheConfig", "DACConfig", "DRAMConfig",
    "DeadlockError", "FunctionalInterpreter", "FunctionalResult", "GPU",
    "GPUConfig", "GlobalMemory", "KernelLaunch", "MTAConfig", "RunResult",
    "SIMTStack", "SM", "Scheduler", "SimulationHang", "Stats", "TraceEntry",
    "WarpContext", "WarpExecutor", "alu", "run_functional", "simulate",
]
