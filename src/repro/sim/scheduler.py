"""Warp schedulers: loose round-robin and two-level active (Table 1,
Narasiman et al. [20])."""

from __future__ import annotations


class Scheduler:
    """One of the SM's warp schedulers.

    Each scheduler owns the warp slots with ``slot % num_schedulers ==
    index`` and issues at most one warp instruction every
    ``issue_interval`` cycles (a 32-thread warp issues over 16 lanes in two
    cycles on the baseline, paper §5.1.1).

    ``two_level`` keeps a small *active set*; warps that stall on memory are
    demoted and replaced by ready pending warps, which concentrates issue
    bandwidth and spreads memory latency (Narasiman et al.).
    """

    def __init__(self, sm, index: int, policy: str, active_size: int,
                 issue_interval: int):
        self.sm = sm
        self.index = index
        self.policy = policy
        self.active_size = active_size
        self.issue_interval = issue_interval
        self.busy_until = 0
        self.warps: list = []              # warps owned by this scheduler
        self._rotation = 0
        # Per-cycle issue-slot attribution, maintained only when the GPU's
        # tracer is enabled; the main loop commits it after each cycle.
        self.stall_reason = "idle"
        self.stall_slot = -1

    def add_warp(self, warp) -> None:
        self.warps.append(warp)

    def remove_warp(self, warp) -> None:
        self.warps.remove(warp)

    def _ordered(self) -> list:
        n = len(self.warps)
        if n == 0:
            return []
        rotated = (self.warps[self._rotation % n:]
                   + self.warps[:self._rotation % n])
        if self.policy != "two_level":
            return rotated
        active = rotated[:self.active_size]
        pending = rotated[self.active_size:]
        # Active warps first; stalled active warps fall behind ready pending
        # warps naturally because try_issue skips them.
        return active + pending

    def tick(self, now: int) -> bool:
        """Attempt one issue; returns True if an instruction issued."""
        trace = self.sm.trace_on
        if now < self.busy_until or not self.warps:
            if trace:
                self.stall_reason = ("busy" if now < self.busy_until
                                     else "idle")
                self.stall_slot = -1
            return False
        for warp in self._ordered():
            # Position must be taken before issue: an exit instruction can
            # retire the CTA and remove the warp from this scheduler.
            position = self.warps.index(warp)
            interval = self.sm.try_issue(warp, now, self)
            if interval:
                self.busy_until = now + interval
                if self.policy == "two_level":
                    # Keep issuing warps hot: rotate only past the issuer.
                    self._rotation = (position + 1) % max(1, len(self.warps))
                else:
                    self._rotation = (self._rotation + 1) \
                        % max(1, len(self.warps))
                if trace:
                    self.stall_reason = "issued"
                    self.stall_slot = getattr(warp, "slot", -1)
                return True
        if trace:
            self.stall_reason, self.stall_slot = \
                self.sm.diagnose_stall(self, now)
        return False
