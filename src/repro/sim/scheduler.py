"""Warp schedulers: loose round-robin and two-level active (Table 1,
Narasiman et al. [20]) — with event-driven wake/sleep readiness caching.

The golden timing model walks every owned warp each cycle and lets
``try_issue`` reject the ones that cannot issue.  Almost always the answer
is identical to the previous cycle: nothing a warp waits on (a scoreboard
release, ``lsu_free``, a barrier, a DAC queue arrival) changed.  The
scheduler therefore caches a failed walk and *sleeps*: subsequent ticks
replay the walk's observable side effects (the DAC dequeue stall counters,
which the golden walk increments every blocked cycle) without touching any
warp, until either a wake condition fires or ``lsu_free`` is reached.

Wake conditions (each clears ``_asleep``):

- ``WarpContext.release`` — a scoreboard register became ready;
- barrier release and CTA assignment (``SM.wake_all``) — the SM-wide
  changes that can unblock warps on any scheduler;
- DAC record delivery: ``PerWarpQueue`` push and AEU early-fill completion;
- ATQ space freed (affine-warp enqueue readiness);
- warps added to or removed from the scheduler;
- ``lsu_free`` — the only *time*-gated input: a blocked walk bounds its
  sleep with the ``lsu_free`` it observed, so later movement of the LSU
  horizon at worst causes a harmless early re-walk.

Sleeping is disabled while tracing: the traced walk feeds the per-cycle
stall attribution (PR 2), whose bucket-sum invariant must keep holding.
The set of *executed* cycles is decided by ``GPU.run`` and is untouched —
this cache only makes a blocked scheduler's executed cycle O(1).
"""

from __future__ import annotations

_NEVER = float("inf")


class Scheduler:
    """One of the SM's warp schedulers.

    Each scheduler owns the warp slots with ``slot % num_schedulers ==
    index`` and issues at most one warp instruction every
    ``issue_interval`` cycles (a 32-thread warp issues over 16 lanes in two
    cycles on the baseline, paper §5.1.1).

    ``two_level`` keeps a small *active set*; warps that stall on memory are
    demoted and replaced by ready pending warps, which concentrates issue
    bandwidth and spreads memory latency (Narasiman et al.).
    """

    # Readiness dirty-set sentinel.  The walk engine keeps it None so the
    # hot wake sites (``WarpContext.release``) can distinguish the engines
    # with one attribute load; the batched engine replaces it with a set.
    _dirty = None

    def __init__(self, sm, index: int, policy: str, active_size: int,
                 issue_interval: int):
        self.sm = sm
        self.index = index
        self.policy = policy
        self.active_size = active_size
        self.issue_interval = issue_interval
        self.busy_until = 0
        self.warps: list = []              # warps owned by this scheduler
        self._rotation = 0
        # Wake/sleep state: when asleep, ticks replay ``_sleep_stalls``
        # (stat keys the cached blocked walk added) until ``_sleep_wake``
        # or an external wake.  Tracing pins the slow path.
        self._asleep = False
        self._sleep_stalls: tuple = ()
        self._sleep_wake = _NEVER
        self._walk_stalls: list | None = None
        # Per-cycle issue-slot attribution, maintained only when the GPU's
        # tracer is enabled; the main loop commits it after each cycle.
        self.stall_reason = "idle"
        self.stall_slot = -1

    def wake(self) -> None:
        self._asleep = False

    def wake_warp(self, warp) -> None:
        """Targeted wake: ``warp``'s readiness inputs changed.  The walk
        engine re-walks everything anyway; the batched engine overrides
        this to also mark the warp's readiness columns dirty."""
        self._asleep = False

    def add_warp(self, warp) -> None:
        self.warps.append(warp)
        warp.sched = self
        self._asleep = False

    def remove_warp(self, warp) -> None:
        # Swap-pop instead of list.remove: retire of an N-warp scheduler is
        # O(1) shifting instead of O(N).  The resulting iteration-order
        # permutation is absorbed by the rotation (tests/test_issue_engine
        # pins Stats invariance against order changes).
        warps = self.warps
        i = warps.index(warp)
        last = warps.pop()
        if last is not warp:
            warps[i] = last
        warp.sched = None
        self._asleep = False

    def note_stall(self, key: str) -> None:
        """A ``try_issue`` failure path adds a stall counter (the DAC
        dequeue stalls): record it so a sleeping tick can replay the same
        per-cycle delta the golden walk would have produced."""
        self.sm.stats.add(key)
        stalls = self._walk_stalls
        if stalls is None:
            self._walk_stalls = [key]
        else:
            stalls.append(key)

    def _ordered(self) -> list:
        n = len(self.warps)
        if n == 0:
            return []
        rotated = (self.warps[self._rotation % n:]
                   + self.warps[:self._rotation % n])
        if self.policy != "two_level":
            return rotated
        active = rotated[:self.active_size]
        pending = rotated[self.active_size:]
        # Active warps first; stalled active warps fall behind ready pending
        # warps naturally because try_issue skips them.  For both policies
        # the issue *order* is the plain rotation (active + pending is the
        # rotated list re-joined); the policies differ only in how the
        # rotation advances after an issue.
        return active + pending

    def tick(self, now: int) -> bool:
        """Attempt one issue; returns True if an instruction issued."""
        sm = self.sm
        trace = sm.trace_on
        warps = self.warps
        if now < self.busy_until or not warps:
            if trace:
                self.stall_reason = ("busy" if now < self.busy_until
                                     else "idle")
                self.stall_slot = -1
            return False
        if self._asleep and now < self._sleep_wake and not trace:
            # Cached blocked walk: nothing this scheduler's warps wait on
            # has changed.  Replay the stall counters the golden walk adds
            # every blocked cycle and skip the walk itself.
            stalls = self._sleep_stalls
            if stalls:
                stats = sm.stats
                for key in stalls:
                    stats.add(key)
            return False
        self._asleep = False
        self._walk_stalls = None
        n = len(warps)
        rot = self._rotation % n
        for i in range(n):
            # Walk in rotated order by index arithmetic; the position must
            # be taken before issue because an exit instruction can retire
            # the CTA and remove the warp from this scheduler.
            position = rot + i
            if position >= n:
                position -= n
            warp = warps[position]
            interval = sm.try_issue(warp, now, self)
            if interval:
                self.busy_until = now + interval
                if self.policy == "two_level":
                    # Keep issuing warps hot: rotate only past the issuer.
                    self._rotation = (position + 1) % max(1, len(self.warps))
                else:
                    self._rotation = (self._rotation + 1) \
                        % max(1, len(self.warps))
                # Issuing wakes sleepers through targeted hooks only: the
                # cross-scheduler channels are barrier release (wake_all in
                # _do_barrier), CTA retire/assign (add/remove_warp and
                # on_cta_assigned), DAC queue movement (ATQ/PerWarpQueue
                # push/pop hooks), and L1 unlocks (AEU wake).  ``lsu_free``
                # advancing needs no wake: a sleeper blocked on it bounded
                # its sleep with the value it saw, and a stale-time wake
                # just re-walks and re-sleeps.
                if trace:
                    self.stall_reason = "issued"
                    self.stall_slot = getattr(warp, "slot", -1)
                return True
        if trace:
            self.stall_reason, self.stall_slot = sm.diagnose_stall(self, now)
            return False
        # Blocked: sleep until a wake condition, replaying the stall deltas
        # this walk produced.  ``lsu_free`` is the only *time*-gated input
        # (a memory-ready warp becomes issuable by time passing alone), so
        # it bounds the sleep; everything else wakes explicitly.
        self._asleep = True
        stalls = self._walk_stalls
        self._sleep_stalls = tuple(stalls) if stalls else ()
        lsu_free = sm.lsu_free
        self._sleep_wake = lsu_free if lsu_free > now else _NEVER
        return False
