"""Batched cross-warp issue engine (``GPUConfig.issue_engine="batched"``).

The walk engine (sim/scheduler.py, kept verbatim as the pinned differential
oracle) re-derives warp readiness by calling ``try_issue`` on every owned
warp each executed cycle.  This engine keeps readiness *materialized* in
per-scheduler bit columns indexed by warp position and updates them only
when a wake hook reports that a warp's readiness inputs changed:

- ``ready_base``   — the warp would issue ignoring LSU gating;
- ``lsu_gate``     — issue additionally needs ``now >= sm.lsu_free``;
- ``stall_*``      — the per-blocked-cycle DAC dequeue stall counter the
                     walk would emit for this warp (pred-record missing,
                     address record missing, fills outstanding).

The columns are Python-int bitmasks (one bit per warp slot position — the
same packed-lane representation the PR-7 vector datapath uses for SIMT
masks); ``readiness_columns()`` exposes them as numpy bool vectors for the
property tests.  ``tick`` selects the issuer with one rotated first-set-bit
over the ready mask instead of an O(blocked-prefix) walk, and derives the
PR-5 stall-replay contract from the same masks:

- when something issues, each stall-coded warp strictly *before* the issuer
  in rotated order contributes one count of its key (exactly the walk's
  ``note_stall`` calls);
- when nothing issues, every stall-coded warp contributes one count, and
  the aggregate is recorded as the scheduler's replay tuple.  While the
  scheduler then sleeps, the replay is *lazy*: instead of being re-added on
  every executed cycle (the walk's asleep tick), the engine counts executed
  cycles (``exec_iter``) and multiplies out the deltas when the scheduler
  wakes.  Whether the wake cycle itself is included depends on the waker's
  tick rank relative to the sleeper — a later-rank (or same-cycle event)
  waker means the walk's sleeper already replayed this cycle.

Because DAC stall counters accrue per *executed* cycle, the set of executed
cycles is part of the timing semantics.  The engine therefore replaces the
walk loop's per-blocked-cycle candidate rebuild (sim/gpu.py) with a global
next-wake heap plus the awake set: ``lsu_free`` assignments push heap
entries validated on pop (the value only ever increases, so a stale
entry's replacement is already in the heap), chain execution pushes
*forced* entries replicating the cycles the walk would have executed
around each issue boundary, and scheduler busy windows need no entries at
all — a busy scheduler keeps its awake bit (its tick is skipped by a
two-load check), so the blocked-cycle scan over awake units finds every
``busy_until`` bound the walk's full rescan would.

Chain execution: when the selected warp's next instructions form a run of
timing-trivial ALU ops (no memory / branch / barrier / exit / DAC queue
ops) and every other warp on the scheduler is done and no CTA can arrive,
the whole dependence chain is issued in one tick by replaying ``sm.issue``
at the exact future boundary times the walk would have used (dependence
release times are computable because ALU latencies are static).  Register
values are issue-time functional in this simulator and the chain executes
in program order, so the data side is unchanged; events scheduled early
commute because release callbacks only touch per-warp scoreboard state.

Tracing, fault injection, and runtime checkers pin the walk engine (GPU
downgrades transparently) — their contracts are defined per executed
scheduler walk.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush

from .scheduler import Scheduler
from .warp import WarpContext

#: stall_code -> Stats key (index 0 = no per-blocked-cycle stall counter).
STALL_KEYS = (None, "dac.stall_pred_record", "dac.stall_no_record",
              "dac.stall_fill")

_LSU = 1       # candidate: an SM's LSU frees up
_FORCED = 2    # candidate: chain-execution boundary cycle (always valid)

_CHAIN_CAP = 64       # max ops appended per chain (keeps ticks bounded)
_CHAIN_WALL = 8192    # conservative bound on a chain's cycle extent


def _chainable(decoded) -> bool:
    """Timing-trivial ALU op: static latency, no structural resources."""
    return not (decoded.is_exit or decoded.is_barrier or decoded.is_branch
                or decoded.is_memory or decoded.is_enq) \
        and decoded.deq_token is None


class BatchedScheduler(Scheduler):
    """Drop-in scheduler whose tick selects from materialized readiness
    columns.  Produces bit-identical cycles and Stats to the walk."""

    #: Debug invariant: after each dirty refresh, assert the columns equal
    #: a from-scratch reclassification (set by the property tests).
    verify_columns = False

    #: A busy scheduler's tick is a no-op returning False; the run loop
    #: skips the call (expansion units return True mid-expansion instead).
    _busy_progress = False

    def __init__(self, sm, index, policy, active_size, issue_interval):
        super().__init__(sm, index, policy, active_size, issue_interval)
        self._dirty: set = set()
        self._pos: dict = {}
        self._ready_base = 0
        self._lsu_gate = 0
        self._stall_pred = 0
        self._stall_norec = 0
        self._stall_fill = 0
        self._replay: tuple | None = None
        self._replay_iter = 0
        self._engine = None          # BatchedState, set once the GPU wires up
        self._rank = -1
        self._bit = 0

    # ---- wake plumbing --------------------------------------------------

    def _wake_only(self) -> None:
        # Only a sleeping scheduler has state to restore (the awake bit is
        # set exactly while not asleep, and a replay implies asleep), so
        # the awake-path cost is one attribute check.
        if self._asleep:
            if self._replay is not None:
                engine = self._engine
                self._flush_replay(engine is not None
                                   and engine.cur_rank > self._rank)
            self._asleep = False
            engine = self._engine
            if engine is not None:
                engine.awake |= self._bit

    def wake(self) -> None:
        self._wake_only()
        if self.warps:
            self._dirty.update(self.warps)

    def wake_warp(self, warp) -> None:
        self._dirty.add(warp)
        if self._asleep:
            self._wake_only()

    def release_warp(self, warp) -> None:
        """A scoreboard release for ``warp`` (warp.py routes here instead
        of :meth:`wake_warp`): the only readiness input that changed is the
        warp's own scoreboard, so for the plain-next-op common case the
        base reclassification happens inline — classify_warp falls back to
        exactly these rules, and the warp's stall bits are either already
        clear (a stall code needs a dequeue next-op) or pending a refresh
        (the warp is still in the dirty set, which recomputes them before
        the masks are read)."""
        if self._asleep:
            self._wake_only()
        if warp.done or warp.at_barrier:
            return                    # columns unchanged by a release
        nd = warp.code[warp.pc]
        if nd.deq_token is not None:
            self._dirty.add(warp)     # DACSM-specific classification
            return
        i = self._pos.get(warp)
        if i is None:
            return
        bit = 1 << i
        pending = warp.pending
        for name in nd.scoreboard:
            if pending.get(name, 0):
                self._ready_base &= ~bit
                self._lsu_gate &= ~bit
                return
        self._ready_base |= bit
        if nd.needs_lsu:
            self._lsu_gate |= bit
        else:
            self._lsu_gate &= ~bit

    def add_warp(self, warp) -> None:
        self._pos[warp] = len(self.warps)
        self.warps.append(warp)
        warp.sched = self
        self.wake_warp(warp)

    def remove_warp(self, warp) -> None:
        warps = self.warps
        pos = self._pos
        i = pos.pop(warp)
        last = warps.pop()
        tail = len(warps)
        if last is not warp:
            warps[i] = last
            pos[last] = i
            self._dirty.add(last)     # its column bit moves to position i
        keep = ~((1 << tail) | (1 << i))
        self._ready_base &= keep
        self._lsu_gate &= keep
        self._stall_pred &= keep
        self._stall_norec &= keep
        self._stall_fill &= keep
        warp.sched = None
        self._wake_only()

    # ---- replay accounting ----------------------------------------------

    def _flush_replay(self, include_current: bool) -> None:
        """Multiply out the lazy per-executed-cycle stall replay.  The walk
        replayed at every executed cycle strictly after the blocking one;
        ``include_current`` adds the in-flight cycle (waker ticked after
        this scheduler, or end-of-run flush)."""
        rep = self._replay
        self._replay = None
        cycles = self._engine.exec_iter - self._replay_iter - 1
        if include_current:
            cycles += 1
        if cycles > 0:
            stats = self.sm.stats
            for key, count in rep:
                stats.add(key, count * cycles)

    # ---- readiness columns ----------------------------------------------

    def _refresh_dirty(self) -> None:
        classify = self.sm.classify_warp
        pos = self._pos
        rb = self._ready_base
        lg = self._lsu_gate
        s1 = self._stall_pred
        s2 = self._stall_norec
        s3 = self._stall_fill
        for warp in self._dirty:
            i = pos.get(warp)
            if i is None:
                continue                      # retired since being dirtied
            bit = 1 << i
            nbit = ~bit
            ready, gate, stall = classify(warp)
            rb = (rb | bit) if ready else (rb & nbit)
            lg = (lg | bit) if gate else (lg & nbit)
            s1 = (s1 | bit) if stall == 1 else (s1 & nbit)
            s2 = (s2 | bit) if stall == 2 else (s2 & nbit)
            s3 = (s3 | bit) if stall == 3 else (s3 & nbit)
        self._dirty.clear()
        self._ready_base = rb
        self._lsu_gate = lg
        self._stall_pred = s1
        self._stall_norec = s2
        self._stall_fill = s3

    def readiness_columns(self) -> dict:
        """The columns as numpy bool vectors indexed by warp position (the
        property tests compare these against a from-scratch recompute)."""
        import numpy as np
        n = len(self.warps)
        out = {}
        for name, mask in (("ready_base", self._ready_base),
                           ("lsu_gate", self._lsu_gate),
                           ("stall_pred", self._stall_pred),
                           ("stall_norec", self._stall_norec),
                           ("stall_fill", self._stall_fill)):
            out[name] = np.fromiter(((mask >> i) & 1 for i in range(n)),
                                    dtype=bool, count=n)
        return out

    def _assert_columns(self) -> None:
        classify = self.sm.classify_warp
        for warp, i in self._pos.items():
            ready, gate, stall = classify(warp)
            bit = 1 << i
            got = (bool(self._ready_base & bit), bool(self._lsu_gate & bit),
                   (1 if self._stall_pred & bit else
                    2 if self._stall_norec & bit else
                    3 if self._stall_fill & bit else 0))
            if got != (ready, gate, stall):
                raise AssertionError(
                    f"stale readiness for sm{self.sm.index} sched"
                    f"{self.index} pos {i}: cached {got}, "
                    f"fresh {(ready, gate, stall)}")

    # ---- tick ------------------------------------------------------------

    def tick(self, now: int) -> bool:
        if now < self.busy_until:
            return False
        if self._replay is not None:
            # Spurious time-wake while asleep-with-stalls: the walk would
            # fresh-walk this cycle (its recorded lsu bound has passed), so
            # flush the replay up to — excluding — this cycle and let the
            # fresh pass below emit this cycle's stalls.
            self._flush_replay(False)
        warps = self.warps
        if not warps:
            self._asleep = True
            return False
        self._asleep = False
        if self._dirty:
            self._refresh_dirty()
        if self.verify_columns:
            self._assert_columns()
        sm = self.sm
        ready = self._ready_base
        gate = self._lsu_gate
        if gate and now < sm.lsu_free:
            ready &= ~gate
        if not ready:
            return self._block(now)
        n = len(warps)
        rot = self._rotation % n
        if rot:
            rmask = ((ready >> rot) | (ready << (n - rot))) & ((1 << n) - 1)
        else:
            rmask = ready
        first = (rmask & -rmask).bit_length() - 1
        if first and (self._stall_pred | self._stall_norec
                      | self._stall_fill):
            self._emit_prefix_stalls(rot, first, n)
        pos = first + rot
        if pos >= n:
            pos -= n
        warp = warps[pos]
        is_ctx = isinstance(warp, WarpContext)
        if is_ctx:
            pc0 = warp.pc
            decoded0 = warp.code[pc0]
            if decoded0.deq_token is None:
                # Fast path: the readiness columns already assert every
                # try_issue gate (done/barrier/scoreboard/LSU; extra_ready
                # has no overrides), so issue directly instead of
                # re-deriving them.  DAC dequeues keep the full path —
                # their gating and issue are interleaved.
                interval = sm.issue(warp, decoded0, now)
            else:
                interval = sm.try_issue(warp, now, self)
        else:
            pc0 = -1
            interval = sm.try_issue(warp, now, self)
        if not interval:
            raise RuntimeError(
                f"batched readiness inconsistency: sm{sm.index} scheduler "
                f"{self.index} selected position {pos} as ready but "
                f"try_issue declined (kernel "
                f"{getattr(getattr(warp, 'launch', None), 'kernel', None)})")
        # Rotation advance — byte-for-byte the walk's rule (fresh len: the
        # issue may have retired warps; stale position: captured before).
        if self.policy == "two_level":
            self._rotation = (pos + 1) % max(1, len(self.warps))
        else:
            self._rotation = (self._rotation + 1) % max(1, len(self.warps))
        busy = now + interval
        if warp.sched is self:
            # Still owned (not retired by an exit): its pc/scoreboard/queue
            # state changed with the issue.  For the fast-path common case
            # (plain op issued, plain op next) the base classification is
            # computed inline instead of round-tripping through the dirty
            # set — classify_warp falls back to exactly these rules when
            # the next op is not a DAC dequeue (and the warp's stall bits
            # are already clear: a stall code needs a dequeue op, which
            # takes the full path and dirties normally).
            done = warp.done
            if is_ctx and decoded0.deq_token is None:
                nd = None if done or warp.at_barrier else warp.code[warp.pc]
                if nd is not None and nd.deq_token is None:
                    bit = 1 << self._pos[warp]
                    pending = warp.pending
                    for name in nd.scoreboard:
                        if pending.get(name, 0):
                            self._ready_base &= ~bit
                            self._lsu_gate &= ~bit
                            break
                    else:
                        self._ready_base |= bit
                        if nd.needs_lsu:
                            self._lsu_gate |= bit
                        else:
                            self._lsu_gate &= ~bit
                else:
                    if nd is None:
                        bit = 1 << self._pos[warp]
                        self._ready_base &= ~bit
                        self._lsu_gate &= ~bit
                    else:
                        self._dirty.add(warp)
            else:
                self._dirty.add(warp)
            if is_ctx and sm.chain_ok and not done and not warp.at_barrier:
                # Chain eligibility, most-selective test first: on a
                # scheduler with >1 live warp (the common case) the loop
                # fails within a couple of loads.
                for w in warps:
                    if w is not warp and not w.done:
                        break
                else:
                    if (not sm.gpu._pending_blocks
                            and now + _CHAIN_WALL < sm.config.max_cycles
                            and _chainable(warp.code[warp.pc])):
                        busy = self._chain(warp, now, interval,
                                           warp.code[pc0])
                        self._dirty.add(warp)
        self.busy_until = busy
        return True

    def _emit_prefix_stalls(self, rot: int, first: int, n: int) -> None:
        """The walk's note_stall calls for blocked stall-coded warps it
        encountered before reaching the issuer."""
        stats = self.sm.stats
        lowmask = (1 << first) - 1
        full = (1 << n) - 1
        for key, mask in (("dac.stall_pred_record", self._stall_pred),
                          ("dac.stall_no_record", self._stall_norec),
                          ("dac.stall_fill", self._stall_fill)):
            if not mask:
                continue
            if rot:
                rmask = ((mask >> rot) | (mask << (n - rot))) & full
            else:
                rmask = mask
            count = (rmask & lowmask).bit_count()
            if count:
                stats.add(key, count)

    def _block(self, now: int) -> bool:
        """Nothing can issue: emit this cycle's stall counters, record the
        lazy replay, and sleep (bounded by lsu_free when that is the only
        gate, exactly like the walk's ``_sleep_wake``)."""
        sm = self.sm
        engine = self._engine
        pairs = []
        for key, mask in (("dac.stall_pred_record", self._stall_pred),
                          ("dac.stall_no_record", self._stall_norec),
                          ("dac.stall_fill", self._stall_fill)):
            if mask:
                count = mask.bit_count()
                sm.stats.add(key, count)
                pairs.append((key, count))
        self._asleep = True
        if pairs:
            self._replay = tuple(pairs)
            self._replay_iter = engine.exec_iter
        else:
            self._replay = None
        if self._ready_base & self._lsu_gate:
            # LSU-gated warps become ready by time passing alone: bound the
            # sleep.  (A stale bound just causes a harmless early re-walk,
            # same as the walk engine.)
            engine.wake_at(sm.lsu_free, self._rank)
        return False

    # ---- chain execution -------------------------------------------------

    def _chain(self, warp, now: int, interval: int, decoded0) -> int:
        """Issue the warp's run of dependence-satisfiable ALU ops at their
        exact future boundary times; returns the final busy_until.

        Eligibility was checked by the caller: every other warp on this
        scheduler is done and no CTA can arrive, so nothing else can claim
        an issue slot at any boundary; excluded op classes keep the SIMT
        stack, LSU, and queues untouched; scoreboard waits are computable
        because in-chain producers have static ALU/SFU latencies and any
        reference to an out-of-chain outstanding register stops the chain
        (the walk would wait on an event whose time we don't model here).

        Executed-cycle parity: for each boundary ``b`` the walk executes
        ``b`` (the issue), ``b+1`` (post-issue), and ``b+interval`` (its
        busy-until candidate); those are pushed as forced entries so
        machine-wide skipped-cycle accounting (DAC stall replay on *other*
        schedulers) sees the identical executed-cycle set."""
        sm = self.sm
        cfg = sm.config
        engine = self._engine
        code = warp.code
        pending = warp.pending
        local_rel: dict = {}
        acquires: dict = {}
        # Seed with the just-issued op when it was itself a plain ALU op
        # (its release time is static); any other op class left its dst
        # outstanding with an event-determined release, which the
        # acquire-parity rule below treats as chain-stopping.
        if _chainable(decoded0) and decoded0.dst_name is not None:
            lat = cfg.sfu_latency if decoded0.is_sfu else cfg.alu_latency
            local_rel[decoded0.dst_name] = now + lat
            acquires[decoded0.dst_name] = 1
        b, iv = now, interval
        extra = 0
        note_forced = engine.note_forced
        while extra < _CHAIN_CAP:
            decoded = code[warp.pc]
            if not _chainable(decoded):
                break
            t_dep = 0
            ok = True
            for name in decoded.scoreboard:
                have = pending.get(name, 0)
                if have:
                    if have != acquires.get(name, 0):
                        ok = False     # out-of-chain producer outstanding
                        break
                    t = local_rel[name]
                    if t > t_dep:
                        t_dep = t
            if not ok:
                break
            nb = b + iv
            if t_dep > nb:
                nb = t_dep
            niv = sm.issue(warp, decoded, nb)
            note_forced(nb)
            note_forced(nb + 1)
            note_forced(nb + niv)
            name = decoded.dst_name
            lat = cfg.sfu_latency if decoded.is_sfu else cfg.alu_latency
            local_rel[name] = nb + lat
            acquires[name] = acquires.get(name, 0) + 1
            b, iv = nb, niv
            extra += 1
        if extra:
            engine.chain_ops += extra
            note_forced(now + interval)   # op 0's busy-candidate cycle
            if self.policy != "two_level":
                # The walk advances lrr rotation once per issue.
                self._rotation = (self._rotation + extra) \
                    % max(1, len(self.warps))
        return b + iv


class BatchedState:
    """GPU-side engine state: the unit rank order, the awake mask, the
    global next-wake heaps, and the executed-cycle counter."""

    def __init__(self, gpu):
        self.gpu = gpu
        units: list = []
        for sm in gpu.sms:
            units.extend(sm.tick_units())
            sm._engine = self
        for rank, unit in enumerate(units):
            unit._rank = rank
            unit._bit = 1 << rank
            unit._engine = self
        self.units = units
        self.awake = (1 << len(units)) - 1
        self.unit_wakes: list = []            # (time, rank)
        self.cand: list = []                  # (time, kind, seq, payload)
        self._seq = itertools.count()
        self.exec_iter = 0
        self.cur_rank = -1
        self.chain_ops = 0                    # debug counter, not a Stat

    # Candidate producers (validated on pop: lsu_free only ever moves
    # forward, so the entry for the current value is always present).
    # Scheduler busy windows need no entries: a busy scheduler keeps its
    # awake bit, and the blocked-cycle scan reads busy_until directly.

    def note_lsu(self, sm) -> None:
        heappush(self.cand, (sm.lsu_free, _LSU, next(self._seq), sm))

    def note_forced(self, t) -> None:
        heappush(self.cand, (t, _FORCED, next(self._seq), None))

    def wake_at(self, t, rank: int) -> None:
        heappush(self.unit_wakes, (t, rank))

    def flush_replays(self) -> None:
        """End-of-run / hang flush: the final cycle's ticks already
        happened, so every pending replay includes the current cycle."""
        for unit in self.units:
            if getattr(unit, "_replay", None) is not None:
                unit._flush_replay(True)


def run_batched(gpu, launch):
    """The batched main loop: tick only awake units (in the walk's exact
    rank order), and pick the next executed cycle from the event queue plus
    the validated candidate heap instead of rescanning every scheduler."""
    from .gpu import RunResult

    if launch.warps_per_block > gpu.config.warps_per_sm:
        raise ValueError("CTA needs more warp slots than an SM has")
    gpu._launch = launch
    gpu._pending_blocks = deque(launch.block_indices())
    gpu._fill_sms()

    engine = gpu.engine
    units = engine.units
    unit_wakes = engine.unit_wakes
    cand = engine.cand
    events = gpu.events
    sms = gpu.sms
    pending = gpu._pending_blocks
    max_cycles = gpu.config.max_cycles
    now = 0
    idle_streak = 0
    gpu._last_progress = 0
    while True:
        gpu.now = now
        engine.exec_iter += 1
        engine.cur_rank = -1
        while unit_wakes and unit_wakes[0][0] <= now:
            engine.awake |= 1 << heappop(unit_wakes)[1]
        events.run_until(now)
        issued = False
        # Ascending-rank scan, re-reading the awake mask after every tick:
        # a unit woken by an *earlier*-rank unit still ticks this cycle
        # (the walk would reach it later in the same cycle); one woken by a
        # later-rank unit waits (the walk already passed it — its replay
        # accounting includes this cycle via the rank comparison).
        rank = 0
        awake = engine.awake
        while True:
            rest = awake >> rank
            if not rest:
                break
            rank += (rest & -rest).bit_length() - 1
            unit = units[rank]
            if now < unit.busy_until:
                # Skip without calling: a busy scheduler's tick is a pure
                # False (and it keeps the awake bit so the blocked-cycle
                # scan below sees its busy_until); a busy expansion unit
                # reports mid-expansion progress — unless its SM has no
                # live affine streams, in which case the walk would not
                # have ticked it at all (DACSM.cycle's gate).
                if unit._busy_progress:
                    if unit.sm.affine_execs:
                        issued = True
                    else:
                        unit._asleep = True
                        engine.awake &= ~(1 << rank)
            else:
                engine.cur_rank = rank
                if unit.tick(now):
                    issued = True
                if unit._asleep:
                    engine.awake &= ~(1 << rank)
            rank += 1
            awake = engine.awake
        if not pending and not any(sm.busy() for sm in sms):
            break
        if now >= max_cycles:
            engine.flush_replays()
            raise gpu._hang("max_cycles", now)
        if issued:
            gpu._last_progress = now
            now += 1
            idle_streak = 0
            continue
        nxt = events.next_time()
        if nxt is not None and nxt <= now:
            nxt = now + 1
        while cand:
            t, kind, _seq, obj = cand[0]
            if t <= now:
                heappop(cand)
                continue
            if kind == _LSU and obj.lsu_free != t:
                heappop(cand)
                continue
            if nxt is None or t < nxt:
                nxt = t
            break
        # Busy-window bounds come from the awake set, not the heap: every
        # awake unit at a blocked cycle is a busy scheduler (anything else
        # either issued — no fast-forward — or went to sleep), and the walk
        # counts its busy_until only while it owns warps.
        scan = engine.awake
        while scan:
            low = scan & -scan
            scan ^= low
            unit = units[low.bit_length() - 1]
            bu = unit.busy_until
            if bu > now and unit.warps and (nxt is None or bu < nxt):
                nxt = bu
        if nxt is None:
            idle_streak += 1
            if idle_streak > 4:
                engine.flush_replays()
                raise gpu._hang("no_progress", now)
            now += 1
            continue
        idle_streak = 0
        now = nxt

    # Drain in-flight writes/events so the memory stats are complete
    # (does not extend the reported cycle count).
    while len(events):
        events.run_until(events.next_time())
    engine.flush_replays()

    gpu.stats.add("cycles", now)
    return RunResult(cycles=now, stats=gpu.stats, config=gpu.config,
                     kernel_name=launch.kernel.name)
