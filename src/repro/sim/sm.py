"""Streaming Multiprocessor timing model.

Per cycle each of the SM's schedulers issues at most one warp instruction
from a ready warp (scoreboard + structural checks).  Values are computed at
issue; the scoreboard and the memory hierarchy decide when dependents may
issue.  Subclasses hook the issue path to add CAE, MTA, or DAC behaviour.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..isa import Decoded, Instruction, MemSpace
from .launch import CTAState, KernelLaunch
from .scheduler import Scheduler
from .vector import VectorRegisterFile
from .warp import WarpContext, make_warp


class SM:
    """One streaming multiprocessor."""

    # The batched issue engine may replay ``issue()`` at computed future
    # boundary times to execute a whole ALU dependence chain in one tick
    # (sim/issue_engine.py).  That replay is only sound when the subclass
    # does not override the issue path with time- or state-coupled
    # behaviour; CAE (single-cycle affine issue intervals) opts out.
    chain_ok = True

    def __init__(self, gpu, index: int):
        self.gpu = gpu
        self.index = index
        self.config = gpu.config
        self.stats = gpu.stats
        self.events = gpu.events
        self.tracer = gpu.tracer
        self.trace_on = gpu.tracer.enabled
        self.faults = gpu.faults
        self.checkers = gpu.checkers
        self.l1 = gpu.hierarchy.l1_of(index)
        self.coalescer = gpu.coalescer
        self.ctas: list[CTAState] = []
        self.warps: list[WarpContext] = []
        self.datapath = self.config.datapath
        # Vector datapath: the SM owns the pooled (slots, 32) register file
        # its warps take row views into.
        self._regfile = (VectorRegisterFile(self.config.warps_per_sm)
                         if self.datapath == "vector" else None)
        # Min-heap of free hardware warp slots (list(range(n)) is already
        # heap-ordered); assignment always takes the lowest slot.
        self._free_slots = list(range(self.config.warps_per_sm))
        sched_cls = Scheduler
        if gpu.issue_engine == "batched":
            from .issue_engine import BatchedScheduler as sched_cls
        self.schedulers = [
            sched_cls(self, i, self.config.scheduler,
                      self.config.active_warps_per_scheduler,
                      self.config.issue_interval)
            for i in range(self.config.num_schedulers)
        ]
        self.lsu_free = 0
        # Batched-engine state (set by issue_engine.BatchedState); None on
        # the walk engine so the lsu_free hook below costs one None check.
        self._engine = None

    # ---- CTA management -------------------------------------------------

    def can_accept(self, launch: KernelLaunch) -> bool:
        return (len(self.ctas) < self.config.max_ctas_per_sm
                and len(self._free_slots) >= launch.warps_per_block)

    def assign_cta(self, launch: KernelLaunch,
                   block_idx: tuple[int, int, int]) -> CTAState:
        cta = CTAState(block_idx, launch)
        self.ctas.append(cta)
        for w in range(launch.warps_per_block):
            slot = heapq.heappop(self._free_slots)
            warp = make_warp(launch, cta, w, slot, self.datapath,
                             self._regfile)
            self.warps.append(warp)
            self.schedulers[slot % len(self.schedulers)].add_warp(warp)
        self.on_cta_assigned(cta)
        if self.trace_on:
            self.tracer.cta_assign(self.gpu.now, self.index, cta.block_idx)
        return cta

    def on_cta_assigned(self, cta: CTAState) -> None:
        """Hook for DAC: start the affine-stream execution for this CTA."""

    def _retire_cta(self, cta: CTAState) -> None:
        # Backward swap-pop filter: O(retired) instead of O(N) shifting per
        # removed warp.  Indices above the cursor are already-kept warps, so
        # the element swapped down is never one we still have to visit.
        warps = self.warps
        num_scheds = len(self.schedulers)
        for i in range(len(warps) - 1, -1, -1):
            warp = warps[i]
            if warp.cta is not cta:
                continue
            last = warps.pop()
            if last is not warp:
                warps[i] = last
            self.schedulers[warp.slot % num_scheds].remove_warp(warp)
            heapq.heappush(self._free_slots, warp.slot)
        ctas = self.ctas
        i = ctas.index(cta)
        last = ctas.pop()
        if last is not cta:
            ctas[i] = last
        self.on_cta_retired(cta)
        if self.trace_on:
            self.tracer.cta_retire(self.gpu.now, self.index, cta.block_idx)
        self.gpu.on_cta_complete(self)

    def on_cta_retired(self, cta: CTAState) -> None:
        """Hook for DAC teardown (unlock leftover lines, clear queues)."""

    # ---- main loop --------------------------------------------------------

    def cycle(self, now: int) -> bool:
        issued = False
        for scheduler in self.schedulers:
            if scheduler.tick(now):
                issued = True
        return issued

    def busy(self) -> bool:
        return bool(self.warps)

    def tick_units(self) -> list:
        """The per-cycle tick units of this SM in intra-cycle rank order
        (the order :meth:`cycle` invokes them).  The batched GPU loop
        enumerates these once and wakes them by rank."""
        return list(self.schedulers)

    def wake_all(self) -> None:
        """Clear every scheduler's blocked-walk cache.  Called at the SM-wide
        state changes that can unblock warps on *any* scheduler: a barrier
        release and a CTA assignment.  Narrower changes wake their own
        scheduler (scoreboard releases, DAC queue pushes); ``lsu_free`` is
        time-bounded by each sleeper's own wake time."""
        for scheduler in self.schedulers:
            scheduler.wake()

    # ---- issue ------------------------------------------------------------

    def try_issue(self, warp: WarpContext, now: int,
                  scheduler: Scheduler) -> int:
        """Issue the warp's next instruction if it is ready.  Returns the
        number of cycles the scheduler is busy (0 = nothing issued)."""
        if warp.done or warp.at_barrier:
            return 0
        decoded = warp.code[warp.pc]
        if not warp.scoreboard_ready(decoded):
            return 0
        if decoded.needs_lsu and now < self.lsu_free:
            return 0
        if not self.extra_ready(warp, decoded.inst, now):
            return 0
        return self.issue(warp, decoded, now)

    def extra_ready(self, warp: WarpContext, inst: Instruction,
                    now: int) -> bool:
        """Hook: DAC dequeue-readiness checks (paper Fig. 9 ⑨)."""
        return True

    def classify_warp(self, warp) -> tuple[bool, bool, int]:
        """Pure readiness mirror of :meth:`try_issue` for the batched
        engine's columns: ``(ready_base, lsu_gated, stall_code)``.

        ``ready_base`` — the warp would issue if any LSU gating is ignored;
        ``lsu_gated`` — issue additionally requires ``now >= lsu_free``;
        ``stall_code`` — index into ``issue_engine.STALL_KEYS`` of the
        per-blocked-cycle stall counter the walk would emit for this warp
        (0 = none).  Must not mutate any timing state."""
        if warp.done or warp.at_barrier:
            return False, False, 0
        decoded = warp.code[warp.pc]
        if not warp.scoreboard_ready(decoded):
            return False, False, 0
        return True, decoded.needs_lsu, 0

    # ---- stall diagnosis (tracing only; must not mutate) -----------------

    def diagnose_stall(self, scheduler, now: int) -> tuple[str, int]:
        """Why the scheduler's slot went unused this cycle: the reason of
        its head-of-line warp (the warp it would have issued first), and
        that warp's slot.  Read-only mirror of the :meth:`try_issue`
        gating, called only when tracing is enabled and nothing issued."""
        for warp in scheduler._ordered():
            reason = self.diagnose_warp(warp, now)
            if reason is not None:
                return reason, getattr(warp, "slot", -1)
        return "idle", -1

    def diagnose_warp(self, warp, now: int) -> str | None:
        """Stall reason for one warp; None when it has nothing to issue."""
        if warp.done:
            return None
        if warp.at_barrier:
            return "barrier"
        inst = warp.launch.kernel.instructions[warp.pc]
        if not warp.regs_ready(inst):
            return "memory" if warp.mem_pending else "scoreboard"
        if inst.is_memory and inst.space is not MemSpace.SHARED \
                and now < self.lsu_free:
            return "memory"
        if not self.extra_ready(warp, inst, now):
            return "queue_empty"
        return "other"

    def issue(self, warp: WarpContext, decoded: Decoded, now: int) -> int:
        inst = decoded.inst
        mask, active = warp.issue_mask(decoded)
        self._count_issue(warp, decoded, active)
        warp.last_issue = now

        if decoded.is_exit:
            self._do_exit(warp)
        elif decoded.is_barrier:
            self._do_barrier(warp)
        elif decoded.is_branch:
            self._do_branch(warp, inst, mask)
        elif decoded.is_memory:
            self._do_memory(warp, decoded, mask, now)
            warp.stack.pc = warp.pc + 1
        else:
            self._do_alu(warp, decoded, mask, now)
            warp.stack.pc = warp.pc + 1
        interval = self.issue_interval_for(warp, inst, now)
        if self.trace_on:
            self.tracer.warp_issue(now, self.index, warp.slot, inst,
                                   active, interval)
        return interval

    def issue_interval_for(self, warp: WarpContext, inst: Instruction,
                           now: int) -> int:
        """Hook: CAE issues affine instructions off the SIMT lanes in a
        single cycle."""
        return self.config.issue_interval

    def _count_issue(self, warp: WarpContext, decoded: Decoded,
                     active: int) -> None:
        stats = self.stats
        stats.add("warp_instructions")
        stats.add("thread_instructions", active)
        stats.add(decoded.stat_key)
        stats.add("rf_accesses", decoded.nregs * active)
        if decoded.counts_alu:
            stats.add("sfu_ops" if decoded.is_sfu else "alu_ops", active)

    # ---- per-class execution ---------------------------------------------

    def _do_exit(self, warp: WarpContext) -> None:
        warp.done = True
        cta = warp.cta
        cta.warps_done += 1
        if cta.warps_done == warp.launch.warps_per_block:
            self._retire_cta(cta)

    def _do_barrier(self, warp: WarpContext) -> None:
        cta = warp.cta
        warp.at_barrier = True
        cta.barrier_count += 1
        waiting = sum(1 for w in self.warps
                      if w.cta is cta and not w.done)
        if cta.barrier_count >= waiting:
            cta.barrier_count = 0
            cta.barrier_generation = getattr(cta, "barrier_generation", 0) + 1
            for w in self.warps:
                if w.cta is cta and w.at_barrier:
                    w.at_barrier = False
                    w.stack.pc = w.pc + 1
            # Released warps live on both schedulers (and the expansion
            # units may resume past a barrier marker): wake every sleeper.
            self.wake_all()
            self.on_barrier_release(cta)
            if self.trace_on:
                self.tracer.barrier_release(self.gpu.now, self.index,
                                            cta.block_idx)

    def on_barrier_release(self, cta: CTAState) -> None:
        """Hook: the AEU resumes expansion for this CTA (paper §4.2)."""

    def _do_branch(self, warp: WarpContext, inst: Instruction,
                   mask) -> None:
        target = warp.launch.kernel.target_index(inst.target)
        if inst.guard is None:
            warp.stack.pc = target
            return
        taken, ntaken, taken_any, ntaken_any = warp.branch_split(mask)
        if not ntaken_any:
            warp.stack.pc = target
        elif not taken_any:
            warp.stack.pc = warp.pc + 1
        else:
            self.stats.add("divergent_branches")
            rpc = self.gpu.reconvergence(warp.launch.kernel, warp.pc)
            warp.stack.diverge(taken, ntaken, target, warp.pc + 1, rpc)

    def _do_alu(self, warp: WarpContext, decoded: Decoded,
                mask, now: int) -> None:
        inst = decoded.inst
        warp.executor.execute_alu_decoded(decoded, mask)
        latency = (self.config.sfu_latency if decoded.is_sfu
                   else self.config.alu_latency)
        name = decoded.dst_name
        warp.acquire(name)
        self.events.schedule(now + latency,
                             lambda t, w=warp, n=name: w.release(n))
        self.on_alu_executed(warp, inst, mask)

    def on_alu_executed(self, warp: WarpContext, inst: Instruction,
                        mask) -> None:
        """Hook: CAE affine-tag maintenance."""

    def _do_memory(self, warp: WarpContext, decoded: Decoded,
                   mask, now: int) -> None:
        inst = decoded.inst
        ex = warp.executor
        addrs = ex.addresses(decoded.mem_ref)
        if decoded.is_shared:
            self._do_shared(warp, decoded, mask, addrs, now)
            return
        if decoded.is_load:
            ex.execute_load(inst, mask, addrs)
            lines = self.coalescer.lines(addrs, warp.mask_bools(mask))
            self.stats.add("gmem_loads")
            self.stats.add("gmem_load_lines", len(lines))
            if not lines:
                return
            self.lsu_free = now + len(lines)
            if self._engine is not None:
                self._engine.note_lsu(self)
            warp.acquire(decoded.dst_name)
            warp.mem_pending += 1
            state = {"remaining": len(lines)}
            if self.trace_on:
                self.tracer.load_issue(now, self.index, warp.slot,
                                       len(lines))

            def on_line(t, state=state, w=warp, name=decoded.dst_name):
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    w.release(name)
                    w.mem_pending -= 1
                    if self.trace_on:
                        self.tracer.load_fill(t, self.index, w.slot)

            for line in lines:
                self.issue_line_read(warp, inst, line, now, on_line)
        else:
            ex.execute_store(inst, mask, addrs)
            lines = self.coalescer.lines(addrs, warp.mask_bools(mask))
            self.stats.add("gmem_stores")
            self.stats.add("gmem_store_lines", len(lines))
            self.lsu_free = now + max(1, len(lines))
            if self._engine is not None:
                self._engine.note_lsu(self)
            for line in lines:
                self.l1.write(line, now)

    def issue_line_read(self, warp: WarpContext, inst: Instruction,
                        line: int, now: int, callback) -> None:
        """Hook: MTA redirects through the prefetch buffer and trains the
        stride tables here."""
        self.l1.read(line, now, callback)

    def _do_shared(self, warp: WarpContext, decoded: Decoded,
                   mask, addrs: np.ndarray, now: int) -> None:
        self.stats.add("shared_accesses")
        inst = decoded.inst
        if decoded.is_load:
            warp.executor.execute_load(inst, mask, addrs)
            name = decoded.dst_name
            warp.acquire(name)
            self.events.schedule(
                now + self.config.shared_latency,
                lambda t, w=warp, n=name: w.release(n))
        else:
            warp.executor.execute_store(inst, mask, addrs)
