"""Per-warp execution state for the timing model."""

from __future__ import annotations

import numpy as np

from ..isa.instructions import decoded_of
from .executor import WarpExecutor
from .launch import CTAState, KernelLaunch
from .simt_stack import SIMTStack


class WarpContext:
    """One warp: SIMT stack, architectural registers, and scoreboard.

    The scoreboard is a per-register count of outstanding writes; an
    instruction may issue only when every register it reads or writes has a
    zero count (in-order issue, stall-on-use).

    This class is the **scalar datapath** (the differential oracle).  The
    vector datapath subclasses it (:class:`repro.sim.vector
    .VectorWarpContext`), overriding ``_init_datapath`` and the mask helper
    API below; the technique layers (SM/DACSM/CAESM, functional
    interpreter) only manipulate masks through that API, so they stay
    datapath-agnostic.
    """

    datapath = "scalar"

    __slots__ = (
        "launch", "cta", "warp_in_cta", "slot", "width", "tx", "ty", "tz",
        "initial_mask", "stack", "regs", "preds", "pending", "mem_pending",
        "done", "at_barrier", "executor", "cae_stride", "last_issue",
        "code",                    # per-kernel Decoded list (shared)
        "sched",                   # owning scheduler (wake target)
        "_mask_any",               # (mask object, any, all, count) cache
        "pwaq", "pwpq",            # DAC per-warp queues (attached by DACSM)
    )

    def __init__(self, launch: KernelLaunch, cta: CTAState,
                 warp_in_cta: int, slot: int, width: int = 32):
        self.launch = launch
        self.cta = cta
        self.warp_in_cta = warp_in_cta
        self.slot = slot                    # hardware warp slot on the SM
        self.width = width
        bx, by, bz = launch.block_dim
        linear = np.arange(warp_in_cta * width, (warp_in_cta + 1) * width)
        self.initial_mask = linear < launch.threads_per_block
        linear = np.minimum(linear, launch.threads_per_block - 1)
        self.tx = (linear % bx).astype(np.float64)
        self.ty = ((linear // bx) % by).astype(np.float64)
        self.tz = (linear // (bx * by)).astype(np.float64)
        self.pending: dict[str, int] = {}
        self.mem_pending = 0                # outstanding load instructions
        self.done = False
        self.at_barrier = False
        self.cae_stride: dict[str, float | None] = {}
        self.last_issue = 0
        self.code = decoded_of(launch.kernel)
        self.sched = None
        self._mask_any = None
        self._init_datapath()

    def _init_datapath(self) -> None:
        """Create the datapath-specific state: stack, register storage,
        predicate storage, executor.  Overridden by the vector datapath."""
        self.stack = SIMTStack(self.initial_mask)
        self.regs: dict[str, np.ndarray] = {}
        self.preds: dict[str, np.ndarray] = {}
        self.executor = WarpExecutor(self)

    # ---- geometry --------------------------------------------------------

    def special(self, family: str, dim: str):
        if family == "tid":
            return {"x": self.tx, "y": self.ty, "z": self.tz}[dim]
        axis = "xyz".index(dim)
        if family == "ntid":
            return float(self.launch.block_dim[axis])
        if family == "ctaid":
            return float(self.cta.block_idx[axis])
        if family == "nctaid":
            return float(self.launch.grid_dim[axis])
        raise ValueError(f"unknown special register %{family}.{dim}")

    @property
    def pc(self) -> int:
        return self.stack.pc

    # ---- scoreboard --------------------------------------------------------

    def acquire(self, name: str) -> None:
        self.pending[name] = self.pending.get(name, 0) + 1

    def release(self, name: str) -> None:
        self.pending[name] -= 1
        # A scoreboard release is a wake condition: the owning scheduler may
        # have cached this warp as blocked.  The batched engine additionally
        # needs the warp marked dirty (``_dirty`` is None on the walk
        # engine, so the hot path stays two attribute ops there).
        sched = self.sched
        if sched is not None:
            if sched._dirty is None:
                sched._asleep = False
            else:
                sched.release_warp(self)

    def regs_ready(self, inst) -> bool:
        pending = self.pending
        if not pending:
            return True
        for op in inst.read_regs():
            if pending.get(op.name, 0):
                return False
        for op in inst.written_regs():
            if pending.get(op.name, 0):
                return False
        return True

    def scoreboard_ready(self, decoded) -> bool:
        """Fast-path ``regs_ready`` over the precomputed name tuple."""
        pending = self.pending
        if not pending:
            return True
        for name in decoded.scoreboard:
            if pending.get(name, 0):
                return False
        return True

    def _mask_facts(self, mask) -> tuple:
        """(mask, any, all, count) memoized on top-of-stack mask identity.

        SIMT-stack masks are copied on push and never mutated in place, so
        the array object is a sound cache key.  The issue and dequeue paths
        ask these questions on every walk/issue; without the cache the
        numpy reductions dominate.
        """
        count = int(np.count_nonzero(mask))
        facts = (mask, count > 0, count == mask.shape[0], count)
        self._mask_any = facts
        return facts

    def active_any(self) -> bool:
        mask = self.stack.active_mask
        cached = self._mask_any
        if cached is not None and cached[0] is mask:
            return cached[1]
        return self._mask_facts(mask)[1]

    def active_all(self) -> bool:
        mask = self.stack.active_mask
        cached = self._mask_any
        if cached is not None and cached[0] is mask:
            return cached[2]
        return self._mask_facts(mask)[2]

    def active_count(self) -> int:
        mask = self.stack.active_mask
        cached = self._mask_any
        if cached is not None and cached[0] is mask:
            return cached[3]
        return self._mask_facts(mask)[3]

    # ---- datapath-agnostic mask API -------------------------------------
    #
    # Masks are opaque to the technique layers: bool arrays on the scalar
    # datapath, LaneMask bitmasks on the vector one.  Everything a timing
    # model asks about a mask goes through these helpers.

    def issue_mask(self, decoded):
        """(mask, active-lane count) for issuing ``decoded`` now: the
        top-of-stack mask with the guard predicate applied."""
        if decoded.guard_pred is None:
            return self.stack.active_mask, self.active_count()
        mask = self.executor.guard_mask(decoded.inst,
                                        self.stack.active_mask)
        return mask, int(np.count_nonzero(mask))

    def mask_count(self, mask) -> int:
        return int(np.count_nonzero(mask))

    def mask_any(self, mask) -> bool:
        return bool(mask.any())

    def mask_all(self, mask) -> bool:
        return bool(mask.all())

    def mask_bools(self, mask) -> np.ndarray:
        """The mask as a bool lane vector (for fancy indexing)."""
        return mask

    def mask_is_initial(self, mask) -> bool:
        return bool(np.array_equal(mask, self.initial_mask))

    def branch_split(self, mask):
        """(taken, ntaken, taken_any, ntaken_any) for a guarded branch:
        ``mask`` is the guard-applied taken set, ``ntaken`` the remaining
        active lanes."""
        ntaken = self.stack.active_mask & ~mask
        return mask, ntaken, bool(mask.any()), bool(ntaken.any())


def make_warp(launch: KernelLaunch, cta: CTAState, warp_in_cta: int,
              slot: int, datapath: str = "scalar", regfile=None):
    """Construct a warp context for the requested datapath."""
    if datapath == "vector":
        from .vector import VectorWarpContext
        return VectorWarpContext(launch, cta, warp_in_cta, slot,
                                 regfile=regfile)
    return WarpContext(launch, cta, warp_in_cta, slot)
