"""Per-warp execution state for the timing model."""

from __future__ import annotations

import numpy as np

from .executor import WarpExecutor
from .launch import CTAState, KernelLaunch
from .simt_stack import SIMTStack


class WarpContext:
    """One warp: SIMT stack, architectural registers, and scoreboard.

    The scoreboard is a per-register count of outstanding writes; an
    instruction may issue only when every register it reads or writes has a
    zero count (in-order issue, stall-on-use).
    """

    __slots__ = (
        "launch", "cta", "warp_in_cta", "slot", "width", "tx", "ty", "tz",
        "initial_mask", "stack", "regs", "preds", "pending", "mem_pending",
        "done", "at_barrier", "executor", "cae_stride", "last_issue",
        "pwaq", "pwpq",            # DAC per-warp queues (attached by DACSM)
    )

    def __init__(self, launch: KernelLaunch, cta: CTAState,
                 warp_in_cta: int, slot: int, width: int = 32):
        self.launch = launch
        self.cta = cta
        self.warp_in_cta = warp_in_cta
        self.slot = slot                    # hardware warp slot on the SM
        self.width = width
        bx, by, bz = launch.block_dim
        linear = np.arange(warp_in_cta * width, (warp_in_cta + 1) * width)
        self.initial_mask = linear < launch.threads_per_block
        linear = np.minimum(linear, launch.threads_per_block - 1)
        self.tx = (linear % bx).astype(np.float64)
        self.ty = ((linear // bx) % by).astype(np.float64)
        self.tz = (linear // (bx * by)).astype(np.float64)
        self.stack = SIMTStack(self.initial_mask)
        self.regs: dict[str, np.ndarray] = {}
        self.preds: dict[str, np.ndarray] = {}
        self.pending: dict[str, int] = {}
        self.mem_pending = 0                # outstanding load instructions
        self.done = False
        self.at_barrier = False
        self.executor = WarpExecutor(self)
        self.cae_stride: dict[str, float | None] = {}
        self.last_issue = 0

    # ---- geometry --------------------------------------------------------

    def special(self, family: str, dim: str):
        if family == "tid":
            return {"x": self.tx, "y": self.ty, "z": self.tz}[dim]
        axis = "xyz".index(dim)
        if family == "ntid":
            return float(self.launch.block_dim[axis])
        if family == "ctaid":
            return float(self.cta.block_idx[axis])
        if family == "nctaid":
            return float(self.launch.grid_dim[axis])
        raise ValueError(f"unknown special register %{family}.{dim}")

    @property
    def pc(self) -> int:
        return self.stack.pc

    # ---- scoreboard --------------------------------------------------------

    def acquire(self, name: str) -> None:
        self.pending[name] = self.pending.get(name, 0) + 1

    def release(self, name: str) -> None:
        self.pending[name] -= 1

    def regs_ready(self, inst) -> bool:
        pending = self.pending
        if not pending:
            return True
        for op in inst.read_regs():
            if pending.get(op.name, 0):
                return False
        for op in inst.written_regs():
            if pending.get(op.name, 0):
                return False
        return True
