"""Pure functional kernel interpreter (no timing).

Executes a :class:`KernelLaunch` to completion, warp by warp, using the
same operand/ALU semantics and SIMT-stack reconvergence as the timing
model but without any notion of cycles.  Uses:

* a fast way to run a kernel when only its output matters;
* the oracle the test suite checks every timing model against;
* a debugging aid (`trace=` captures every executed instruction).

Barriers are honoured by interleaving the CTA's warps at barrier
granularity; warp-level races within a barrier interval execute in warp
order (the same order the timing model's functional layer uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.cfg import CFG
from ..isa import Instruction, Kernel
from .launch import CTAState, KernelLaunch
from .warp import WarpContext, make_warp


@dataclass
class TraceEntry:
    """One executed warp instruction (produced with ``trace=True``)."""

    block: tuple[int, int, int]
    warp: int
    pc: int
    instruction: Instruction
    active: int

    def __str__(self) -> str:
        return (f"cta{self.block} w{self.warp} pc={self.pc:3d} "
                f"[{self.active:2d} lanes] {self.instruction}")


@dataclass
class FunctionalResult:
    instructions: int = 0
    per_warp: dict = field(default_factory=dict)
    trace: list[TraceEntry] = field(default_factory=list)


class FunctionalInterpreter:
    """Executes kernels functionally; see module docstring."""

    def __init__(self, launch: KernelLaunch, trace: bool = False,
                 max_instructions: int = 50_000_000,
                 datapath: str = "scalar"):
        self.launch = launch
        self.cfg = CFG(launch.kernel)
        self.trace = trace
        self.max_instructions = max_instructions
        self.datapath = datapath
        self.result = FunctionalResult()

    def run(self) -> FunctionalResult:
        for block_idx in self.launch.block_indices():
            self._run_cta(block_idx)
        return self.result

    # ---- one CTA ------------------------------------------------------

    def _run_cta(self, block_idx: tuple[int, int, int]) -> None:
        cta = CTAState(block_idx, self.launch)
        regfile = None
        if self.datapath == "vector":
            from .vector import VectorRegisterFile
            regfile = VectorRegisterFile(self.launch.warps_per_block)
        warps = [make_warp(self.launch, cta, w, w, self.datapath, regfile)
                 for w in range(self.launch.warps_per_block)]
        # Run warps round-robin in barrier-delimited phases: each warp runs
        # until it hits a barrier or exits; when all have, release and
        # repeat.
        while not all(w.done for w in warps):
            progressed = False
            for warp in warps:
                if warp.done or warp.at_barrier:
                    continue
                self._run_warp_until_barrier(warp, block_idx)
                progressed = True
            if not progressed:
                raise RuntimeError("functional interpreter wedged "
                                   "(barrier without release?)")
            if all(w.done or w.at_barrier for w in warps):
                for warp in warps:
                    if warp.at_barrier:
                        warp.at_barrier = False
                        warp.stack.pc = warp.pc + 1

    def _run_warp_until_barrier(self, warp: WarpContext,
                                block_idx) -> None:
        executor = warp.executor
        while not warp.done:
            decoded = warp.code[warp.pc]
            inst = decoded.inst
            mask, active = warp.issue_mask(decoded)
            self._count(warp, inst, active, block_idx)
            if decoded.is_exit:
                warp.done = True
                return
            if decoded.is_barrier:
                warp.at_barrier = True
                return
            if decoded.is_branch:
                self._branch(warp, inst, mask)
                continue
            if decoded.is_memory:
                addrs = executor.addresses(decoded.mem_ref)
                if decoded.is_load:
                    executor.execute_load(inst, mask, addrs)
                else:
                    executor.execute_store(inst, mask, addrs)
            elif inst.written_regs():
                executor.execute_alu_decoded(decoded, mask)
            warp.stack.pc = warp.pc + 1

    def _branch(self, warp: WarpContext, inst: Instruction, mask) -> None:
        target = self.launch.kernel.target_index(inst.target)
        if inst.guard is None:
            warp.stack.pc = target
            return
        taken, ntaken, taken_any, ntaken_any = warp.branch_split(mask)
        if not ntaken_any:
            warp.stack.pc = target
        elif not taken_any:
            warp.stack.pc = warp.pc + 1
        else:
            rpc = self.cfg.reconvergence_pc(warp.pc)
            warp.stack.diverge(taken, ntaken, target, warp.pc + 1, rpc)

    def _count(self, warp, inst, active: int, block_idx) -> None:
        res = self.result
        res.instructions += 1
        if res.instructions > self.max_instructions:
            raise RuntimeError("functional interpreter exceeded "
                               f"{self.max_instructions} instructions")
        key = (block_idx, warp.warp_in_cta)
        res.per_warp[key] = res.per_warp.get(key, 0) + 1
        if self.trace:
            res.trace.append(TraceEntry(block_idx, warp.warp_in_cta,
                                        warp.pc, inst, active))


def run_functional(launch: KernelLaunch, trace: bool = False,
                   datapath: str = "scalar") -> FunctionalResult:
    """Execute a launch functionally (no timing); mutates ``launch.memory``."""
    return FunctionalInterpreter(launch, trace=trace,
                                 datapath=datapath).run()
