"""Flat counter store used by every timing component."""

from __future__ import annotations

from collections import defaultdict


class Stats:
    """A defaultdict of numeric counters with convenience helpers.

    Every hardware model increments named counters here; the harness and the
    energy model read them.  Keeping one flat namespace makes experiment
    reporting trivial and keeps the component code free of bookkeeping
    classes.
    """

    def __init__(self) -> None:
        self.counters: defaultdict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self.counters

    def as_dict(self) -> dict[str, float]:
        return dict(self.counters)

    @classmethod
    def from_dict(cls, counters: dict[str, float]) -> "Stats":
        """Inverse of :meth:`as_dict` (the JSON round-trip path)."""
        out = cls()
        out.counters.update(counters)
        return out

    def merged_with(self, other: "Stats") -> "Stats":
        out = Stats()
        for src in (self, other):
            for key, val in src.counters.items():
                out.counters[key] += val
        return out

    def report(self, prefix: str = "") -> str:
        lines = [f"{k:<44s} {v:>16,.0f}" if float(v).is_integer()
                 else f"{k:<44s} {v:>16,.3f}"
                 for k, v in sorted(self.counters.items())
                 if k.startswith(prefix)]
        return "\n".join(lines)
