"""Design-space sweep utilities.

A sweep varies one knob of the machine (a nested ``GPUConfig`` field, the
technique, or the SM count) across a list of values and reports each
variant's speedup over a shared baseline.  Used by the ablation benches and
``examples/design_space.py``.

Sweep points go through the same cached/parallel pipeline as the figure
grid: each variant is one (benchmark, technique, config) cell, so warm
sweeps load from the disk cache and ``jobs > 1`` fans variants out over
worker processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import GPUConfig


def override(config: GPUConfig, path: str, value) -> GPUConfig:
    """Return ``config`` with the dotted ``path`` (e.g. ``dac.pwaq_entries``
    or ``l1.size_bytes``) replaced by ``value``."""
    parts = path.split(".")
    if len(parts) == 1:
        return dataclasses.replace(config, **{parts[0]: value})
    if len(parts) == 2:
        group = getattr(config, parts[0])
        return dataclasses.replace(
            config, **{parts[0]: dataclasses.replace(group,
                                                     **{parts[1]: value})})
    raise ValueError(f"path too deep: {path}")


@dataclass
class SweepPoint:
    value: object
    cycles: int
    speedup: float
    stats: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    benchmark: str
    knob: str
    points: list[SweepPoint]

    def table(self) -> str:
        from .report import ascii_table
        rows = [[str(p.value), p.cycles, p.speedup] for p in self.points]
        return ascii_table([self.knob, "cycles", "speedup"], rows,
                           f"sweep of {self.knob} on {self.benchmark}")


def sweep(benchmark: str, knob: str, values, config: GPUConfig,
          technique: str = "dac", scale: str = "paper",
          keep_stats: tuple[str, ...] = (), jobs: int = 1,
          use_cache: bool = True) -> SweepResult:
    """Run ``benchmark`` once per knob value; speedups are against the
    *baseline technique on the unmodified config*."""
    from .runner import run_one

    variants = [override(config, knob, value) for value in values]
    if jobs and jobs > 1:
        from .parallel import run_grid
        run_grid([(benchmark, "baseline", config)]
                 + [(benchmark, technique, v) for v in variants],
                 scale, jobs=jobs, use_cache=use_cache)
    base = run_one(benchmark, "baseline", scale, config,
                   use_cache=use_cache)
    points = []
    for value, variant in zip(values, variants):
        result = run_one(benchmark, technique, scale, variant,
                         use_cache=use_cache)
        points.append(SweepPoint(
            value=value, cycles=result.cycles,
            speedup=base.cycles / result.cycles,
            stats={k: result.stats[k] for k in keep_stats}))
    return SweepResult(benchmark, knob, points)
