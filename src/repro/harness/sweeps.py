"""Design-space sweep utilities.

A sweep varies one knob of the machine (a nested ``GPUConfig`` field, the
technique, or the SM count) across a list of values and reports each
variant's speedup over a shared baseline.  Used by the ablation benches and
``examples/design_space.py``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import GPUConfig
from ..core import run_dac
from ..sim import simulate
from ..workloads import get


def override(config: GPUConfig, path: str, value) -> GPUConfig:
    """Return ``config`` with the dotted ``path`` (e.g. ``dac.pwaq_entries``
    or ``l1.size_bytes``) replaced by ``value``."""
    parts = path.split(".")
    if len(parts) == 1:
        return dataclasses.replace(config, **{parts[0]: value})
    if len(parts) == 2:
        group = getattr(config, parts[0])
        return dataclasses.replace(
            config, **{parts[0]: dataclasses.replace(group,
                                                     **{parts[1]: value})})
    raise ValueError(f"path too deep: {path}")


@dataclass
class SweepPoint:
    value: object
    cycles: int
    speedup: float
    stats: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    benchmark: str
    knob: str
    points: list[SweepPoint]

    def table(self) -> str:
        from .report import ascii_table
        rows = [[str(p.value), p.cycles, p.speedup] for p in self.points]
        return ascii_table([self.knob, "cycles", "speedup"], rows,
                           f"sweep of {self.knob} on {self.benchmark}")


def sweep(benchmark: str, knob: str, values, config: GPUConfig,
          technique: str = "dac", scale: str = "paper",
          keep_stats: tuple[str, ...] = ()) -> SweepResult:
    """Run ``benchmark`` once per knob value; speedups are against the
    *baseline technique on the unmodified config*."""
    bench = get(benchmark)
    base = simulate(bench.launch(scale), config)
    points = []
    for value in values:
        variant = override(config, knob, value)
        launch = bench.launch(scale)
        if technique == "dac":
            result = run_dac(launch, variant)
        else:
            result = simulate(launch, variant.with_technique(technique))
        points.append(SweepPoint(
            value=value, cycles=result.cycles,
            speedup=base.cycles / result.cycles,
            stats={k: result.stats[k] for k in keep_stats}))
    return SweepResult(benchmark, knob, points)
