"""Statistics for the perf gate: means, confidence intervals, Welch t-tests.

The perf harness (``harness/bench.py``) used to report a single
best-of-N wall-clock per cell, which makes "speedup vs reference" a
point estimate that whipsaws on a noisy runner.  This module supplies
the machinery to treat every cell as a *sample distribution* instead:

* :func:`summarize` — sample mean, stddev (ddof=1), and a two-sided
  confidence interval from a small Student-t table (no scipy);
* :func:`welch_t_test` — a two-sample Welch t-test (unequal variances,
  Welch–Satterthwaite degrees of freedom) deciding whether two timing
  distributions actually differ;
* :func:`verdict` — maps a t-test on (current, reference) samples to
  ``win`` / ``regression`` / ``inconclusive``, the only vocabulary the
  bench report uses for wall-clock claims;
* the ``BENCH_history.jsonl`` time series: schema-versioned one-line
  records (git SHA, host fingerprint, per-cell verdicts) appended by
  every ``repro perf`` run, plus :func:`history_report` to summarize
  the trajectory.

Wall-clock verdicts are informational — the only hard failure in the
perf gate remains Stats bit-identity against the committed goldens.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
from dataclasses import dataclass

from .report import ascii_table

#: Schema tag stamped on every ``BENCH_history.jsonl`` line.
HISTORY_SCHEMA = "repro-bench-history/1"

# Two-sided critical values of Student's t by degrees of freedom.
# Rows above df=30 thin out; t_critical() interpolates between them
# (linearly in df up to 120, then in 1/df towards the normal limit).
_T_TABLE = {
    0.05: {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
        19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
        25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
        40: 2.021, 60: 2.000, 120: 1.980,
    },
    0.01: {
        1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
        7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 11: 3.106, 12: 3.055,
        13: 3.012, 14: 2.977, 15: 2.947, 16: 2.921, 17: 2.898, 18: 2.878,
        19: 2.861, 20: 2.845, 21: 2.831, 22: 2.819, 23: 2.807, 24: 2.797,
        25: 2.787, 26: 2.779, 27: 2.771, 28: 2.763, 29: 2.756, 30: 2.750,
        40: 2.704, 60: 2.660, 120: 2.617,
    },
}

#: Normal-approximation limit (df -> infinity) per alpha.
_T_LIMIT = {0.05: 1.960, 0.01: 2.576}


def t_critical(df: float, alpha: float = 0.05) -> float:
    """Two-sided critical t value for ``df`` degrees of freedom.

    ``df`` may be fractional (Welch–Satterthwaite produces fractional
    df); values between table rows are linearly interpolated, values
    beyond the last row interpolate in ``1/df`` towards the normal
    limit.  Only the tabulated ``alpha`` levels (0.05, 0.01) are
    supported — anything else raises ``ValueError``.
    """
    table = _T_TABLE.get(alpha)
    if table is None:
        raise ValueError(
            f"alpha={alpha!r} not tabulated; choose from "
            f"{sorted(_T_TABLE)}")
    if df <= 0 or math.isnan(df):
        raise ValueError(f"degrees of freedom must be positive, got {df!r}")
    df = max(df, 1.0)
    rows = sorted(table)
    last = rows[-1]
    if df >= last:
        # Interpolate in 1/df between the last tabulated row and the
        # normal limit so t_critical is continuous and monotonic.
        limit = _T_LIMIT[alpha]
        return limit + (table[last] - limit) * (last / df)
    lo = max(r for r in rows if r <= df)
    hi = min(r for r in rows if r >= df)
    if lo == hi:
        return table[lo]
    frac = (df - lo) / (hi - lo)
    return table[lo] + frac * (table[hi] - table[lo])


@dataclass(frozen=True)
class Summary:
    """Sample statistics for one cell's wall-clock repetitions.

    ``stddev`` / ``sem`` / the CI bounds are ``None`` when fewer than
    two samples exist — a single rep has no dispersion estimate, and
    pretending otherwise is exactly the bug this module replaces.
    """

    n: int
    mean: float
    minimum: float
    maximum: float
    stddev: float | None
    sem: float | None
    ci_low: float | None
    ci_high: float | None
    confidence: float = 0.95

    @property
    def ci_halfwidth(self) -> float | None:
        if self.ci_low is None or self.ci_high is None:
            return None
        return (self.ci_high - self.ci_low) / 2.0

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
            "sem": self.sem,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "confidence": self.confidence,
        }


def mean(samples) -> float:
    samples = list(samples)
    return sum(samples) / len(samples)


def sample_variance(samples) -> float | None:
    """Unbiased (ddof=1) sample variance; ``None`` for fewer than 2."""
    samples = list(samples)
    if len(samples) < 2:
        return None
    m = mean(samples)
    return sum((x - m) ** 2 for x in samples) / (len(samples) - 1)


def summarize(samples, alpha: float = 0.05) -> Summary:
    """Mean, stddev, and a two-sided ``1 - alpha`` CI for ``samples``."""
    samples = [float(s) for s in samples]
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    n = len(samples)
    m = mean(samples)
    var = sample_variance(samples)
    if var is None:
        return Summary(n=n, mean=m, minimum=min(samples),
                       maximum=max(samples), stddev=None, sem=None,
                       ci_low=None, ci_high=None, confidence=1.0 - alpha)
    sd = math.sqrt(var)
    sem = sd / math.sqrt(n)
    half = t_critical(n - 1, alpha) * sem
    return Summary(n=n, mean=m, minimum=min(samples), maximum=max(samples),
                   stddev=sd, sem=sem, ci_low=m - half, ci_high=m + half,
                   confidence=1.0 - alpha)


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample Welch t-test.

    ``t`` / ``df`` / ``critical`` are ``None`` when the test is not
    computable (too few reps, or zero variance on both sides) — in
    that case ``detail`` says why and ``significant`` reflects the
    only defensible call (zero-variance distinct means: significant;
    everything else: not).
    """

    significant: bool
    detail: str
    t: float | None = None
    df: float | None = None
    critical: float | None = None
    alpha: float = 0.05
    mean_a: float | None = None
    mean_b: float | None = None

    def as_dict(self) -> dict:
        return {
            "significant": self.significant,
            "detail": self.detail,
            "t": self.t,
            "df": self.df,
            "critical": self.critical,
            "alpha": self.alpha,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
        }


def welch_t_test(samples_a, samples_b, alpha: float = 0.05) -> TTestResult:
    """Two-sample Welch t-test: do the two means differ at ``alpha``?

    Welch's variant does not assume equal variances — the right choice
    for wall-clock on shared runners, where the reference and current
    core were almost certainly timed under different noise regimes.
    """
    a = [float(x) for x in samples_a]
    b = [float(x) for x in samples_b]
    if not a or not b:
        return TTestResult(significant=False, alpha=alpha,
                           detail="empty sample set; test not computable")
    ma, mb = mean(a), mean(b)
    if len(a) < 2 or len(b) < 2:
        return TTestResult(
            significant=False, alpha=alpha, mean_a=ma, mean_b=mb,
            detail=f"need >=2 reps per side (got {len(a)} vs {len(b)}); "
                   "test not computable")
    va = sample_variance(a)
    vb = sample_variance(b)
    assert va is not None and vb is not None
    se2 = va / len(a) + vb / len(b)
    if se2 == 0.0:
        # Both sides are exactly constant.  Distinct constants differ
        # trivially; identical constants trivially do not.
        if ma == mb:
            return TTestResult(
                significant=False, alpha=alpha, mean_a=ma, mean_b=mb,
                detail="zero variance on both sides, identical means")
        return TTestResult(
            significant=True, alpha=alpha, mean_a=ma, mean_b=mb,
            detail="zero variance on both sides, distinct means")
    t = (ma - mb) / math.sqrt(se2)
    # Welch–Satterthwaite degrees of freedom.  A zero-variance side
    # contributes nothing to the denominator; guard the (impossible
    # here, se2 > 0) fully-degenerate case anyway.
    denom = 0.0
    if va > 0.0:
        denom += (va / len(a)) ** 2 / (len(a) - 1)
    if vb > 0.0:
        denom += (vb / len(b)) ** 2 / (len(b) - 1)
    df = (se2 ** 2) / denom if denom > 0.0 else float(len(a) + len(b) - 2)
    crit = t_critical(df, alpha)
    return TTestResult(significant=abs(t) > crit, t=t, df=df, critical=crit,
                       alpha=alpha, mean_a=ma, mean_b=mb,
                       detail=f"|t|={abs(t):.3f} vs t_crit({df:.1f})="
                              f"{crit:.3f} at alpha={alpha}")


#: The only vocabulary the bench report uses for wall-clock claims.
VERDICTS = ("win", "regression", "inconclusive")


def verdict(samples, ref_samples, alpha: float = 0.05
            ) -> tuple[str, TTestResult]:
    """Classify current-vs-reference wall-clock samples.

    Lower is better (these are seconds): a statistically significant
    drop in mean is a ``win``, a significant rise is a ``regression``,
    anything else — including every not-computable case — is
    ``inconclusive``.
    """
    test = welch_t_test(samples, ref_samples, alpha=alpha)
    if not test.significant or test.mean_a is None or test.mean_b is None:
        return "inconclusive", test
    if test.mean_a < test.mean_b:
        return "win", test
    return "regression", test


# --------------------------------------------------------------------------
# BENCH_history.jsonl: the append-only perf time series.

def git_fingerprint(root: str) -> dict:
    """Current commit SHA and dirtiness, or Nones outside a checkout."""
    def _git(*argv):
        try:
            proc = subprocess.run(
                ("git", *argv), cwd=root, capture_output=True,
                text=True, timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout.strip() if proc.returncode == 0 else None

    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain") if sha else None
    return {"sha": sha, "dirty": bool(status) if status is not None else None}


def host_fingerprint() -> dict:
    """Enough host identity to explain wall-clock shifts in the series."""
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def history_entry(payload: dict, root: str, bench_file: str | None = None,
                  now: float | None = None) -> dict:
    """One schema-versioned ``BENCH_history.jsonl`` line for a perf run.

    Compact by design — per-cell mean/n/verdict, not the full sample
    arrays (those live in the ``BENCH_<n>.json`` the run also writes).
    """
    now = time.time() if now is None else now
    cells = {}
    tally = dict.fromkeys(VERDICTS, 0)
    tally["no-reference"] = 0
    for name, cell in payload.get("cells", {}).items():
        v = cell.get("verdict")
        tally[v if v in tally else "no-reference"] += 1
        cells[name] = {
            "mean_wall_seconds": cell.get("wall_seconds"),
            "reps": cell.get("reps"),
            "speedup_vs_reference": cell.get("speedup_vs_reference"),
            "verdict": v,
            "stats_identical": cell.get("stats_identical"),
        }
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": now,
        "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "git": git_fingerprint(root),
        "host": host_fingerprint(),
        "quick": payload.get("quick"),
        "reps": payload.get("reps"),
        "bench_file": bench_file,
        "ok": payload.get("ok"),
        "geomean_speedup_vs_reference":
            payload.get("geomean_speedup_vs_reference"),
        "verdicts": tally,
        "cells": cells,
    }


def append_history(path: str, entry: dict) -> None:
    """Append one JSON line; the file is an append-only time series."""
    with open(path, "a") as handle:
        json.dump(entry, handle, sort_keys=True)
        handle.write("\n")


def load_history(path: str) -> list[dict]:
    """Parse the series, skipping blank/corrupt lines (an interrupted CI
    writer must not brick every later ``--history`` report)."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def history_report(entries: list[dict]) -> str:
    """Human-readable trajectory summary of the history series."""
    if not entries:
        return ("no perf history yet: BENCH_history.jsonl is empty or "
                "missing (every `repro perf` run appends one line)")
    # Backfilled entries land at the end of the file with older
    # timestamps; the trajectory is chronological, not file order.
    entries = sorted(entries, key=lambda e: e.get("utc") or "")
    rows = []
    for entry in entries:
        sha = (entry.get("git") or {}).get("sha") or "-"
        dirty = (entry.get("git") or {}).get("dirty")
        tally = entry.get("verdicts") or {}
        geomean = entry.get("geomean_speedup_vs_reference")
        rows.append([
            entry.get("utc") or "-",
            (sha[:9] + ("+" if dirty else "")) if sha != "-" else "-",
            "quick" if entry.get("quick") else "full",
            entry.get("reps") or "-",
            f"{geomean:.2f}x" if geomean is not None else "-",
            "/".join(str(tally.get(k, 0))
                     for k in ("win", "regression", "inconclusive")),
            "ok" if entry.get("ok") else "STATS MISMATCH",
        ])
    table = ascii_table(
        ["when (UTC)", "commit", "matrix", "reps", "geomean",
         "win/reg/inc", "stats"],
        rows, f"perf trajectory ({len(entries)} runs)")
    lines = [table]
    geomeans = [e.get("geomean_speedup_vs_reference") for e in entries]
    geomeans = [g for g in geomeans if g is not None]
    if len(geomeans) >= 2:
        lines.append(f"\ngeomean speedup trajectory: first "
                     f"{geomeans[0]:.2f}x -> latest {geomeans[-1]:.2f}x "
                     f"over {len(geomeans)} measured runs")
    regressions = sum(
        (e.get("verdicts") or {}).get("regression", 0) for e in entries)
    if regressions:
        lines.append(f"{regressions} cell-level regression verdict(s) "
                     "recorded across the series")
    return "\n".join(lines)
