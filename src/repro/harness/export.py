"""Export figure data as CSV or JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json


def _rows(data: dict) -> tuple[list[str], list[list]]:
    """Normalize figure-driver output ({bench: value} or {bench: {k: v}})
    into a header + rows."""
    if not data:
        return ["benchmark"], []
    first = next(iter(data.values()))
    if isinstance(first, dict):
        # Union of keys across all rows in first-seen order: taking only
        # the first row's keys silently drops columns that appear later
        # (e.g. technique-specific counters).
        columns = []
        for values in data.values():
            for key in values:
                if key not in columns:
                    columns.append(key)
        header = ["benchmark"] + columns
        rows = [[bench] + [values.get(c, "") for c in columns]
                for bench, values in data.items()]
    else:
        header = ["benchmark", "value"]
        rows = [[bench, value] for bench, value in data.items()]
    return header, rows


def to_csv(data: dict, path: str | None = None) -> str:
    """Render figure data as CSV; optionally also write it to ``path``."""
    header, rows = _rows(data)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    text = buffer.getvalue()
    if path:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def to_json(data: dict, path: str | None = None) -> str:
    """Render figure data as JSON; optionally also write it to ``path``."""
    text = json.dumps(data, indent=2, sort_keys=True, default=float)
    if path:
        with open(path, "w") as handle:
            handle.write(text)
    return text
