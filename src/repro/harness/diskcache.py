"""Persistent, content-addressed store of simulation results.

Every figure in the paper's evaluation is a view over the same
(benchmark × technique) grid, so simulation results are worth keeping
across processes, not just within one (the Accel-Sim workflow: simulate
once, re-plot forever).  An entry is keyed by a content hash of everything
that determines the outcome of a deterministic run:

* the kernel program text (``launch.kernel.source()``),
* the launch geometry and inputs (grid/block dims, parameters, shared
  memory size, and the initial device-memory image),
* the full :class:`~repro.config.GPUConfig`,
* the technique, and
* the repro package version (bumped whenever the timing model changes
  behaviour, which invalidates every prior entry).

Entries are zlib-compressed pickles written atomically (temp file +
``os.replace``), so concurrent writers — e.g. the parallel executor's
workers — can never leave a torn entry behind; a corrupt or unreadable
entry reads as a miss and is removed.

A JSON serialization of :class:`RunResult` is also provided for
interchange with external tooling; it drops non-JSON-able ``extra``
entries (notably the decoupled ``program``) but round-trips the numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import zlib
from pathlib import Path

import numpy as np

from .. import __version__
from ..config import GPUConfig
from ..sim.gpu import RunResult
from ..sim.launch import KernelLaunch
from ..stats import Stats

#: Bump to invalidate every existing cache entry without a version change.
CACHE_SCHEMA = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-dac``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-dac"


def cache_key(launch: KernelLaunch, technique: str,
              config: GPUConfig) -> str:
    """Content hash identifying one deterministic simulation run."""
    h = hashlib.sha256()
    h.update(f"repro/{__version__}/schema{CACHE_SCHEMA}".encode())
    h.update(f"\x00{technique}\x00".encode())
    h.update(launch.kernel.source().encode())
    h.update(repr((launch.grid_dim, launch.block_dim,
                   sorted(launch.params.items()),
                   launch.shared_words)).encode())
    h.update(np.ascontiguousarray(launch.memory.words).tobytes())
    h.update(json.dumps(dataclasses.asdict(config),
                        sort_keys=True).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# JSON serialization of RunResult (pickle needs no help).

def result_to_json_dict(result: RunResult) -> dict:
    """JSON-able form of a :class:`RunResult`.  ``extra`` values that do
    not serialize (e.g. the decoupled program object) are dropped; numpy
    arrays are tagged so :func:`result_from_json_dict` can rebuild them."""
    extra = {}
    for key, value in result.extra.items():
        if isinstance(value, np.ndarray):
            extra[key] = {"__ndarray__": value.tolist()}
            continue
        try:
            json.dumps(value)
        except TypeError:
            continue
        extra[key] = value
    return {
        "cycles": result.cycles,
        "kernel_name": result.kernel_name,
        "stats": result.stats.as_dict(),
        "config": dataclasses.asdict(result.config),
        "extra": extra,
    }


def result_from_json_dict(data: dict) -> RunResult:
    extra = {}
    for key, value in data.get("extra", {}).items():
        if isinstance(value, dict) and "__ndarray__" in value:
            value = np.asarray(value["__ndarray__"], dtype=np.float64)
        extra[key] = value
    return RunResult(
        cycles=data["cycles"],
        stats=Stats.from_dict(data["stats"]),
        config=GPUConfig.from_dict(data["config"]),
        kernel_name=data["kernel_name"],
        extra=extra,
    )


def result_to_json(result: RunResult) -> str:
    return json.dumps(result_to_json_dict(result), sort_keys=True)


def result_from_json(text: str) -> RunResult:
    return result_from_json_dict(json.loads(text))


# ---------------------------------------------------------------------------
# The on-disk store.

class DiskCache:
    """Directory of ``<key>.pkl.z`` entries with atomic writes.

    Device-memory images are mostly zeros, so entries are stored as
    zlib-compressed pickles (level 1: ~100x smaller for typical runs at
    negligible CPU cost).
    """

    SUFFIX = ".pkl.z"
    CORRUPT_SUFFIX = ".pkl.z.corrupt"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{self.SUFFIX}"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside as ``<key>.pkl.z.corrupt``: it stops
        being re-parsed on every run (the ``.corrupt`` suffix never matches
        a lookup), yet the bytes survive for forensics."""
        self.corrupt += 1
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def load(self, key: str) -> RunResult | None:
        """The stored result, or ``None`` on a miss.  A corrupt entry
        (torn by a crash predating atomic writes, or truncated disk) is
        quarantined with a ``.corrupt`` suffix and reads as a miss."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(zlib.decompress(blob))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            self._quarantine(path)
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: RunResult) -> None:
        """Atomically persist ``result`` under ``key`` (write to a temp
        file in the same directory, then ``os.replace``)."""
        blob = zlib.compress(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), 1)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, self._path(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Drop every entry (including quarantined ones); returns the
        number of live entries removed."""
        removed = 0
        for path in self.root.glob(f"*{self.SUFFIX}"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob(f"*{self.CORRUPT_SUFFIX}"):
            path.unlink(missing_ok=True)
        return removed

    def keys(self) -> list[str]:
        return sorted(p.name[:-len(self.SUFFIX)]
                      for p in self.root.glob(f"*{self.SUFFIX}"))

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()
