"""Per-figure experiment drivers: one function per table/figure of the
paper's evaluation (see the experiment index in DESIGN.md)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.affine_analysis import AffineAnalysis
from ..config import GPUConfig
from ..energy import energy_of
from ..sim.gpu import simulate
from ..workloads import COMPUTE_ORDER, MEMORY_ORDER, get
from .report import ascii_table, bar
from .runner import Geomean, experiment_config, run_one, run_suite

ALL_ORDER = COMPUTE_ORDER + MEMORY_ORDER


# ---------------------------------------------------------------------------
# Figure 6: percentage of potentially affine static instructions.

def fig6_affine_potential() -> dict[str, dict[str, float]]:
    out = {}
    for abbr in ALL_ORDER:
        kernel = get(abbr).launch("tiny").kernel
        out[abbr] = AffineAnalysis(kernel).potential_affine_fractions()
    means = {cat: sum(v[cat] for v in out.values()) / len(out)
             for cat in ("arithmetic", "memory", "branch")}
    out["MEAN"] = means
    return out


def fig6_report() -> str:
    data = fig6_affine_potential()
    rows = [[abbr, v["arithmetic"], v["memory"], v["branch"],
             v["arithmetic"] + v["memory"] + v["branch"]]
            for abbr, v in data.items()]
    return ascii_table(
        ["bench", "arith", "memory", "branch", "total"], rows,
        "Figure 6: fraction of static instructions that are potentially "
        "affine")


# ---------------------------------------------------------------------------
# Table 2 classification: memory-intensive = >= 1.5x speedup with perfect
# memory (paper §5.1.2).

def table2_classification(scale: str = "paper",
                          config: GPUConfig | None = None) \
        -> dict[str, dict]:
    config = config or experiment_config()
    out = {}
    for abbr in ALL_ORDER:
        base = run_one(abbr, "baseline", scale, config)
        launch = get(abbr).launch(scale)
        perfect = simulate(launch, config.with_perfect_memory())
        speedup = base.cycles / max(1, perfect.cycles)
        out[abbr] = {
            "perfect_speedup": speedup,
            "measured": "memory" if speedup >= 1.5 else "compute",
            "paper": get(abbr).category,
        }
    return out


# ---------------------------------------------------------------------------
# Figure 16: speedups of CAE, MTA, DAC over the baseline.

@dataclass
class SpeedupData:
    per_bench: dict[str, dict[str, float]] = field(default_factory=dict)
    means: dict[str, dict[str, float]] = field(default_factory=dict)


def fig16_speedup(scale: str = "paper",
                  config: GPUConfig | None = None) -> SpeedupData:
    config = config or experiment_config()
    data = SpeedupData()
    geo = {cat: {t: Geomean() for t in ("cae", "mta", "dac")}
           for cat in ("compute", "memory", "all")}
    for abbr in ALL_ORDER:
        runs = run_suite([abbr], scale, config)[abbr]
        base = runs["baseline"].cycles
        cat = get(abbr).category
        entry = {}
        for tech in ("cae", "mta", "dac"):
            speedup = base / max(1, runs[tech].cycles)
            entry[tech] = speedup
            geo[cat][tech].add(speedup)
            geo["all"][tech].add(speedup)
        data.per_bench[abbr] = entry
    data.means = {cat: {t: g.mean for t, g in techs.items()}
                  for cat, techs in geo.items()}
    return data


def fig16_report(data: SpeedupData) -> str:
    sections = []
    for cat, order in (("memory", MEMORY_ORDER), ("compute", COMPUTE_ORDER)):
        rows = []
        for abbr in order:
            e = data.per_bench[abbr]
            rows.append([abbr, e["cae"], e["mta"], e["dac"],
                         bar(e["dac"])])
        m = data.means[cat]
        rows.append(["MEAN", m["cae"], m["mta"], m["dac"], bar(m["dac"])])
        sections.append(ascii_table(
            ["bench", "CAE", "MTA", "DAC", "DAC bar"], rows,
            f"Figure 16{'a' if cat == 'memory' else 'b'}: speedup over "
            f"baseline ({cat}-intensive)"))
    g = data.means["all"]
    sections.append(f"Global geomean: CAE {g['cae']:.3f}  MTA {g['mta']:.3f}"
                    f"  DAC {g['dac']:.3f}")
    return "\n\n".join(sections)


# ---------------------------------------------------------------------------
# Figure 17: warp instructions executed by DAC, normalized to baseline.

def fig17_instruction_counts(scale: str = "paper",
                             config: GPUConfig | None = None) \
        -> dict[str, dict[str, float]]:
    config = config or experiment_config()
    out = {}
    na_geo, total_geo, ratio = Geomean(), Geomean(), Geomean()
    affine_shares = []
    for abbr in ALL_ORDER:
        base = run_one(abbr, "baseline", scale, config)
        dac = run_one(abbr, "dac", scale, config)
        base_insts = base.stats["warp_instructions"]
        nonaffine = dac.stats["warp_instructions"] / base_insts
        affine = dac.stats["affine_warp_instructions"] / base_insts
        replaced = base_insts - dac.stats["warp_instructions"]
        per_affine = (replaced / dac.stats["affine_warp_instructions"]
                      if dac.stats["affine_warp_instructions"] else 0.0)
        out[abbr] = {"nonaffine": nonaffine, "affine": affine,
                     "total": nonaffine + affine,
                     "replaced_per_affine": per_affine}
        na_geo.add(nonaffine)
        total_geo.add(nonaffine + affine)
        affine_shares.append(affine)
        if per_affine > 0:
            ratio.add(per_affine)
    out["MEAN"] = {"nonaffine": na_geo.mean,
                   "affine": sum(affine_shares) / len(affine_shares),
                   "total": total_geo.mean,
                   "replaced_per_affine": ratio.mean}
    return out


# ---------------------------------------------------------------------------
# Figure 18: affine instruction coverage, DAC vs CAE (compute benchmarks).

def fig18_coverage(scale: str = "paper",
                   config: GPUConfig | None = None) \
        -> dict[str, dict[str, float]]:
    config = config or experiment_config()
    out = {}
    dac_geo, cae_geo = Geomean(), Geomean()
    for abbr in COMPUTE_ORDER:
        base = run_one(abbr, "baseline", scale, config)
        cae = run_one(abbr, "cae", scale, config)
        dac = run_one(abbr, "dac", scale, config)
        base_insts = base.stats["warp_instructions"]
        dac_cov = max(0.0, 1.0 - dac.stats["warp_instructions"] / base_insts)
        cae_cov = cae.stats["cae.affine_instructions"] / base_insts
        out[abbr] = {"dac": dac_cov, "cae": cae_cov}
        dac_geo.add(max(dac_cov, 1e-3))
        cae_geo.add(max(cae_cov, 1e-3))
    out["MEAN"] = {"dac": dac_geo.mean, "cae": cae_geo.mean}
    return out


# ---------------------------------------------------------------------------
# Figure 19: % of global/local load requests issued by the affine warp.

def fig19_affine_loads(scale: str = "paper",
                       config: GPUConfig | None = None) \
        -> dict[str, float]:
    config = config or experiment_config()
    out = {}
    total_affine = total_all = 0.0
    for abbr in MEMORY_ORDER:
        dac = run_one(abbr, "dac", scale, config)
        affine = dac.stats["dac.affine_load_lines"]
        demand = dac.stats["gmem_load_lines"]
        frac = affine / max(1.0, affine + demand)
        out[abbr] = frac
        total_affine += affine
        total_all += affine + demand
    out["MEAN"] = sum(v for k, v in out.items() if k != "MEAN") \
        / len(MEMORY_ORDER)
    return out


# ---------------------------------------------------------------------------
# Figure 20: MTA prefetcher coverage.

def fig20_mta_coverage(scale: str = "paper",
                       config: GPUConfig | None = None) -> dict[str, float]:
    config = config or experiment_config()
    out = {}
    for abbr in MEMORY_ORDER:
        mta = run_one(abbr, "mta", scale, config)
        hits = mta.stats["mta.buffer_hits"]
        misses = mta.stats["mta.uncovered_misses"]
        out[abbr] = hits / max(1.0, hits + misses)
    out["MEAN"] = sum(v for k, v in out.items() if k != "MEAN") \
        / len(MEMORY_ORDER)
    return out


# ---------------------------------------------------------------------------
# Figure 21: DAC energy normalized to the baseline.

def fig21_energy(scale: str = "paper",
                 config: GPUConfig | None = None) \
        -> dict[str, dict[str, float]]:
    config = config or experiment_config()
    out = {}
    total_geo, dynamic_geo = Geomean(), Geomean()
    for abbr in ALL_ORDER:
        base_e = energy_of(run_one(abbr, "baseline", scale, config))
        dac_e = energy_of(run_one(abbr, "dac", scale, config))
        norm = dac_e.normalized_to(base_e)
        out[abbr] = norm
        total_geo.add(norm["total"])
        dynamic_geo.add(dac_e.dynamic / max(base_e.dynamic, 1e-12))
    out["MEAN"] = {"total": total_geo.mean, "dynamic": dynamic_geo.mean}
    return out


def fig21_report(data: dict[str, dict[str, float]]) -> str:
    rows = []
    for abbr, v in data.items():
        if abbr == "MEAN":
            continue
        rows.append([abbr, v["dac_overhead"], v["alu"], v["register"],
                     v["other_dynamic"], v["static"], v["total"]])
    rows.append(["MEAN", "", "", "", "", "", data["MEAN"]["total"]])
    return ascii_table(
        ["bench", "DAC ovh", "ALU", "RF", "other dyn", "static", "total"],
        rows, "Figure 21: DAC energy normalized to baseline")
