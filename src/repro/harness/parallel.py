"""Multiprocess fan-out of the (benchmark × technique) simulation grid.

Runs are independent, deterministic, and CPU-bound, so they parallelize
trivially over a :class:`~concurrent.futures.ProcessPoolExecutor`: a
worker re-runs the ordinary serial pipeline for its (benchmark, technique,
config) cell and ships the finished :class:`RunResult` back.  Workers
consult and feed the same on-disk cache as the parent (entries are written
atomically, so concurrent writers are safe), and the parent installs every
returned result into its in-process memo cache — after a parallel prewarm,
the serial figure drivers run entirely on cache hits.

Failure handling distinguishes three classes:

* **Deterministic in-task exceptions** (the simulation itself raised) are
  re-raised in the parent immediately — retrying a deterministic failure
  serially can only reproduce it more slowly.
* **Transient worker/pool failures** (a crashed worker, an unpicklable
  result, a pool that would not start) are retried up to ``retries`` times
  with exponential backoff, then run serially in the parent, so ``--jobs
  N`` can never produce less than the serial path would.
* **Hangs**: with a per-cell wall-clock ``timeout``, a cell that exceeds
  it is abandoned (the pool is torn down without waiting for the hung
  worker), retried, and finally **quarantined** — the rest of the grid
  still completes, and the quarantine list is reported instead of the
  whole sweep dying.

A :class:`GridCheckpoint` directory makes long sweeps resumable: every
finished cell is persisted as it lands, so a re-run with the same
checkpoint skips straight past completed (and quarantined) cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import sys
import tempfile
import time
import warnings
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from ..config import GPUConfig
from ..sim.gpu import RunResult
from .backoff import backoff_delay

#: Task: (benchmark abbr, technique, GPUConfig).
Task = tuple

#: Exceptions that indicate worker/pool infrastructure trouble rather than
#: a deterministic failure of the task itself.
_TRANSIENT = (BrokenProcessPool, pickle.PicklingError)


def default_jobs() -> int:
    """A sensible worker count: ``$REPRO_JOBS`` if set, else CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_JOBS={env!r} (expected a positive "
                f"integer); using cpu_count", RuntimeWarning, stacklevel=2)
    return os.cpu_count() or 1


@dataclass
class GridReport:
    """What :func:`run_grid` did beyond the happy path."""

    total: int = 0
    completed: int = 0                         # fresh results this call
    resumed: int = 0                           # restored from checkpoint
    retries: int = 0                           # task re-submissions
    timeouts: int = 0                          # wall-clock expirations
    quarantined: list = field(default_factory=list)      # abandoned tasks
    failures: dict = field(default_factory=dict)         # task -> reason

    def summary(self) -> str:
        parts = [f"{self.completed}/{self.total} run"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        return ", ".join(parts)

    @staticmethod
    def _task_to_wire(task) -> dict:
        abbr, technique, config = task
        return {"abbr": abbr, "technique": technique,
                "config": dataclasses.asdict(config)}

    @staticmethod
    def _task_from_wire(data: dict) -> Task:
        return (data["abbr"], data["technique"],
                GPUConfig.from_dict(data["config"]))

    def to_dict(self) -> dict:
        """Lossless JSON-able form: tasks (tuples holding a
        :class:`GPUConfig`) are flattened so the report can cross the
        service wire and round-trip through :meth:`from_dict`."""
        return {
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": [self._task_to_wire(t)
                            for t in self.quarantined],
            "failures": [{"task": self._task_to_wire(task),
                          "reason": reason}
                         for task, reason in self.failures.items()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GridReport":
        report = cls(total=data["total"], completed=data["completed"],
                     resumed=data["resumed"], retries=data["retries"],
                     timeouts=data["timeouts"])
        report.quarantined = [cls._task_from_wire(t)
                              for t in data["quarantined"]]
        report.failures = {cls._task_from_wire(f["task"]): f["reason"]
                           for f in data["failures"]}
        return report


class GridCheckpoint:
    """Resumable sweep state: a directory holding one ``state.json`` plus a
    compressed pickle per finished cell, all written atomically.

    Cells are keyed by a digest of (abbr, technique, scale, config) — the
    same identity :func:`run_grid` partitions work by — so a re-run with
    the same task list resumes exactly where the previous run stopped,
    including remembering which cells were quarantined.
    """

    STATE = "state.json"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self._state: dict[str, dict] = {}
        path = self.root / self.STATE
        try:
            self._state = json.loads(path.read_text())
        except FileNotFoundError:
            pass
        except Exception:
            # A torn state file loses resume info, never correctness.
            self._state = {}

    @staticmethod
    def digest(task: Task, scale: str) -> str:
        abbr, technique, config = task
        payload = json.dumps(
            [abbr, technique, scale, dataclasses.asdict(config)],
            sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def status(self, digest: str) -> str | None:
        entry = self._state.get(digest)
        return entry["status"] if entry else None

    def save_result(self, digest: str, result: RunResult) -> None:
        """Atomically persist just the result blob (no state change) —
        the service journal uses this as its commit record: a loadable
        blob *is* the proof a cell finished."""
        blob = zlib.compress(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), 1)
        self._write_atomic(self.root / f"{digest}.pkl.z", blob)

    def result_path(self, digest: str) -> Path:
        return self.root / f"{digest}.pkl.z"

    def record_done(self, digest: str, task: Task, result: RunResult) -> None:
        self.save_result(digest, result)
        self._state[digest] = {"task": [task[0], task[1]], "status": "done"}
        self._save_state()

    def record_quarantined(self, digest: str, task: Task,
                           error: str) -> None:
        self._state[digest] = {"task": [task[0], task[1]],
                               "status": "quarantined", "error": error}
        self._save_state()

    def clear_quarantined(self, digest: str) -> bool:
        """Forget a quarantine verdict so the cell runs again on the next
        sweep (``--retry-quarantined``); returns whether one was cleared."""
        entry = self._state.get(digest)
        if entry is None or entry.get("status") != "quarantined":
            return False
        del self._state[digest]
        self._save_state()
        return True

    def load_result(self, digest: str) -> RunResult | None:
        try:
            blob = (self.root / f"{digest}.pkl.z").read_bytes()
            result = pickle.loads(zlib.decompress(blob))
        except Exception:
            return None
        return result if isinstance(result, RunResult) else None

    def _save_state(self) -> None:
        self._write_atomic(self.root / self.STATE,
                           json.dumps(self._state, sort_keys=True,
                                      indent=1).encode())

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def _worker(abbr: str, technique: str, scale: str, config: GPUConfig,
            cache_dir) -> bytes:
    """Top-level (hence picklable) worker body: one grid cell, run through
    the ordinary serial pipeline inside the worker process.

    The result ships back as a zlib-compressed pickle: the dominant
    payload is the final device-memory image (mostly zeros, tens of MB
    raw, ~100 KB compressed), and compressing beats pushing it through
    the result pipe raw by an order of magnitude."""
    from ..faults import chaos
    from . import runner
    chaos.install_from_env()
    use_cache = cache_dir is not None
    if use_cache:
        runner.configure_cache(cache_dir)
    else:
        runner.configure_cache(enabled=False)
    result = runner.run_one(abbr, technique, scale, config,
                            use_cache=use_cache)
    return zlib.compress(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), 1)


def _run_serial(tasks, scale: str, use_cache: bool, results: dict,
                progress, total: int, checkpoint=None, report=None) -> None:
    from . import runner
    for abbr, technique, config in tasks:
        result = runner.run_one(abbr, technique, scale, config,
                                use_cache=use_cache)
        task = (abbr, technique, config)
        results[task] = result
        if report is not None:
            report.completed += 1
        if checkpoint is not None:
            checkpoint.record_done(GridCheckpoint.digest(task, scale),
                                   task, result)
        if progress is not None:
            progress(len(results), total, abbr, technique, result)


def run_grid(tasks, scale: str = "paper", jobs: int | None = None,
             use_cache: bool = True, progress=None,
             timeout: float | None = None, retries: int = 1,
             backoff: float = 0.5, checkpoint=None,
             report: GridReport | None = None,
             retry_quarantined: bool = False,
             service: str | os.PathLike | bool | None = None) -> dict:
    """Fan ``tasks`` — (abbr, technique) pairs or (abbr, technique,
    config) triples — out over ``jobs`` worker processes.

    Returns ``{(abbr, technique, config): RunResult}``.  Results are also
    installed into the in-process memo cache (and, when enabled, written
    to the disk cache by the workers), so subsequent serial calls hit.
    ``progress(done, total, abbr, technique, result)`` fires per finished
    run.

    ``timeout`` bounds each cell's wall-clock seconds (parallel path
    only); an expired cell is retried up to ``retries`` times with
    ``backoff``-seconds exponential backoff, then quarantined — the rest
    of the grid still completes, minus the quarantined cells.  Transient
    worker/pool failures retry the same way, then fall back to serial.
    Deterministic in-task exceptions are re-raised immediately.

    ``checkpoint`` (a directory path or :class:`GridCheckpoint`) makes the
    sweep resumable: finished cells are persisted as they land and skipped
    on the next call.  Pass a :class:`GridReport` as ``report`` to receive
    retry/timeout/quarantine accounting.  ``retry_quarantined=True``
    forgets earlier quarantine verdicts and gives those cells another
    chance.

    ``service`` routes the grid through a running experiment daemon
    (``python -m repro serve``): a socket path uses that daemon, ``None``
    auto-detects one at :func:`repro.harness.client.default_socket_path`,
    and ``False`` forces the local pool.  When no daemon answers, the
    local path below runs unchanged — the daemon is an accelerator, never
    a dependency.
    """
    from . import runner

    norm: list[Task] = []
    for task in tasks:
        if len(task) == 2:
            abbr, technique = task
            config = runner.experiment_config()
        else:
            abbr, technique, config = task
        norm.append((abbr, technique, config))

    if report is None:
        report = GridReport()
    report.total = len(norm)
    if checkpoint is not None and not isinstance(checkpoint,
                                                 GridCheckpoint):
        checkpoint = GridCheckpoint(checkpoint)

    results: dict = {}
    pending: list[Task] = []
    for task in norm:
        abbr, technique, config = task
        if checkpoint is not None:
            digest = GridCheckpoint.digest(task, scale)
            status = checkpoint.status(digest)
            if status == "quarantined" and retry_quarantined:
                checkpoint.clear_quarantined(digest)
                status = None
            if status == "done":
                result = checkpoint.load_result(digest)
                if result is not None:
                    runner._remember(abbr, technique, scale, config, result)
                    results[task] = result
                    report.resumed += 1
                    if progress is not None:
                        progress(len(results), len(norm), abbr, technique,
                                 result)
                    continue
            elif status == "quarantined":
                report.quarantined.append(task)
                report.failures[task] = "quarantined in a previous run"
                continue
        if use_cache and runner.is_cached(abbr, technique, scale, config):
            results[task] = runner.run_one(abbr, technique, scale, config)
        else:
            pending.append(task)
    total = len(norm)

    if pending and service is not False:
        from .client import run_tasks_via_service
        pending = run_tasks_via_service(
            pending, scale, service, results=results, report=report,
            checkpoint=checkpoint, progress=progress, total=total,
            use_cache=use_cache)

    jobs = jobs if jobs is not None else default_jobs()
    if jobs <= 1 or len(pending) <= 1:
        _run_serial(pending, scale, use_cache, results, progress, total,
                    checkpoint=checkpoint, report=report)
        return results

    disk = runner.disk_cache() if use_cache else None
    cache_dir = disk.root if disk is not None else None

    def finish(task: Task, result: RunResult) -> None:
        abbr, technique, config = task
        if use_cache:
            runner._remember(abbr, technique, scale, config, result)
        results[task] = result
        report.completed += 1
        if checkpoint is not None:
            checkpoint.record_done(GridCheckpoint.digest(task, scale),
                                   task, result)
        if progress is not None:
            progress(len(results), total, abbr, technique, result)

    attempts: dict[Task, int] = {}
    queue = list(pending)
    serial_fallback: list[Task] = []
    wave = 0
    while queue:
        if wave > 0:
            time.sleep(backoff_delay(wave - 1, base=backoff,
                                     seed="run_grid"))
        transient: list[Task] = []
        timed_out: list[Task] = []
        carryover: list[Task] = []
        hung = False
        fatal = None
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(queue)))
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            print(f"repro: parallel execution failed ({exc!r}); "
                  f"falling back to serial", file=sys.stderr)
            serial_fallback.extend(queue)
            break
        feed = iter(queue)
        futures: dict = {}
        deadlines: dict = {}

        def submit_next() -> bool:
            task = next(feed, None)
            if task is None:
                return False
            future = pool.submit(_worker, task[0], task[1], scale,
                                 task[2], cache_dir)
            futures[future] = task
            if timeout is not None:
                deadlines[future] = time.monotonic() + timeout
            return True

        try:
            for _ in range(min(jobs, len(queue))):
                submit_next()
            while futures:
                wait_for = None
                if timeout is not None:
                    wait_for = max(0.0, min(deadlines.values())
                                   - time.monotonic())
                done, _ = wait(set(futures), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    deadlines.pop(future, None)
                    exc = future.exception()
                    if isinstance(exc, _TRANSIENT):
                        transient.append(task)
                    elif exc is not None:
                        # Deterministic in-task failure: retrying (or a
                        # serial re-run) can only reproduce it more slowly.
                        fatal = exc
                        break
                    else:
                        finish(task, pickle.loads(
                            zlib.decompress(future.result())))
                    submit_next()
                if fatal is not None:
                    break
                if timeout is not None:
                    now = time.monotonic()
                    expired = [f for f in futures if now >= deadlines[f]]
                    if expired:
                        # A hung worker cannot be interrupted; abandon the
                        # whole pool and restart the innocents next wave.
                        hung = True
                        for future in expired:
                            task = futures.pop(future)
                            deadlines.pop(future, None)
                            future.cancel()
                            timed_out.append(task)
                            report.timeouts += 1
                        carryover.extend(futures.values())
                        break
        except _TRANSIENT + (OSError,) as exc:
            print(f"repro: parallel execution failed ({exc!r}); "
                  f"falling back to serial", file=sys.stderr)
            serial_fallback.extend(t for t in queue
                                   if t not in results
                                   and t not in transient
                                   and t not in timed_out)
            transient = []
            carryover = []
        finally:
            shutdown = getattr(pool, "shutdown", None)
            if shutdown is not None:
                if hung or fatal is not None:
                    # Never join a pool holding a hung worker — and kill
                    # the workers outright, or the interpreter's exit
                    # handler would join (i.e. hang on) them later.
                    shutdown(wait=False, cancel_futures=True)
                    for proc in list((getattr(pool, "_processes", None)
                                      or {}).values()):
                        proc.terminate()
                else:
                    shutdown(wait=True, cancel_futures=True)
        if fatal is not None:
            raise fatal

        queue = list(carryover)
        for task in transient:
            attempts[task] = attempts.get(task, 0) + 1
            if attempts[task] > retries:
                serial_fallback.append(task)
            else:
                report.retries += 1
                queue.append(task)
        for task in timed_out:
            attempts[task] = attempts.get(task, 0) + 1
            if attempts[task] > retries:
                report.quarantined.append(task)
                report.failures[task] = \
                    f"timed out after {timeout}s x {attempts[task]} attempts"
                print(f"repro: quarantining {task[0]}/{task[1]} after "
                      f"{attempts[task]} timeout(s)", file=sys.stderr)
                if checkpoint is not None:
                    checkpoint.record_quarantined(
                        GridCheckpoint.digest(task, scale), task,
                        report.failures[task])
            else:
                report.retries += 1
                queue.append(task)
        wave += 1

    if serial_fallback:
        print(f"repro: re-running {len(serial_fallback)} task(s) serially "
              f"after worker failure", file=sys.stderr)
        _run_serial(serial_fallback, scale, use_cache, results, progress,
                    total, checkpoint=checkpoint, report=report)
    return results
