"""Multiprocess fan-out of the (benchmark × technique) simulation grid.

Runs are independent, deterministic, and CPU-bound, so they parallelize
trivially over a :class:`~concurrent.futures.ProcessPoolExecutor`: a
worker re-runs the ordinary serial pipeline for its (benchmark, technique,
config) cell and ships the finished :class:`RunResult` back.  Workers
consult and feed the same on-disk cache as the parent (entries are written
atomically, so concurrent writers are safe), and the parent installs every
returned result into its in-process memo cache — after a parallel prewarm,
the serial figure drivers run entirely on cache hits.

Failures degrade gracefully: a task whose result (or arguments) will not
pickle, a crashed worker, or a broken pool all fall back to running the
affected tasks serially in the parent, so ``--jobs N`` can never produce
less than the serial path would.
"""

from __future__ import annotations

import os
import pickle
import sys
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from ..config import GPUConfig
from ..sim.gpu import RunResult

#: Task: (benchmark abbr, technique, GPUConfig).
Task = tuple


def default_jobs() -> int:
    """A sensible worker count: ``$REPRO_JOBS`` if set, else CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _worker(abbr: str, technique: str, scale: str, config: GPUConfig,
            cache_dir) -> bytes:
    """Top-level (hence picklable) worker body: one grid cell, run through
    the ordinary serial pipeline inside the worker process.

    The result ships back as a zlib-compressed pickle: the dominant
    payload is the final device-memory image (mostly zeros, tens of MB
    raw, ~100 KB compressed), and compressing beats pushing it through
    the result pipe raw by an order of magnitude."""
    from . import runner
    use_cache = cache_dir is not None
    if use_cache:
        runner.configure_cache(cache_dir)
    else:
        runner.configure_cache(enabled=False)
    result = runner.run_one(abbr, technique, scale, config,
                            use_cache=use_cache)
    return zlib.compress(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), 1)


def _run_serial(tasks, scale: str, use_cache: bool, results: dict,
                progress, total: int) -> None:
    from . import runner
    for abbr, technique, config in tasks:
        result = runner.run_one(abbr, technique, scale, config,
                                use_cache=use_cache)
        results[(abbr, technique, config)] = result
        if progress is not None:
            progress(len(results), total, abbr, technique, result)


def run_grid(tasks, scale: str = "paper", jobs: int | None = None,
             use_cache: bool = True, progress=None) -> dict:
    """Fan ``tasks`` — (abbr, technique) pairs or (abbr, technique,
    config) triples — out over ``jobs`` worker processes.

    Returns ``{(abbr, technique, config): RunResult}``.  Results are also
    installed into the in-process memo cache (and, when enabled, written
    to the disk cache by the workers), so subsequent serial calls hit.
    ``progress(done, total, abbr, technique, result)`` fires per finished
    run.  Worker or pickling failures fall back to serial execution.
    """
    from . import runner

    norm: list[Task] = []
    for task in tasks:
        if len(task) == 2:
            abbr, technique = task
            config = runner.experiment_config()
        else:
            abbr, technique, config = task
        norm.append((abbr, technique, config))

    results: dict = {}
    pending: list[Task] = []
    for abbr, technique, config in norm:
        if use_cache and runner.is_cached(abbr, technique, scale, config):
            results[(abbr, technique, config)] = runner.run_one(
                abbr, technique, scale, config)
        else:
            pending.append((abbr, technique, config))
    total = len(norm)

    jobs = jobs if jobs is not None else default_jobs()
    if jobs <= 1 or len(pending) <= 1:
        _run_serial(pending, scale, use_cache, results, progress, total)
        return results

    disk = runner.disk_cache() if use_cache else None
    cache_dir = disk.root if disk is not None else None
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) \
                as pool:
            futures = {}
            for task in pending:
                abbr, technique, config = task
                futures[pool.submit(_worker, abbr, technique, scale,
                                    config, cache_dir)] = task
            failed: list[Task] = []
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    abbr, technique, config = task
                    exc = future.exception()
                    if isinstance(exc, (BrokenProcessPool,
                                        pickle.PicklingError, OSError)):
                        failed.append(task)
                        continue
                    if exc is not None:
                        raise exc
                    result = pickle.loads(zlib.decompress(future.result()))
                    if use_cache:
                        runner._remember(abbr, technique, scale, config,
                                         result)
                    results[task] = result
                    if progress is not None:
                        progress(len(results), total, abbr, technique,
                                 result)
    except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
        print(f"repro: parallel execution failed ({exc!r}); "
              f"falling back to serial", file=sys.stderr)
        failed = [t for t in pending if t not in results]

    if failed:
        print(f"repro: re-running {len(failed)} task(s) serially after "
              f"worker failure", file=sys.stderr)
        _run_serial(failed, scale, use_cache, results, progress, total)
    return results
