"""One-call benchmark running, with per-session memoization.

Every figure in the paper's evaluation is a view over the same set of runs
(29 benchmarks × 4 techniques), so the harness runs each (benchmark,
technique, scale, config) combination once and caches the result for the
duration of the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GPUConfig
from ..core import run_dac
from ..sim.gpu import RunResult, simulate
from ..workloads import get

TECHNIQUES = ("baseline", "cae", "mta", "dac")

_cache: dict[tuple, RunResult] = {}


def experiment_config(num_sms: int = 4) -> GPUConfig:
    """The configuration used by experiments: the paper's per-SM machine
    with a reduced SM count and proportionally scaled L2/DRAM (see
    DESIGN.md; EXPERIMENTS.md records the exact setting used)."""
    return GPUConfig.gtx480().scaled(num_sms)


def _key(abbr: str, technique: str, scale: str, config: GPUConfig):
    return (abbr, technique, scale, config)


def run_one(abbr: str, technique: str = "baseline", scale: str = "paper",
            config: GPUConfig | None = None,
            use_cache: bool = True) -> RunResult:
    """Simulate one benchmark under one technique (memoized)."""
    config = config or experiment_config()
    key = _key(abbr, technique, scale, config)
    if use_cache and key in _cache:
        return _cache[key]
    benchmark = get(abbr)
    launch = benchmark.launch(scale)
    if technique == "dac":
        result = run_dac(launch, config)
    else:
        result = simulate(launch, config.with_technique(technique))
    result.extra["memory_words"] = launch.memory.words
    result.extra["abbr"] = abbr
    if use_cache:
        _cache[key] = result
    return result


def run_benchmark(abbr: str, scale: str = "paper",
                  config: GPUConfig | None = None,
                  techniques=TECHNIQUES) -> dict[str, RunResult]:
    """All requested techniques for one benchmark, with a functional
    cross-check: every technique must produce the identical memory image."""
    results = {t: run_one(abbr, t, scale, config) for t in techniques}
    if "baseline" in results:
        ref = results["baseline"].extra["memory_words"]
        for tech, res in results.items():
            if not np.array_equal(ref, res.extra["memory_words"]):
                raise AssertionError(
                    f"{abbr}: {tech} output differs from baseline")
    return results


def run_suite(abbrs, scale: str = "paper",
              config: GPUConfig | None = None,
              techniques=TECHNIQUES,
              progress=None) -> dict[str, dict[str, RunResult]]:
    out = {}
    for abbr in abbrs:
        out[abbr] = run_benchmark(abbr, scale, config, techniques)
        if progress is not None:
            progress(abbr, out[abbr])
    return out


def clear_cache() -> None:
    _cache.clear()


@dataclass
class Geomean:
    """Running geometric mean."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(max(value, 1e-12))

    @property
    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return float(np.exp(np.mean(np.log(self.values))))
