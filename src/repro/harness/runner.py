"""One-call benchmark running, memoized in-process and (optionally) on disk.

Every figure in the paper's evaluation is a view over the same set of runs
(29 benchmarks × 4 techniques), so the harness runs each (benchmark,
technique, scale, config) combination once and caches the result — in a
process-local dict for the duration of the process, and, when a
:class:`~repro.harness.diskcache.DiskCache` is configured via
:func:`configure_cache`, in a content-addressed on-disk store that makes
warm runs of any figure skip simulation entirely.

All simulation goes through :func:`simulate_launch`, the single picklable
dispatch point shared by the serial path, the multiprocess executor
(:mod:`repro.harness.parallel`), the CLI, and the sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GPUConfig
from ..core import run_dac
from ..sim.gpu import RunResult, simulate
from ..sim.launch import KernelLaunch
from ..workloads import get
from .diskcache import DiskCache, cache_key, default_cache_dir

TECHNIQUES = ("baseline", "cae", "mta", "dac")

_cache: dict[tuple, RunResult] = {}
_disk: DiskCache | None = None


def experiment_config(num_sms: int = 4) -> GPUConfig:
    """The configuration used by experiments: the paper's per-SM machine
    with a reduced SM count and proportionally scaled L2/DRAM (see
    DESIGN.md; EXPERIMENTS.md records the exact setting used)."""
    return GPUConfig.gtx480().scaled(num_sms)


# ---------------------------------------------------------------------------
# Disk-cache configuration (process-wide; workers re-configure themselves).

def configure_cache(cache_dir=None, enabled: bool = True) -> DiskCache | None:
    """Set the process-wide on-disk result store.

    ``cache_dir=None`` uses :func:`default_cache_dir`;
    ``enabled=False`` turns the disk cache off (the in-process memo cache
    is unaffected).  Returns the active cache, if any.
    """
    global _disk
    if not enabled:
        _disk = None
        return None
    _disk = DiskCache(cache_dir if cache_dir is not None
                      else default_cache_dir())
    return _disk


def disk_cache() -> DiskCache | None:
    """The currently configured on-disk store (``None`` when disabled)."""
    return _disk


# ---------------------------------------------------------------------------
# Simulation entry points.

def simulate_launch(launch: KernelLaunch, technique: str,
                    config: GPUConfig, tracer=None) -> RunResult:
    """Simulate one launch under one technique — the single, picklable
    ``run_dac``/``simulate`` dispatch used by every harness path (and the
    seam tests wrap to count simulations)."""
    if technique == "dac":
        result = run_dac(launch, config, tracer=tracer)
    else:
        result = simulate(launch, config.with_technique(technique),
                          tracer=tracer)
    result.extra["memory_words"] = launch.memory.words
    return result


def run_launch(launch: KernelLaunch, technique: str, config: GPUConfig,
               use_cache: bool = True, tracer=None) -> RunResult:
    """Simulate a launch, consulting and feeding the disk cache.  Traced
    runs bypass the disk cache entirely: cached results carry no trace, and
    a traced result must not be stored where untraced readers expect a
    plain one."""
    disk = _disk if (use_cache and tracer is None) else None
    key = None
    if disk is not None:
        key = cache_key(launch, technique, config)
        cached = disk.load(key)
        if cached is not None:
            return cached
    if tracer is not None:
        result = simulate_launch(launch, technique, config, tracer=tracer)
    else:
        # No kwarg on the untraced path: callers (and tests) may wrap
        # ``simulate_launch`` with positional-only shims.
        result = simulate_launch(launch, technique, config)
    if disk is not None:
        disk.store(key, result)
    return result


def _key(abbr: str, technique: str, scale: str, config: GPUConfig):
    return (abbr, technique, scale, config)


def _remember(abbr: str, technique: str, scale: str, config: GPUConfig,
              result: RunResult) -> None:
    """Install an externally produced result (e.g. from a worker process)
    into the in-process memo cache."""
    _cache[_key(abbr, technique, scale, config)] = result


def is_cached(abbr: str, technique: str, scale: str,
              config: GPUConfig) -> bool:
    return _key(abbr, technique, scale, config) in _cache


def run_one(abbr: str, technique: str = "baseline", scale: str = "paper",
            config: GPUConfig | None = None,
            use_cache: bool = True, trace=None) -> RunResult:
    """Simulate one benchmark under one technique (memoized).

    ``trace`` may be ``True`` (build a fresh :class:`~repro.trace.Tracer`)
    or a ready tracer instance.  Traced runs bypass both the memo and disk
    caches and attach the tracer as ``result.extra["tracer"]``.
    """
    config = config or experiment_config()
    tracer = None
    if trace:
        from ..trace import Tracer
        tracer = trace if not isinstance(trace, bool) else Tracer()
    key = _key(abbr, technique, scale, config)
    if tracer is None and use_cache and key in _cache:
        return _cache[key]
    launch = get(abbr).launch(scale)
    result = run_launch(launch, technique, config, use_cache=use_cache,
                        tracer=tracer)
    result.extra["abbr"] = abbr
    if tracer is not None:
        result.extra["tracer"] = tracer
    elif use_cache:
        _cache[key] = result
    return result


def run_benchmark(abbr: str, scale: str = "paper",
                  config: GPUConfig | None = None,
                  techniques=TECHNIQUES) -> dict[str, RunResult]:
    """All requested techniques for one benchmark, with a functional
    cross-check: every technique must produce the identical memory image."""
    results = {t: run_one(abbr, t, scale, config) for t in techniques}
    if "baseline" in results:
        ref = results["baseline"].extra["memory_words"]
        for tech, res in results.items():
            if not np.array_equal(ref, res.extra["memory_words"]):
                raise AssertionError(
                    f"{abbr}: {tech} output differs from baseline")
    return results


def run_suite(abbrs, scale: str = "paper",
              config: GPUConfig | None = None,
              techniques=TECHNIQUES,
              progress=None, jobs: int = 1,
              use_cache: bool = True,
              timeout: float | None = None, retries: int = 1,
              checkpoint=None, retry_quarantined: bool = False,
              service=None) -> dict[str, dict[str, RunResult]]:
    """Run the (benchmark × technique) grid.

    With ``jobs > 1`` the grid is fanned out over worker processes first
    (falling back to serial on worker failure); results land in the memo
    and disk caches, so the per-benchmark assembly below is all hits.
    ``timeout``/``retries``/``checkpoint``/``retry_quarantined`` harden
    the parallel fan-out, and ``service`` routes it through a running
    experiment daemon — see :func:`repro.harness.parallel.run_grid`.
    """
    config = config or experiment_config()
    abbrs = list(abbrs)
    if jobs and jobs > 1:
        from .parallel import run_grid
        run_grid([(abbr, tech, config) for abbr in abbrs
                  for tech in techniques],
                 scale, jobs=jobs, use_cache=use_cache,
                 timeout=timeout, retries=retries, checkpoint=checkpoint,
                 retry_quarantined=retry_quarantined, service=service)
    out = {}
    for abbr in abbrs:
        out[abbr] = run_benchmark(abbr, scale, config, techniques)
        if progress is not None:
            progress(abbr, out[abbr])
    return out


def clear_cache() -> None:
    """Drop the in-process memo cache (the disk cache is untouched; use
    ``disk_cache().clear()`` for that)."""
    _cache.clear()


@dataclass
class Geomean:
    """Running geometric mean."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(max(value, 1e-12))

    @property
    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return float(np.exp(np.mean(np.log(self.values))))
