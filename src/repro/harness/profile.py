"""Post-run profiling: turn a RunResult's raw counters into the derived
metrics an architect actually reads (issue utilization, hit rates, memory
behaviour, DAC pipeline health)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.gpu import RunResult
from ..trace.export import stall_buckets


@dataclass
class Profile:
    """Derived metrics for one simulation run."""

    cycles: int
    warp_instructions: float
    affine_instructions: float
    issue_utilization: float       # fraction of issue slots used
    ipc_thread: float
    l1_hit_rate: float
    l2_hit_rate: float
    dram_row_hit_rate: float
    memory_fraction: float         # memory instructions / all instructions
    divergence_rate: float         # divergent branches / branches
    dac_load_fraction: float       # affine-issued load lines / all lines
    dac_lead_cycles: float         # mean fill-to-dequeue slack
    mta_accuracy: float            # useful / issued prefetches
    stall_breakdown: dict = field(default_factory=dict)
    # per-slot attribution shares (traced runs only; sums to 1.0)

    def report(self) -> str:
        rows = [
            ("cycles", f"{self.cycles:,}"),
            ("warp instructions", f"{self.warp_instructions:,.0f}"),
            ("affine warp instructions",
             f"{self.affine_instructions:,.0f}"),
            ("issue utilization", f"{self.issue_utilization:.1%}"),
            ("thread IPC", f"{self.ipc_thread:.2f}"),
            ("L1 hit rate", f"{self.l1_hit_rate:.1%}"),
            ("L2 hit rate", f"{self.l2_hit_rate:.1%}"),
            ("DRAM row-buffer hit rate", f"{self.dram_row_hit_rate:.1%}"),
            ("memory instruction share", f"{self.memory_fraction:.1%}"),
            ("divergent branch share", f"{self.divergence_rate:.1%}"),
        ]
        if self.dac_load_fraction:
            rows += [
                ("loads issued by affine warp",
                 f"{self.dac_load_fraction:.1%}"),
                ("mean prefetch lead", f"{self.dac_lead_cycles:.0f} cyc"),
            ]
        if self.mta_accuracy:
            rows.append(("MTA prefetch accuracy",
                         f"{self.mta_accuracy:.1%}"))
        for reason, share in sorted(self.stall_breakdown.items(),
                                    key=lambda kv: -kv[1]):
            rows.append((f"issue slot: {reason}", f"{share:.1%}"))
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in rows)


def _rate(hits: float, total: float) -> float:
    return hits / total if total else 0.0


def profile(result: RunResult) -> Profile:
    """Derive a :class:`Profile` from a finished run."""
    s = result.stats
    config = result.config
    issue_slots = (result.cycles * config.num_sms * config.num_schedulers
                   / config.issue_interval)
    total_insts = s["warp_instructions"] + s["affine_warp_instructions"]
    deqs = s["dac.deq_loads"]
    all_load_lines = s["dac.affine_load_lines"] + s["gmem_load_lines"]
    prefetches = s["mta.prefetches"]
    buckets = stall_buckets(s)
    slot_total = sum(buckets.values())
    breakdown = {reason: cyc / slot_total
                 for reason, cyc in buckets.items()} if slot_total else {}
    return Profile(
        cycles=result.cycles,
        warp_instructions=s["warp_instructions"],
        affine_instructions=s["affine_warp_instructions"],
        issue_utilization=_rate(total_insts, issue_slots),
        ipc_thread=result.ipc,
        l1_hit_rate=_rate(s["l1.hits"], s["l1.accesses"]),
        l2_hit_rate=_rate(s["l2.hits"], s["l2.accesses"]),
        dram_row_hit_rate=_rate(s["dram.row_hits"],
                                s["dram.row_hits"] + s["dram.row_misses"]),
        memory_fraction=_rate(s["inst.memory"], s["warp_instructions"]),
        divergence_rate=_rate(s["divergent_branches"], s["inst.branch"]),
        dac_load_fraction=_rate(s["dac.affine_load_lines"], all_load_lines),
        dac_lead_cycles=_rate(s["dac.lead_cycles"], deqs),
        mta_accuracy=_rate(prefetches - s["mta.useless_prefetches"],
                           prefetches),
        stall_breakdown=breakdown,
    )
