"""Simulator-throughput microbenchmarks (``python -m repro perf``).

The perf harness runs a fixed (workload × technique) matrix, measures
wall-clock and simulated-cycles-per-second, and — crucially — asserts that
every run's :class:`~repro.stats.Stats` is bit-identical to the committed
golden under ``tests/goldens/stats``.  Optimizations to the simulation core
are only optimizations if the goldens survive; a golden diff is a timing
model change and fails the run.

``BENCH_baseline.json`` (repo root) records the wall-clock of the core at
the moment the goldens were last regenerated, so the report can show a
speedup trajectory.  Wall-clock comparisons are informational — only the
Stats identity gate can fail the run (runner speed is not reproducible,
simulated hardware is).

Results land in ``BENCH_<n>.json`` at the repo root; one file per PR that
touches the core keeps the perf trajectory reviewable.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from ..config import GPUConfig
from ..core import run_dac
from ..sim.gpu import RunResult, simulate
from ..workloads import get
from .report import ascii_table
from .runner import experiment_config

#: Bit-identity regression matrix: small, fast cells covering every
#: technique and a spread of control/memory structure (branchy BP, strided
#: SG/ST, scatter HI, irregular BFS).  Used by ``--quick`` and by
#: ``tests/test_golden_stats.py``.
GOLDEN_MATRIX = tuple(
    (abbr, technique, "tiny")
    for abbr in ("CP", "BP", "SG", "ST", "HI", "BFS")
    for technique in ("baseline", "cae", "mta", "dac")
)

#: Throughput matrix: paper-scale runs long enough for stable wall-clock.
BENCH_MATRIX = tuple(
    (abbr, technique, "paper")
    for abbr in ("CP", "SG", "HI")
    for technique in ("baseline", "cae", "mta", "dac")
)

#: One traced and one fault-injected golden pin the observability paths.
TRACED_GOLDEN = ("BP", "dac", "tiny")
FAULT_GOLDEN = ("SG", "dac", "tiny")

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
GOLDEN_DIR = os.path.join(_ROOT, "tests", "goldens", "stats")
BASELINE_PATH = os.path.join(_ROOT, "BENCH_baseline.json")


def golden_name(abbr: str, technique: str, scale: str) -> str:
    return f"{abbr}_{technique}_{scale}"


def load_golden(name: str) -> dict | None:
    path = os.path.join(GOLDEN_DIR, name + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def load_reference() -> dict:
    """The committed pre-optimization wall-clock reference (may be absent
    on a fresh checkout with regenerated goldens)."""
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH) as handle:
        return json.load(handle).get("matrix", {})


def run_cell(abbr: str, technique: str, scale: str,
             config: GPUConfig | None = None, trace: bool = False,
             faults=None, checkers=None) -> RunResult:
    """One uncached simulation of a matrix cell (the perf harness never
    consults the result caches — it exists to time real simulation)."""
    config = config or experiment_config()
    launch = get(abbr).launch(scale)
    tracer = None
    if trace:
        from ..trace import Tracer
        tracer = Tracer()
    if technique == "dac":
        return run_dac(launch, config, tracer=tracer, faults=faults,
                       checkers=checkers)
    return simulate(launch, config.with_technique(technique),
                    tracer=tracer, faults=faults, checkers=checkers)


def diff_stats(got: dict, want: dict) -> list[str]:
    """Human-readable counter mismatches (empty = bit-identical)."""
    lines = []
    for key in sorted(set(got) | set(want)):
        a, b = got.get(key), want.get(key)
        if a != b:
            lines.append(f"{key}: got {a!r}, golden {b!r}")
    return lines


def bench_matrix(quick: bool = False, reps: int = 2,
                 config: GPUConfig | None = None,
                 progress=None) -> dict:
    """Run the matrix; returns the ``BENCH_*.json`` payload.

    Every cell is simulated ``reps`` times (best-of wall-clock) and its
    final Stats compared against the committed golden.  ``quick`` restricts
    the matrix to the tiny-scale golden cells (the CI smoke matrix).
    """
    config = config or experiment_config()
    cells = GOLDEN_MATRIX if quick else GOLDEN_MATRIX + BENCH_MATRIX
    reference = load_reference()
    out: dict = {"schema": "repro-bench/1", "quick": bool(quick),
                 "reps": int(reps), "cells": {}, "mismatches": {}}
    speedups = []
    for i, (abbr, technique, scale) in enumerate(cells):
        name = golden_name(abbr, technique, scale)
        best = None
        result = None
        for _ in range(max(1, reps)):
            t0 = time.perf_counter()
            result = run_cell(abbr, technique, scale, config)
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        golden = load_golden(name)
        mismatch = None
        if golden is None:
            mismatch = ["no committed golden (run tests/goldens/generate.py)"]
        else:
            diff = diff_stats(result.stats.as_dict(), golden)
            if diff:
                mismatch = diff
        ref = reference.get(name, {}).get("wall_seconds")
        speedup = (ref / best) if ref else None
        if speedup is not None:
            speedups.append(speedup)
        out["cells"][name] = {
            "cycles": result.cycles,
            "wall_seconds": best,
            "sim_cycles_per_second": result.cycles / max(best, 1e-9),
            "ref_wall_seconds": ref,
            "speedup_vs_reference": speedup,
            "stats_identical": mismatch is None,
        }
        if mismatch is not None:
            out["mismatches"][name] = mismatch
        if progress is not None:
            progress(i + 1, len(cells), name, out["cells"][name])
    out["geomean_speedup_vs_reference"] = (
        float(np.exp(np.mean(np.log(speedups)))) if speedups else None)
    out["ok"] = not out["mismatches"]
    return out


def bench_report(payload: dict) -> str:
    rows = []
    for name, cell in payload["cells"].items():
        speedup = cell["speedup_vs_reference"]
        rows.append([
            name,
            cell["cycles"],
            f"{cell['wall_seconds']:.3f}",
            f"{cell['sim_cycles_per_second']:,.0f}",
            f"{cell['ref_wall_seconds']:.3f}" if cell["ref_wall_seconds"]
            else "-",
            f"{speedup:.2f}x" if speedup else "-",
            "ok" if cell["stats_identical"] else "MISMATCH",
        ])
    table = ascii_table(
        ["cell", "cycles", "wall (s)", "sim cyc/s", "ref (s)", "speedup",
         "stats"],
        rows, "simulator throughput")
    lines = [table]
    geomean = payload["geomean_speedup_vs_reference"]
    if geomean is not None:
        lines.append(f"\ngeomean speedup vs reference core: {geomean:.2f}x")
    for name, diff in payload["mismatches"].items():
        lines.append(f"\nSTATS MISMATCH {name}:")
        lines.extend(f"  {line}" for line in diff[:20])
        if len(diff) > 20:
            lines.append(f"  ... {len(diff) - 20} more")
    return "\n".join(lines)


def write_bench_json(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def main_perf(args) -> int:
    """Driver for ``python -m repro perf`` (wired up in cli.py)."""
    payload = bench_matrix(
        quick=args.quick, reps=args.reps,
        progress=lambda done, total, name, cell: print(
            f"  [{done}/{total}] {name}: {cell['wall_seconds']:.3f}s "
            f"({cell['sim_cycles_per_second']:,.0f} cyc/s)"
            + ("" if cell["stats_identical"] else "  STATS MISMATCH"),
            file=sys.stderr))
    print(bench_report(payload))
    out = args.out or os.path.join(_ROOT, "BENCH_5.json")
    write_bench_json(payload, out)
    print(f"\nbench results written to {out}")
    if not payload["ok"]:
        print("FAIL: Stats diverged from the committed goldens "
              "(timing semantics changed)", file=sys.stderr)
        return 1
    return 0
