"""Simulator-throughput microbenchmarks (``python -m repro perf``).

The perf harness runs a fixed (workload × technique) matrix, measures
wall-clock and simulated-cycles-per-second, and — crucially — asserts that
every run's :class:`~repro.stats.Stats` is bit-identical to the committed
golden under ``tests/goldens/stats``.  Optimizations to the simulation core
are only optimizations if the goldens survive; a golden diff is a timing
model change and fails the run.

Wall-clock is treated statistically, not as a point estimate: every cell
is simulated ``reps`` times, each sample is recorded, and the report
shows the mean with a 95% confidence interval plus a Welch t-test
verdict (``win`` / ``regression`` / ``inconclusive``) against the sample
distribution committed in ``BENCH_baseline.json``
(:mod:`repro.harness.perfstats`).  Verdicts are informational — only the
Stats identity gate can fail the run (runner speed is not reproducible,
simulated hardware is) — but a ``regression`` verdict is surfaced loudly
so CI can warn on it.

Results land in ``BENCH_<n>.json`` at the repo root (the index is derived
from the files already there, so each PR's run names itself), and every
run appends one line to the ``BENCH_history.jsonl`` time series
(``repro perf --history`` summarizes it).
"""

from __future__ import annotations

import json
import os
import re
import sys
import time

import numpy as np

from ..config import GPUConfig
from ..core import run_dac
from ..sim.gpu import RunResult, simulate
from ..workloads import get
from . import perfstats
from .report import ascii_table
from .runner import experiment_config

#: Bit-identity regression matrix: small, fast cells covering every
#: technique and a spread of control/memory structure (branchy BP, strided
#: SG/ST, scatter HI, irregular BFS).  Used by ``--quick`` and by
#: ``tests/test_golden_stats.py``.
GOLDEN_MATRIX = tuple(
    (abbr, technique, "tiny")
    for abbr in ("CP", "BP", "SG", "ST", "HI", "BFS")
    for technique in ("baseline", "cae", "mta", "dac")
)

#: Throughput matrix: paper-scale runs long enough for stable wall-clock.
BENCH_MATRIX = tuple(
    (abbr, technique, "paper")
    for abbr in ("CP", "SG", "HI")
    for technique in ("baseline", "cae", "mta", "dac")
)

#: One traced and one fault-injected golden pin the observability paths.
TRACED_GOLDEN = ("BP", "dac", "tiny")
FAULT_GOLDEN = ("SG", "dac", "tiny")

#: Default timing repetitions per cell — three is the floor for a
#: meaningful dispersion estimate (CI and t-test both need ddof=1).
DEFAULT_REPS = 3

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
GOLDEN_DIR = os.path.join(_ROOT, "tests", "goldens", "stats")
BASELINE_PATH = os.path.join(_ROOT, "BENCH_baseline.json")
HISTORY_PATH = os.path.join(_ROOT, "BENCH_history.jsonl")

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def golden_name(abbr: str, technique: str, scale: str) -> str:
    return f"{abbr}_{technique}_{scale}"


def load_golden(name: str) -> dict | None:
    path = os.path.join(GOLDEN_DIR, name + ".json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def next_bench_index(root: str | None = None) -> int:
    """The next free ``BENCH_<n>.json`` index at the repo root.

    Derived from the files already committed (``BENCH_5.json`` present
    -> the next run writes ``BENCH_6.json``) so no PR ever has to edit a
    hardcoded index.  ``BENCH_baseline.json``, ``BENCH_history.jsonl``,
    and CI scratch files like ``BENCH_ci_smoke.json`` don't match the
    ``BENCH_<digits>.json`` shape and are ignored.
    """
    root = root or _ROOT
    indices = [int(m.group(1)) for name in os.listdir(root)
               if (m := _BENCH_NAME.match(name))]
    return max(indices, default=0) + 1


def default_bench_path(root: str | None = None) -> str:
    root = root or _ROOT
    return os.path.join(root, f"BENCH_{next_bench_index(root)}.json")


def load_reference(path: str | None = None) -> dict | None:
    """The committed pre-optimization wall-clock reference.

    Returns ``None`` when the baseline file is absent (fresh checkout
    with regenerated goldens) so callers can say so explicitly instead
    of silently rendering empty columns.  Entries are normalized to
    always carry a ``samples`` list: old-format baselines recorded a
    single ``wall_seconds`` number, which becomes a one-sample
    distribution (mean still works; the t-test will report itself not
    computable rather than fake a verdict).
    """
    path = path or BASELINE_PATH
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        matrix = json.load(handle).get("matrix", {})
    reference = {}
    for name, entry in matrix.items():
        samples = entry.get("samples")
        if not samples:
            wall = entry.get("wall_seconds")
            samples = [wall] if wall is not None else []
        reference[name] = {
            "samples": [float(s) for s in samples],
            "wall_seconds": (perfstats.mean(samples)
                             if samples else None),
            "cycles": entry.get("cycles"),
        }
    return reference


def run_cell(abbr: str, technique: str, scale: str,
             config: GPUConfig | None = None, trace: bool = False,
             faults=None, checkers=None) -> RunResult:
    """One uncached simulation of a matrix cell (the perf harness never
    consults the result caches — it exists to time real simulation)."""
    config = config or experiment_config()
    launch = get(abbr).launch(scale)
    tracer = None
    if trace:
        from ..trace import Tracer
        tracer = Tracer()
    if technique == "dac":
        return run_dac(launch, config, tracer=tracer, faults=faults,
                       checkers=checkers)
    return simulate(launch, config.with_technique(technique),
                    tracer=tracer, faults=faults, checkers=checkers)


def diff_stats(got: dict, want: dict) -> list[str]:
    """Human-readable counter mismatches (empty = bit-identical)."""
    lines = []
    for key in sorted(set(got) | set(want)):
        a, b = got.get(key), want.get(key)
        if a != b:
            lines.append(f"{key}: got {a!r}, golden {b!r}")
    return lines


def time_cell(abbr: str, technique: str, scale: str,
              config: GPUConfig | None = None,
              reps: int = DEFAULT_REPS) -> tuple[list[float], RunResult]:
    """Simulate one cell ``reps`` times; every wall-clock sample is kept
    (the old harness discarded all but the best, which is how the gate
    ended up comparing noise floors instead of distributions)."""
    samples = []
    result = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        result = run_cell(abbr, technique, scale, config)
        samples.append(time.perf_counter() - t0)
    assert result is not None
    return samples, result


def bench_matrix(quick: bool = False, reps: int = DEFAULT_REPS,
                 config: GPUConfig | None = None,
                 progress=None, alpha: float = 0.05,
                 datapath: str = "scalar",
                 issue_engine: str = "walk") -> dict:
    """Run the matrix; returns the ``BENCH_*.json`` payload.

    Every cell is simulated ``reps`` times; all samples are recorded and
    summarized (mean, stddev, 95% CI), the final Stats is compared
    against the committed golden, and the wall-clock distribution is
    Welch-t-tested against the reference distribution from
    ``BENCH_baseline.json`` to produce a ``win`` / ``regression`` /
    ``inconclusive`` verdict.  ``quick`` restricts the matrix to the
    tiny-scale golden cells (the CI smoke matrix).  ``datapath`` selects
    the warp datapath and ``issue_engine`` the timing loop; the goldens
    are independent of both (bit-identity across the knobs is itself a
    gate), so any setting must reproduce them exactly.
    """
    config = (config or experiment_config()).with_datapath(datapath) \
        .with_issue_engine(issue_engine)
    cells = GOLDEN_MATRIX if quick else GOLDEN_MATRIX + BENCH_MATRIX
    reference = load_reference()
    out: dict = {"schema": "repro-bench/2", "quick": bool(quick),
                 "reps": int(max(1, reps)), "alpha": alpha,
                 "datapath": config.datapath,
                 "issue_engine": config.issue_engine,
                 "reference_available": reference is not None,
                 "cells": {}, "mismatches": {}}
    speedups = []
    verdict_tally = dict.fromkeys(perfstats.VERDICTS, 0)
    for i, (abbr, technique, scale) in enumerate(cells):
        name = golden_name(abbr, technique, scale)
        samples, result = time_cell(abbr, technique, scale, config,
                                    reps=reps)
        summary = perfstats.summarize(samples, alpha=alpha)
        golden = load_golden(name)
        mismatch = None
        if golden is None:
            mismatch = ["no committed golden (run tests/goldens/generate.py)"]
        else:
            diff = diff_stats(result.stats.as_dict(), golden)
            if diff:
                mismatch = diff
        ref_entry = (reference or {}).get(name)
        ref_samples = ref_entry["samples"] if ref_entry else []
        ref_mean = ref_entry["wall_seconds"] if ref_entry else None
        speedup = (ref_mean / summary.mean) if ref_mean is not None else None
        if speedup is not None:
            speedups.append(speedup)
        cell_verdict = None
        t_test = None
        if ref_samples:
            cell_verdict, test = perfstats.verdict(samples, ref_samples,
                                                   alpha=alpha)
            verdict_tally[cell_verdict] += 1
            t_test = test.as_dict()
        out["cells"][name] = {
            "cycles": result.cycles,
            "datapath": config.datapath,
            "issue_engine": config.issue_engine,
            "samples_wall_seconds": samples,
            "reps": summary.n,
            "wall_seconds": summary.mean,
            "stddev_wall_seconds": summary.stddev,
            "ci95_wall_seconds": (
                [summary.ci_low, summary.ci_high]
                if summary.ci_low is not None else None),
            "min_wall_seconds": summary.minimum,
            "sim_cycles_per_second": result.cycles / max(summary.mean, 1e-9),
            "ref_wall_seconds": ref_mean,
            "ref_samples_wall_seconds": ref_samples or None,
            "speedup_vs_reference": speedup,
            "t_test": t_test,
            "verdict": cell_verdict,
            "stats_identical": mismatch is None,
        }
        if mismatch is not None:
            out["mismatches"][name] = mismatch
        if progress is not None:
            progress(i + 1, len(cells), name, out["cells"][name])
    out["geomean_speedup_vs_reference"] = (
        float(np.exp(np.mean(np.log(speedups)))) if speedups else None)
    out["verdicts"] = verdict_tally
    out["ok"] = not out["mismatches"]
    return out


def _fmt_mean_ci(cell: dict) -> str:
    """``mean±half`` when a CI exists, bare mean otherwise."""
    summary = f"{cell['wall_seconds']:.3f}"
    ci = cell.get("ci95_wall_seconds")
    if ci is not None:
        summary += f"±{(ci[1] - ci[0]) / 2:.3f}"
    return summary


def bench_report(payload: dict) -> str:
    rows = []
    for name, cell in payload["cells"].items():
        speedup = cell["speedup_vs_reference"]
        ref = cell["ref_wall_seconds"]
        rows.append([
            name,
            cell["cycles"],
            _fmt_mean_ci(cell),
            cell.get("reps", "-"),
            f"{cell['sim_cycles_per_second']:,.0f}",
            f"{ref:.3f}" if ref is not None else "-",
            f"{speedup:.2f}x" if speedup is not None else "-",
            cell.get("verdict") or "-",
            "ok" if cell["stats_identical"] else "MISMATCH",
        ])
    table = ascii_table(
        ["cell", "cycles", "wall (s)", "n", "sim cyc/s", "ref (s)",
         "speedup", "verdict", "stats"],
        rows, "simulator throughput")
    lines = [table]
    datapath = payload.get("datapath")
    if datapath and datapath != "scalar":
        lines.append(f"\nwarp datapath: {datapath} (goldens are "
                     "datapath-independent)")
    engine = payload.get("issue_engine")
    if engine and engine != "walk":
        lines.append(f"\nissue engine: {engine} (goldens are "
                     "engine-independent)")
    if not payload.get("reference_available", True):
        lines.append(
            "\nno wall-clock reference; speedups and verdicts unavailable "
            "(BENCH_baseline.json is missing — regenerate it with "
            "tests/goldens/generate.py)")
    geomean = payload["geomean_speedup_vs_reference"]
    if geomean is not None:
        lines.append(f"\ngeomean speedup vs reference core: {geomean:.2f}x")
    tally = payload.get("verdicts")
    if tally is not None and any(tally.values()):
        lines.append(
            "t-test verdicts vs reference (alpha="
            f"{payload.get('alpha', 0.05)}): "
            + ", ".join(f"{k}={tally[k]}" for k in perfstats.VERDICTS))
    for name, diff in payload["mismatches"].items():
        lines.append(f"\nSTATS MISMATCH {name}:")
        lines.extend(f"  {line}" for line in diff[:20])
        if len(diff) > 20:
            lines.append(f"  ... {len(diff) - 20} more")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# cProfile support (``repro perf --profile``)

#: Functions charged to the *timing loop* (scheduler walk / batched issue
#: engine) when splitting a profile; everything under ``SM.issue`` is the
#: datapath (decode dispatch, ALU/memory models, stats).
_TIMING_LOOP_FILES = ("sim/scheduler.py", "sim/issue_engine.py")
_TIMING_LOOP_FUNCS = (("sim/gpu.py", "run"), ("sim/gpu.py", "run_until"),
                      ("sim/sm.py", "cycle"), ("sim/sm.py", "try_issue"),
                      ("sim/sm.py", "classify_warp"))


def profile_cell(abbr: str, technique: str, scale: str,
                 config: GPUConfig | None = None):
    """cProfile one simulation of a cell; returns ``(profiler, split)``
    where ``split`` apportions own-time between the timing loop (the
    scheduler walk or the batched issue engine) and everything else —
    the datapath share is what bounds any engine speedup (Amdahl)."""
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    run_cell(abbr, technique, scale, config)
    profiler.disable()
    import pstats

    total = 0.0
    timing = 0.0
    issue_below = 0.0
    stats = pstats.Stats(profiler)
    for (filename, _line, func), (_cc, _nc, tt, ct, _callers) \
            in stats.stats.items():
        total += tt
        norm = filename.replace(os.sep, "/")
        if norm.endswith(_TIMING_LOOP_FILES):
            timing += tt
        elif any(norm.endswith(f) and func == fn
                 for f, fn in _TIMING_LOOP_FUNCS):
            timing += tt
        if norm.endswith("sim/sm.py") and func == "issue":
            issue_below = max(issue_below, ct)
    split = {
        "total_seconds": total,
        "timing_loop_seconds": timing,
        "timing_loop_share": (timing / total) if total else 0.0,
        "issue_and_below_seconds": issue_below,
        "issue_and_below_share": (issue_below / total) if total else 0.0,
    }
    return profiler, split


def profile_matrix(cells, config: GPUConfig | None = None,
                   top: int = 25, progress=None) -> tuple[str, dict]:
    """cProfile every cell once; returns ``(report_text, splits)`` with a
    top-``top``-cumulative table per cell plus the timing-loop/datapath
    split (the evidence the perf verdicts are judged against)."""
    import io
    import pstats

    sections = []
    splits: dict = {}
    for i, (abbr, technique, scale) in enumerate(cells):
        name = golden_name(abbr, technique, scale)
        profiler, split = profile_cell(abbr, technique, scale, config)
        splits[name] = split
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream) \
            .sort_stats("cumulative").print_stats(top)
        sections.append(
            f"==== {name} ====\n"
            f"timing loop {split['timing_loop_seconds']:.3f}s "
            f"({split['timing_loop_share']:.1%} of "
            f"{split['total_seconds']:.3f}s own-time) | "
            f"issue-and-below {split['issue_and_below_seconds']:.3f}s "
            f"cumulative ({split['issue_and_below_share']:.1%})\n\n"
            + stream.getvalue())
        if progress is not None:
            progress(i + 1, len(cells), name, split)
    return "\n".join(sections), splits


def merge_history_from_bench_files(root: str | None = None,
                                   history_path: str | None = None) -> int:
    """Backfill ``BENCH_history.jsonl`` from committed ``BENCH_<n>.json``
    payloads whose history line is missing (runs that predate the series,
    or whose append was lost).  Triggered by ``repro perf --history`` when
    the series has fewer entries than there are bench files; synthesized
    lines are stamped with the payload file's mtime and marked
    ``backfilled``.  Returns the number of lines added."""
    root = root or _ROOT
    history_path = history_path or HISTORY_PATH
    entries = perfstats.load_history(history_path)
    bench_files = sorted(
        (int(m.group(1)), name) for name in os.listdir(root)
        if (m := _BENCH_NAME.match(name)))
    if len(entries) >= len(bench_files):
        return 0
    known = {entry.get("bench_file") for entry in entries}
    merged = 0
    for _idx, name in bench_files:
        if name in known:
            continue
        path = os.path.join(root, name)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "cells" not in payload:
            continue
        entry = perfstats.history_entry(payload, root, bench_file=name,
                                        now=os.path.getmtime(path))
        entry["backfilled"] = True
        # The payload predates the series: the commit that produced it is
        # unknown, and stamping the *current* SHA would be a lie.
        entry["git"] = None
        perfstats.append_history(history_path, entry)
        merged += 1
    return merged


def write_bench_json(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _github_step_summary(payload: dict, out: str) -> None:
    """Surface the verdicts in the GitHub Actions step summary, if any."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    tally = payload.get("verdicts") or {}
    lines = [
        "### perf gate",
        "",
        f"- Stats bit-identity: {'**ok**' if payload['ok'] else '**FAIL**'}",
        f"- t-test verdicts: win={tally.get('win', 0)}, "
        f"regression={tally.get('regression', 0)}, "
        f"inconclusive={tally.get('inconclusive', 0)}",
    ]
    geomean = payload.get("geomean_speedup_vs_reference")
    if geomean is not None:
        lines.append(f"- geomean speedup vs reference: {geomean:.2f}x")
    regressions = [name for name, cell in payload["cells"].items()
                   if cell.get("verdict") == "regression"]
    if regressions:
        lines.append("- regressed cells: " + ", ".join(sorted(regressions)))
    lines.append(f"- results: `{os.path.basename(out)}`, history: "
                 "`BENCH_history.jsonl`")
    try:
        with open(path, "a") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError:
        pass


def main_perf(args) -> int:
    """Driver for ``python -m repro perf`` (wired up in cli.py)."""
    if getattr(args, "history", False):
        merged = merge_history_from_bench_files()
        if merged:
            print(f"backfilled {merged} committed BENCH_<n>.json run(s) "
                  "into BENCH_history.jsonl", file=sys.stderr)
        print(perfstats.history_report(perfstats.load_history(HISTORY_PATH)))
        return 0
    datapath = getattr(args, "datapath", "scalar")
    issue_engine = getattr(args, "issue_engine", "walk")
    payload = bench_matrix(
        quick=args.quick, reps=args.reps,
        datapath=datapath, issue_engine=issue_engine,
        progress=lambda done, total, name, cell: print(
            f"  [{done}/{total}] {name}: {_fmt_mean_ci(cell)}s "
            f"({cell['sim_cycles_per_second']:,.0f} cyc/s)"
            + (f"  [{cell['verdict']}]" if cell["verdict"] else "")
            + ("" if cell["stats_identical"] else "  STATS MISMATCH"),
            file=sys.stderr))
    print(bench_report(payload))
    out = args.out or default_bench_path()
    if getattr(args, "profile", False):
        cells = GOLDEN_MATRIX if args.quick else GOLDEN_MATRIX + BENCH_MATRIX
        config = experiment_config().with_datapath(datapath) \
            .with_issue_engine(issue_engine)
        print("profiling each cell (one extra profiled rep)...",
              file=sys.stderr)
        text, splits = profile_matrix(
            cells, config,
            progress=lambda done, total, name, split: print(
                f"  [{done}/{total}] {name}: timing loop "
                f"{split['timing_loop_share']:.1%} of "
                f"{split['total_seconds']:.3f}s", file=sys.stderr))
        profile_path = os.path.splitext(out)[0] + "_profile.txt"
        with open(profile_path, "w") as handle:
            handle.write(text)
        payload["profile"] = {"report_file": os.path.basename(profile_path),
                              "cells": splits}
        shares = [split["timing_loop_share"] for split in splits.values()]
        print(f"profile report written to {profile_path} "
              f"(timing-loop own-time share: mean "
              f"{sum(shares) / max(1, len(shares)):.1%})")
    write_bench_json(payload, out)
    print(f"\nbench results written to {out}")
    if not getattr(args, "no_history", False):
        entry = perfstats.history_entry(payload, _ROOT,
                                        bench_file=os.path.basename(out))
        perfstats.append_history(HISTORY_PATH, entry)
        print(f"history line appended to {HISTORY_PATH}")
    _github_step_summary(payload, out)
    regressions = sorted(name for name, cell in payload["cells"].items()
                         if cell.get("verdict") == "regression")
    for name in regressions:
        message = (f"statistically significant wall-clock regression in "
                   f"{name} (informational; only Stats identity gates)")
        print(f"WARNING: {message}", file=sys.stderr)
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning title=perf regression::{message}")
    if not payload["ok"]:
        print("FAIL: Stats diverged from the committed goldens "
              "(timing semantics changed)", file=sys.stderr)
        return 1
    return 0
