"""Plain-text rendering of experiment results (tables and bar charts)."""

from __future__ import annotations


def ascii_table(headers: list[str], rows: list[list], title: str = "") -> str:
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    grid = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in grid))
              if grid else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar(value: float, scale: float = 20.0, maximum: float = 2.0) -> str:
    """A tiny horizontal bar for terminal figures."""
    filled = int(round(min(value, maximum) / maximum * scale))
    return "#" * filled
