"""Capped exponential retry backoff with deterministic jitter.

One schedule shared by every retry loop in the harness — the parallel
grid executor's wave restarts and the service client's ``busy`` retries —
so N clients hammering one daemon decorrelate instead of thundering in
lock-step, yet any given (seed, attempt) pair always sleeps the same
amount (reproducible tests, reproducible logs).

The delay for attempt *k* (0-based) is::

    raw    = min(cap, base * 2**k)
    jitter = raw * jitter_frac * U(seed, k)        # U in [0, 1), hashed
    delay  = min(cap, raw + jitter)

``U`` is derived from SHA-256 of ``(seed, k)`` rather than a PRNG: no
global random state, no cross-thread interference, and two clients with
different seeds (e.g. their job digests) spread out deterministically.
"""

from __future__ import annotations

import hashlib

#: Default shape: 0.5s, 1s, 2s, ... capped at 30s, up to +25% jitter.
DEFAULT_BASE = 0.5
DEFAULT_CAP = 30.0
DEFAULT_JITTER = 0.25


def jitter_fraction(seed: str, attempt: int) -> float:
    """Deterministic stand-in for ``random.random()``: a uniform-ish value
    in ``[0, 1)`` fully determined by ``(seed, attempt)``."""
    digest = hashlib.sha256(f"{seed}\x00{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def backoff_delay(attempt: int, *, base: float = DEFAULT_BASE,
                  cap: float = DEFAULT_CAP, jitter: float = DEFAULT_JITTER,
                  seed: str = "") -> float:
    """Seconds to sleep before retry ``attempt`` (0-based).

    ``base <= 0`` disables sleeping entirely (tests), and the returned
    delay never exceeds ``cap`` even after jitter.
    """
    if base <= 0.0:
        return 0.0
    raw = min(cap, base * (2.0 ** max(0, attempt)))
    if jitter > 0.0:
        raw = min(cap, raw * (1.0 + jitter * jitter_fraction(seed, attempt)))
    return raw


def backoff_schedule(attempts: int, *, base: float = DEFAULT_BASE,
                     cap: float = DEFAULT_CAP,
                     jitter: float = DEFAULT_JITTER,
                     seed: str = "") -> list[float]:
    """The full delay schedule for ``attempts`` retries."""
    return [backoff_delay(k, base=base, cap=cap, jitter=jitter, seed=seed)
            for k in range(attempts)]
