"""Thin synchronous client for the experiment daemon.

``run_grid`` (and therefore every CLI command, figure driver, and bench)
routes through a running daemon *transparently*: if the service socket
answers a ping, pending cells are submitted over it and the results are
read back out of the daemon's atomic blob store (client and daemon share
a filesystem — that is what a unix socket means — so multi-megabyte
device-memory images never ride the wire).  If no daemon is up, or one
dies mid-grid, the caller falls back to the local pool; the daemon is an
accelerator, never a dependency.

Backpressure is cooperative: a ``busy`` reply from the daemon's bounded
queue is retried on the shared capped-exponential schedule with
deterministic jitter (:mod:`repro.harness.backoff`), seeded by the job
digest so concurrent clients spread out instead of thundering back in
step.
"""

from __future__ import annotations

import os
import pickle
import socket
import time
import zlib
from pathlib import Path

from ..sim.gpu import RunResult, SimulationHang
from .backoff import backoff_delay
from .diskcache import default_cache_dir

SOCKET_ENV = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> Path:
    """``$REPRO_SERVICE_SOCKET`` or ``service.sock`` next to the default
    disk cache (the daemon's default listen address)."""
    env = os.environ.get(SOCKET_ENV)
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service.sock"


class ServiceUnavailable(ConnectionError):
    """No daemon at the socket, or it went away mid-conversation."""


class ServiceBusy(RuntimeError):
    """The daemon's bounded queue stayed full through every retry."""


class RemoteTaskError(RuntimeError):
    """A deterministic in-task exception, reported by the daemon.

    Mirrors the local pool's contract: deterministic failures propagate
    instead of being retried.  When the remote failure was a
    :class:`SimulationHang`, the structured report rides along as
    ``hang`` (rebuilt via its JSON round-trip)."""

    def __init__(self, kind: str, message: str,
                 hang: SimulationHang | None = None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.hang = hang


class ServiceClient:
    """Blocking NDJSON client over a unix socket."""

    def __init__(self, socket_path=None, timeout: float = 300.0):
        self.socket_path = Path(socket_path) if socket_path is not None \
            else default_socket_path()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(self.socket_path))
        except OSError as exc:
            self._sock.close()
            raise ServiceUnavailable(
                f"no daemon at {self.socket_path}: {exc}") from None
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        from ..service.protocol import read_message, write_message
        try:
            write_message(self._file, payload)
            response = read_message(self._file)
        except (OSError, ValueError) as exc:
            raise ServiceUnavailable(f"daemon went away: {exc}") from None
        if response is None:
            raise ServiceUnavailable("daemon closed the connection")
        return response

    def ping(self) -> dict:
        response = self.request({"op": "ping"})
        if not response.get("ok") or response.get("op") != "pong":
            raise ServiceUnavailable(f"bad ping response: {response}")
        return response

    def status(self) -> dict:
        return self.request({"op": "status"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def submit(self, tasks, scale: str) -> list[dict]:
        """Submit ``(abbr, technique, config)`` tasks; returns the
        per-job replies (``digest`` + ``state``, possibly ``busy``)."""
        from ..service.protocol import task_to_wire
        response = self.request(
            {"op": "submit",
             "jobs": [task_to_wire(task, scale) for task in tasks]})
        if not response.get("ok"):
            raise ServiceUnavailable(f"submit rejected: {response}")
        return response["jobs"]

    def wait(self, digest: str, timeout: float = 30.0) -> dict:
        return self.request({"op": "wait", "digest": digest,
                             "timeout": timeout})

    def load_result(self, response: dict) -> RunResult:
        """Materialize a ``done`` wait-reply: read the daemon's atomic
        blob (shared filesystem), falling back to the inline JSON form
        if the daemon sent one."""
        path = response.get("result_path")
        if path:
            try:
                blob = Path(path).read_bytes()
                result = pickle.loads(zlib.decompress(blob))
                if isinstance(result, RunResult):
                    return result
            except (OSError, pickle.PickleError, zlib.error):
                pass
        inline = response.get("result")
        if inline is not None:
            from .diskcache import result_from_json_dict
            return result_from_json_dict(inline)
        raise ServiceUnavailable(
            f"done job {response.get('digest')} has no readable result")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- grid-level convenience --------------------------------------------

    def run_tasks(self, tasks, scale: str, progress=None,
                  max_busy_retries: int = 8,
                  wait_timeout: float = 30.0) -> tuple[dict, list, dict]:
        """Run a grid through the daemon.

        Returns ``(results, quarantined, failures)`` where ``results``
        maps tasks to :class:`RunResult`; quarantined cells come back as
        partial results, deterministic failures raise
        :class:`RemoteTaskError` (matching the local pool's semantics).
        """
        from ..service.protocol import job_digest
        tasks = list(tasks)
        digests = {job_digest(task, scale): task for task in tasks}
        pending = dict(digests)

        unsubmitted = dict(pending)
        attempt = 0
        while unsubmitted:
            replies = self.submit(list(unsubmitted.values()), scale)
            busy = {}
            for reply in replies:
                digest = reply["digest"]
                if reply["state"] == "busy":
                    busy[digest] = unsubmitted[digest]
            if not busy:
                break
            if attempt >= max_busy_retries:
                raise ServiceBusy(
                    f"daemon stayed busy for {len(busy)} job(s) after "
                    f"{attempt} retries")
            time.sleep(backoff_delay(attempt,
                                     seed=min(busy) if busy else ""))
            attempt += 1
            unsubmitted = busy

        results: dict = {}
        quarantined: list = []
        failures: dict = {}
        while pending:
            for digest in list(pending):
                reply = self.wait(digest, timeout=wait_timeout)
                state = reply.get("state")
                if state == "done":
                    task = pending.pop(digest)
                    results[task] = self.load_result(reply)
                    if progress is not None:
                        progress(task, results[task])
                elif state == "quarantined":
                    task = pending.pop(digest)
                    quarantined.append(task)
                    failures[task] = reply.get("error") or "quarantined"
                elif state == "failed":
                    hang = None
                    if reply.get("hang") is not None:
                        hang = SimulationHang.from_dict(reply["hang"])
                    raise RemoteTaskError(reply.get("kind") or "Error",
                                          reply.get("message") or "",
                                          hang=hang)
                # queued/running: keep waiting
        return results, quarantined, failures


def try_connect(socket_path=None,
                timeout: float = 300.0) -> ServiceClient | None:
    """A pinged client, or ``None`` when no daemon answers (the cheap
    existence check first, so the no-daemon fast path never syscalls
    into ``connect``)."""
    path = Path(socket_path) if socket_path is not None \
        else default_socket_path()
    if not path.exists():
        return None
    try:
        client = ServiceClient(path, timeout=timeout)
    except ServiceUnavailable:
        return None
    try:
        client.ping()
    except ServiceUnavailable:
        client.close()
        return None
    return client


def run_tasks_via_service(pending, scale, service, *, results, report,
                          checkpoint, progress, total,
                          use_cache: bool) -> list:
    """``run_grid``'s routing hook: try the daemon for ``pending``;
    whatever it could not take (no daemon, daemon died mid-grid) is
    returned for the local pool.  Completed cells land in ``results``,
    the memo cache, the checkpoint, and ``report`` exactly as local
    completions would."""
    from . import runner
    path = None if service in (None, True) else service
    client = try_connect(path)
    if client is None:
        return pending
    try:
        def _progress(task, result):
            if progress is not None:
                progress(len(results), total, task[0], task[1], result)

        with client:
            served, quarantined, failures = client.run_tasks(
                pending, scale, progress=None)
            for task, result in served.items():
                abbr, technique, config = task
                if use_cache:
                    runner._remember(abbr, technique, scale, config,
                                     result)
                results[task] = result
                report.completed += 1
                if checkpoint is not None:
                    from .parallel import GridCheckpoint
                    checkpoint.record_done(
                        GridCheckpoint.digest(task, scale), task, result)
                _progress(task, result)
            for task in quarantined:
                report.quarantined.append(task)
                report.failures[task] = failures[task]
        return []
    except ServiceUnavailable as exc:
        import sys
        print(f"repro: service at {client.socket_path} went away "
              f"({exc}); falling back to the local pool",
              file=sys.stderr)
        done = set(results)
        return [task for task in pending if task not in done]
    except ServiceBusy as exc:
        import sys
        print(f"repro: {exc}; falling back to the local pool",
              file=sys.stderr)
        done = set(results)
        return [task for task in pending if task not in done]
