"""Experiment harness: runners, per-figure drivers, reporting."""

from .experiments import (
    fig6_affine_potential,
    fig6_report,
    fig16_report,
    fig16_speedup,
    fig17_instruction_counts,
    fig18_coverage,
    fig19_affine_loads,
    fig20_mta_coverage,
    fig21_energy,
    fig21_report,
    table2_classification,
)
from .report import ascii_table, bar
from .export import to_csv, to_json
from .profile import Profile, profile
from .sweeps import SweepPoint, SweepResult, override, sweep
from .runner import (
    Geomean,
    TECHNIQUES,
    clear_cache,
    experiment_config,
    run_benchmark,
    run_one,
    run_suite,
)

__all__ = [
    "Geomean", "TECHNIQUES", "ascii_table", "bar", "clear_cache",
    "experiment_config", "fig6_affine_potential", "fig6_report",
    "fig16_report", "fig16_speedup", "fig17_instruction_counts",
    "fig18_coverage", "fig19_affine_loads", "fig20_mta_coverage",
    "fig21_energy", "fig21_report", "override", "profile", "Profile",
    "run_benchmark", "run_one", "to_csv", "to_json",
    "run_suite", "sweep", "SweepPoint", "SweepResult",
    "table2_classification",
]
