"""Experiment harness: runners, caching, parallel fan-out, per-figure
drivers, reporting."""

from .experiments import (
    fig6_affine_potential,
    fig6_report,
    fig16_report,
    fig16_speedup,
    fig17_instruction_counts,
    fig18_coverage,
    fig19_affine_loads,
    fig20_mta_coverage,
    fig21_energy,
    fig21_report,
    table2_classification,
)
from .diskcache import (
    DiskCache,
    cache_key,
    default_cache_dir,
    result_from_json,
    result_from_json_dict,
    result_to_json,
    result_to_json_dict,
)
from .backoff import backoff_delay, backoff_schedule
from .client import (
    RemoteTaskError,
    ServiceBusy,
    ServiceClient,
    ServiceUnavailable,
    default_socket_path,
    try_connect,
)
from .parallel import GridCheckpoint, GridReport, default_jobs, run_grid
from .perfstats import (
    Summary,
    TTestResult,
    summarize,
    t_critical,
    verdict,
    welch_t_test,
)
from .report import ascii_table, bar
from .export import to_csv, to_json
from .profile import Profile, profile
from .sweeps import SweepPoint, SweepResult, override, sweep
from .runner import (
    Geomean,
    TECHNIQUES,
    clear_cache,
    configure_cache,
    disk_cache,
    experiment_config,
    run_benchmark,
    run_launch,
    run_one,
    run_suite,
    simulate_launch,
)

__all__ = [
    "DiskCache", "Geomean", "GridCheckpoint", "GridReport", "Profile",
    "RemoteTaskError", "ServiceBusy", "ServiceClient",
    "ServiceUnavailable", "Summary", "SweepPoint", "SweepResult",
    "TTestResult",
    "TECHNIQUES", "ascii_table", "backoff_delay", "backoff_schedule",
    "bar", "cache_key", "clear_cache",
    "configure_cache", "default_cache_dir", "default_jobs",
    "default_socket_path", "disk_cache", "try_connect",
    "experiment_config", "fig6_affine_potential", "fig6_report",
    "fig16_report", "fig16_speedup", "fig17_instruction_counts",
    "fig18_coverage", "fig19_affine_loads", "fig20_mta_coverage",
    "fig21_energy", "fig21_report", "override", "profile",
    "result_from_json", "result_from_json_dict", "result_to_json",
    "result_to_json_dict", "run_benchmark", "run_grid", "run_launch",
    "run_one", "run_suite", "simulate_launch", "summarize", "sweep",
    "t_critical", "to_csv", "to_json", "table2_classification",
    "verdict", "welch_t_test",
]
