"""Text assembler for the mini PTX-like ISA.

Syntax example (matching the paper's pseudo assembly, Fig. 4b)::

    .kernel example (A, B, dim, num)
        mul r0, %ctaid.x, %ntid.x;
        add tid, %tid.x, r0;
        mul r1, tid, 4;
        add addrA, param.A, r1;
        add addrB, param.B, r1;
        mov i, 0;
    LOOP:
        ld.global tmp, [addrA];
        add r2, tmp, 1;
        st.global [addrB], r2;
        add i, i, 1;
        mul r3, param.num, 4;
        add addrA, r3, addrA;
        add addrB, r3, addrB;
        setp.ne p0, param.dim, i;
        @p0 bra LOOP;
        exit;

Conventions:

* register names matching ``p<digits>`` are predicate registers;
* ``%tid.x`` etc. are special registers; ``param.NAME`` reads a parameter;
* ``[reg]`` / ``[reg+disp]`` is a memory reference;
* ``deq.data`` / ``[deq.addr]`` / ``@deq.pred`` are the decoupled operand
  forms of paper Fig. 7b (normally emitted by the compiler, but accepted in
  source for tests and documentation);
* comments start with ``//`` or ``#``; trailing semicolons are optional.
"""

from __future__ import annotations

import re

from .instructions import CmpOp, Instruction, MemSpace, Opcode
from .kernel import Kernel
from .operands import (
    DeqToken,
    Immediate,
    MemRef,
    Operand,
    Param,
    PredReg,
    Register,
    SpecialReg,
)


class AsmError(ValueError):
    """Raised on malformed assembly, with the offending line."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_PRED_RE = re.compile(r"^p\d+$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_KERNEL_RE = re.compile(
    r"^\.kernel\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)$")
_MEMREF_RE = re.compile(r"^\[([^\]]+)\]$")
_NUM_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+\.?\d*([eE]-?\d+)?)$")

#: dtype suffixes that are recorded but do not affect semantics.
_DTYPE_MODS = {"s32", "u32", "b32", "f32", "f64", "s64", "u64", "lo", "wide"}


def parse_operand(text: str) -> Operand:
    """Parse a single operand token."""
    text = text.strip()
    if not text:
        raise ValueError("empty operand")
    if _NUM_RE.match(text):
        return Immediate(float(int(text, 16)) if "0x" in text.lower()
                         else float(text))
    if text.startswith("%"):
        body = text[1:]
        if "." not in body:
            raise ValueError(f"special register needs a dimension: {text}")
        family, dim = body.rsplit(".", 1)
        return SpecialReg(family, dim)
    if text.startswith("param."):
        return Param(text[len("param."):])
    if text.startswith("deq."):
        return DeqToken(text[len("deq."):], queue_id=-1)
    mem = _MEMREF_RE.match(text)
    if mem:
        inner = mem.group(1).strip()
        disp = 0
        if "+" in inner:
            inner, disp_text = inner.rsplit("+", 1)
            disp = int(disp_text, 0)
        inner = inner.strip()
        if inner.startswith("deq."):
            return DeqToken(inner[len("deq."):], queue_id=-1)
        return MemRef(parse_operand(inner), disp)
    if _PRED_RE.match(text):
        return PredReg(text)
    return Register(text)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are not inside brackets."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p.strip() for p in parts if p.strip()]


def parse_instruction(text: str,
                      source_line: int | None = None) -> Instruction:
    """Parse one instruction (without trailing semicolon).

    ``source_line`` is recorded on the instruction so later diagnostics
    (verifier errors, lint findings) can point back at the source text.
    """
    text = text.strip().rstrip(";").strip()
    guard: PredReg | DeqToken | None = None
    guard_negated = False
    if text.startswith("@"):
        guard_text, _, text = text[1:].partition(" ")
        if guard_text.startswith("!"):
            guard_negated = True
            guard_text = guard_text[1:]
        if guard_text.startswith("deq."):
            guard = DeqToken(guard_text[len("deq."):], queue_id=-1)
        else:
            guard = PredReg(guard_text)
        text = text.strip()

    mnemonic, _, rest = text.partition(" ")
    parts = mnemonic.split(".")
    base = parts[0]
    mods = parts[1:]

    cmp = None
    space = None
    dtype = "s32"
    target = None

    if base == "enq":
        if not mods or mods[0] not in ("data", "addr", "pred"):
            raise ValueError(f"bad enq form: {mnemonic}")
        opcode = {"data": Opcode.ENQ_DATA, "addr": Opcode.ENQ_ADDR,
                  "pred": Opcode.ENQ_PRED}[mods[0]]
        mods = mods[1:]
    else:
        try:
            opcode = Opcode(base)
        except ValueError:
            raise ValueError(f"unknown opcode: {base!r}") from None

    for mod in mods:
        if opcode is Opcode.SETP and mod in CmpOp._value2member_map_:
            cmp = CmpOp(mod)
        elif opcode in (Opcode.LD, Opcode.ST, Opcode.ATOM,
                        Opcode.ENQ_DATA, Opcode.ENQ_ADDR) and \
                mod in MemSpace._value2member_map_:
            space = MemSpace(mod)
        elif opcode is Opcode.BAR and mod == "sync":
            pass
        elif mod in _DTYPE_MODS:
            dtype = mod
        else:
            raise ValueError(f"unknown modifier .{mod} on {base}")

    operand_texts = _split_operands(rest)

    if opcode is Opcode.BRA:
        if len(operand_texts) != 1:
            raise ValueError("bra takes exactly one label")
        target = operand_texts[0]
        operands: list[Operand] = []
    else:
        operands = [parse_operand(t) for t in operand_texts]

    # Partition into destinations and sources by opcode shape.
    from .instructions import _operand_counts
    ndst, nsrc = _operand_counts(opcode)
    if opcode is not Opcode.BRA and len(operands) != ndst + nsrc:
        raise ValueError(
            f"{mnemonic} expects {ndst + nsrc} operands, got {len(operands)}")
    dsts = tuple(operands[:ndst])
    srcs = tuple(operands[ndst:])

    return Instruction(opcode=opcode, dsts=dsts, srcs=srcs, guard=guard,
                       guard_negated=guard_negated, cmp=cmp, space=space,
                       target=target, dtype=dtype, source_line=source_line)


def parse_kernel(text: str, name: str = "kernel",
                 params: tuple[str, ...] | list[str] = ()) -> Kernel:
    """Parse a full kernel.  A ``.kernel name (a, b)`` header line overrides
    the ``name``/``params`` arguments."""
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    params = tuple(params)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].split("#")[0].strip()
        if not line or line in ("{", "}"):
            continue
        header = _KERNEL_RE.match(line)
        if header:
            name = header.group(1)
            params = tuple(p.strip() for p in header.group(2).split(",")
                           if p.strip())
            continue
        label = _LABEL_RE.match(line)
        if label:
            lbl = label.group(1)
            if lbl in labels:
                raise AsmError(f"duplicate label {lbl!r}", line_no, raw)
            labels[lbl] = len(instructions)
            continue
        try:
            instructions.append(parse_instruction(line,
                                                  source_line=line_no))
        except ValueError as exc:
            raise AsmError(str(exc), line_no, raw) from exc

    if not instructions or not instructions[-1].is_exit:
        instructions.append(Instruction(Opcode.EXIT))
    # A label may point one past the end (e.g. DONE: exit appended).
    for lbl, idx in labels.items():
        if idx >= len(instructions):
            raise AsmError(f"label {lbl!r} points past end of kernel", 0, lbl)
    return Kernel(name=name, params=params, instructions=instructions,
                  labels=labels)
