"""Programmatic kernel construction: a small fluent builder over the ISA.

Writing assembly text is fine for fixed kernels; generated or parameterized
kernels are easier to build programmatically::

    b = KernelBuilder("saxpy", params=("A", "B", "O", "a"))
    tid = b.global_tid_x()
    off = b.mul(tid, 4)
    x = b.load(b.add(b.param("A"), off))
    y = b.load(b.add(b.param("B"), off))
    b.store(b.add(b.param("O"), off), b.mad(x, b.param("a"), y))
    kernel = b.build()

Values returned by builder methods are operands; arithmetic helpers
allocate fresh virtual registers.  Structured control flow comes from the
``loop_counter``/``end_loop`` and ``if_then`` helpers, which lower to the
same label/branch form the assembler produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instructions import CmpOp, Instruction, MemSpace, Opcode
from .kernel import Kernel
from .operands import (
    Immediate,
    MemRef,
    Operand,
    Param,
    PredReg,
    Register,
    SpecialReg,
)


def _operand(value) -> Operand:
    if isinstance(value, (int, float)):
        return Immediate(float(value))
    if isinstance(value, (Register, PredReg, Immediate, SpecialReg, Param,
                          MemRef)):
        return value
    raise TypeError(f"cannot use {value!r} as an operand")


@dataclass
class _LoopFrame:
    counter: Register
    bound: Operand
    head_label: str
    pred: PredReg


class KernelBuilder:
    """Accumulates instructions and produces a validated :class:`Kernel`."""

    def __init__(self, name: str, params: tuple[str, ...] | list[str] = ()):
        self.name = name
        self.params = tuple(params)
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._next_reg = 0
        self._next_pred = 0
        self._next_label = 0
        self._loops: list[_LoopFrame] = []

    # ---- fresh names -----------------------------------------------------

    def fresh(self, prefix: str = "v") -> Register:
        self._next_reg += 1
        return Register(f"{prefix}{self._next_reg}")

    def fresh_pred(self) -> PredReg:
        self._next_pred += 1
        return PredReg(f"p{self._next_pred}")

    def _fresh_label(self, prefix: str) -> str:
        self._next_label += 1
        return f"{prefix}_{self._next_label}"

    # ---- emission ---------------------------------------------------------

    def emit(self, inst: Instruction) -> None:
        if inst.source_line is None:
            # Builder kernels have no text source; the 1-based emission
            # index stands in so diagnostics still carry a location.
            inst.source_line = len(self._instructions) + 1
        self._instructions.append(inst)

    def label(self, name: str) -> str:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    # ---- operands ----------------------------------------------------------

    def param(self, name: str) -> Param:
        if name not in self.params:
            raise ValueError(f"undeclared parameter {name!r}")
        return Param(name)

    def tid(self, dim: str = "x") -> SpecialReg:
        return SpecialReg("tid", dim)

    def ntid(self, dim: str = "x") -> SpecialReg:
        return SpecialReg("ntid", dim)

    def ctaid(self, dim: str = "x") -> SpecialReg:
        return SpecialReg("ctaid", dim)

    def global_tid_x(self) -> Register:
        """The canonical ``blockIdx.x*blockDim.x + threadIdx.x``."""
        base = self.mul(self.ctaid("x"), self.ntid("x"))
        return self.add(base, self.tid("x"), name="tid")

    # ---- ALU helpers --------------------------------------------------------

    def _binary(self, opcode: Opcode, a, b, name=None) -> Register:
        dst = Register(name) if name else self.fresh()
        self.emit(Instruction(opcode, dsts=(dst,),
                              srcs=(_operand(a), _operand(b))))
        return dst

    def add(self, a, b, name=None) -> Register:
        return self._binary(Opcode.ADD, a, b, name)

    def sub(self, a, b, name=None) -> Register:
        return self._binary(Opcode.SUB, a, b, name)

    def mul(self, a, b, name=None) -> Register:
        return self._binary(Opcode.MUL, a, b, name)

    def div(self, a, b, name=None) -> Register:
        return self._binary(Opcode.DIV, a, b, name)

    def rem(self, a, b, name=None) -> Register:
        return self._binary(Opcode.REM, a, b, name)

    def min(self, a, b, name=None) -> Register:
        return self._binary(Opcode.MIN, a, b, name)

    def max(self, a, b, name=None) -> Register:
        return self._binary(Opcode.MAX, a, b, name)

    def shl(self, a, b, name=None) -> Register:
        return self._binary(Opcode.SHL, a, b, name)

    def mad(self, a, b, c, name=None) -> Register:
        dst = Register(name) if name else self.fresh()
        self.emit(Instruction(Opcode.MAD, dsts=(dst,),
                              srcs=(_operand(a), _operand(b), _operand(c))))
        return dst

    def mov(self, value, name=None) -> Register:
        dst = Register(name) if name else self.fresh()
        self.emit(Instruction(Opcode.MOV, dsts=(dst,),
                              srcs=(_operand(value),)))
        return dst

    def assign(self, dst: Register, value) -> Register:
        self.emit(Instruction(Opcode.MOV, dsts=(dst,),
                              srcs=(_operand(value),)))
        return dst

    def unary(self, opcode: Opcode, a, name=None) -> Register:
        dst = Register(name) if name else self.fresh()
        self.emit(Instruction(opcode, dsts=(dst,), srcs=(_operand(a),)))
        return dst

    def setp(self, cmp: CmpOp, a, b) -> PredReg:
        dst = self.fresh_pred()
        self.emit(Instruction(Opcode.SETP, dsts=(dst,),
                              srcs=(_operand(a), _operand(b)), cmp=cmp))
        return dst

    # ---- memory --------------------------------------------------------------

    def load(self, address, displacement: int = 0,
             space: MemSpace = MemSpace.GLOBAL, name=None) -> Register:
        dst = Register(name) if name else self.fresh()
        self.emit(Instruction(Opcode.LD, dsts=(dst,),
                              srcs=(MemRef(_operand(address),
                                           displacement),),
                              space=space))
        return dst

    def store(self, address, value, displacement: int = 0,
              space: MemSpace = MemSpace.GLOBAL) -> None:
        self.emit(Instruction(Opcode.ST,
                              dsts=(MemRef(_operand(address),
                                           displacement),),
                              srcs=(_operand(value),), space=space))

    def atomic_add(self, address, value,
                   space: MemSpace = MemSpace.GLOBAL) -> None:
        self.emit(Instruction(Opcode.ATOM,
                              dsts=(MemRef(_operand(address)),),
                              srcs=(_operand(value),), space=space))

    def barrier(self) -> None:
        self.emit(Instruction(Opcode.BAR))

    # ---- structured control flow ----------------------------------------

    def loop_counter(self, bound, name: str = None) -> Register:
        """Open ``for (i = 0; i < bound; i++)``; close with ``end_loop``."""
        counter = self.mov(0, name=name or f"i{len(self._loops)}")
        head = self.label(self._fresh_label("LOOP"))
        self._loops.append(_LoopFrame(counter, _operand(bound), head,
                                      self.fresh_pred()))
        return counter

    def end_loop(self) -> None:
        frame = self._loops.pop()
        self.emit(Instruction(Opcode.ADD, dsts=(frame.counter,),
                              srcs=(frame.counter, Immediate(1.0))))
        self.emit(Instruction(Opcode.SETP, dsts=(frame.pred,),
                              srcs=(frame.counter, frame.bound),
                              cmp=CmpOp.LT))
        self.emit(Instruction(Opcode.BRA, guard=frame.pred,
                              target=frame.head_label))

    def if_then(self, pred: PredReg):
        """Context manager: instructions inside execute under ``@pred``."""
        builder = self

        class _Guard:
            def __enter__(self):
                self.skip = builder._fresh_label("SKIP")
                builder.emit(Instruction(Opcode.BRA, guard=pred,
                                         guard_negated=True,
                                         target=self.skip))
                return builder

            def __exit__(self, *exc):
                builder.label(self.skip)
                return False

        return _Guard()

    # ---- finish ------------------------------------------------------------

    def build(self) -> Kernel:
        instructions = list(self._instructions)
        if not instructions or not instructions[-1].is_exit:
            instructions.append(Instruction(Opcode.EXIT))
        return Kernel(name=self.name, params=self.params,
                      instructions=instructions, labels=dict(self._labels))
