"""Mini PTX-like ISA: operands, instructions, kernels, and an assembler."""

from .assembler import AsmError, parse_instruction, parse_kernel, parse_operand
from .builder import KernelBuilder
from .instructions import (
    AFFINE_CAPABLE_OPS,
    ALU_BINARY,
    ALU_UNARY,
    CAE_CAPABLE_OPS,
    CmpOp,
    Decoded,
    decoded_of,
    ENQ_OPS,
    Instruction,
    MemSpace,
    Opcode,
    SFU_OPS,
    validate,
)
from .kernel import Kernel
from .operands import (
    DIMS,
    DeqToken,
    Immediate,
    MemRef,
    Operand,
    Param,
    PredReg,
    Register,
    SpecialReg,
    is_readonly,
)

__all__ = [
    "AFFINE_CAPABLE_OPS", "ALU_BINARY", "ALU_UNARY", "AsmError",
    "CAE_CAPABLE_OPS", "CmpOp", "DIMS", "Decoded", "DeqToken", "ENQ_OPS",
    "Immediate", "Instruction", "Kernel", "KernelBuilder", "MemRef",
    "MemSpace", "Opcode", "Operand", "Param", "PredReg", "Register",
    "SFU_OPS", "SpecialReg", "decoded_of", "is_readonly",
    "parse_instruction", "parse_kernel", "parse_operand", "validate",
]
