"""Kernel container: an instruction list plus labels and parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instruction, validate
from .operands import Param, Register


@dataclass
class Kernel:
    """A compiled kernel: straight list of instructions with label targets.

    ``labels`` maps a label name to the index of the instruction it precedes.
    The final instruction must be ``exit`` (the assembler appends one if the
    source does not end with it).
    """

    name: str
    params: tuple[str, ...]
    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.instructions or not self.instructions[-1].is_exit:
            raise ValueError(f"kernel {self.name!r} must end with exit")
        for inst in self.instructions:
            validate(inst)
            if inst.is_branch and inst.target not in self.labels:
                raise ValueError(
                    f"branch to undefined label {inst.target!r} in "
                    f"kernel {self.name!r}")
        declared = set(self.params)
        for inst in self.instructions:
            for op in inst.reads():
                if isinstance(op, Param) and op.name not in declared:
                    raise ValueError(
                        f"kernel {self.name!r} reads undeclared parameter "
                        f"{op.name!r}")

    # ---- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def label_at(self, index: int) -> str | None:
        for label, target in self.labels.items():
            if target == index:
                return label
        return None

    def target_index(self, label: str) -> int:
        return self.labels[label]

    def registers(self) -> set[str]:
        """All general-register names referenced by the kernel."""
        regs: set[str] = set()
        for inst in self.instructions:
            for op in inst.reads() + inst.written_regs():
                if isinstance(op, Register):
                    regs.add(op.name)
        return regs

    def static_counts(self) -> dict[str, int]:
        """Static instruction counts by Fig. 6 category."""
        counts = {"arithmetic": 0, "memory": 0, "branch": 0}
        for inst in self.instructions:
            counts[inst.category] += 1
        return counts

    def has_barrier(self) -> bool:
        return any(i.is_barrier for i in self.instructions)

    # ---- printing ------------------------------------------------------

    def source(self) -> str:
        """Round-trippable assembly text."""
        lines = [f".kernel {self.name} ({', '.join(self.params)})"]
        for idx, inst in enumerate(self.instructions):
            label = self.label_at(idx)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.source()
