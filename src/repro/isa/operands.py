"""Operand classes for the mini PTX-like ISA.

The ISA is register based.  An instruction reads *source operands* and writes
*destination operands*.  Sources can be general registers, predicate
registers, immediates, special (thread-geometry) registers, kernel
parameters, or — after the DAC decoupling pass — dequeue tokens that pull
expanded values out of the per-warp hardware queues (paper §4, Fig. 7).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Dimension names used by special registers (threadIdx.x etc.).
DIMS = ("x", "y", "z")

#: The special register families and their CUDA equivalents.
SPECIAL_FAMILIES = {
    "tid": "threadIdx",
    "ntid": "blockDim",
    "ctaid": "blockIdx",
    "nctaid": "gridDim",
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class Register:
    """A general-purpose virtual register, e.g. ``r0`` or ``addrA``."""

    name: str

    def __post_init__(self) -> None:
        if not _IDENT_RE.match(self.name):
            raise ValueError(f"invalid register name: {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PredReg:
    """A predicate (boolean) register, e.g. ``p0``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Immediate:
    """A literal constant.  Stored as float; integral values print as ints."""

    value: float

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class SpecialReg:
    """A read-only thread-geometry register such as ``%tid.x``.

    ``family`` is one of :data:`SPECIAL_FAMILIES`; ``dim`` is ``x``/``y``/``z``.
    """

    family: str
    dim: str

    def __post_init__(self) -> None:
        if self.family not in SPECIAL_FAMILIES:
            raise ValueError(f"unknown special register family: {self.family}")
        if self.dim not in DIMS:
            raise ValueError(f"unknown dimension: {self.dim}")

    def __str__(self) -> str:
        return f"%{self.family}.{self.dim}"


@dataclass(frozen=True)
class Param:
    """A kernel parameter, e.g. ``param.A``.  Parameters are scalar values
    shared by every thread of the grid (pointers are byte addresses)."""

    name: str

    def __str__(self) -> str:
        return f"param.{self.name}"


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``[addr]`` or ``[addr+disp]`` used by ld/st."""

    address: "Operand"
    displacement: int = 0

    def __str__(self) -> str:
        if self.displacement:
            return f"[{self.address}+{self.displacement}]"
        return f"[{self.address}]"


@dataclass(frozen=True)
class DeqToken:
    """A dequeue operand inserted by the decoupling compiler (paper Fig. 7b).

    ``kind`` is ``data`` (global/local load serviced by the AEU), ``addr``
    (store address record from the PWAQ), or ``pred`` (predicate bit vector
    from the PWPQ).  ``queue_id`` pairs the token with the matching enqueue
    instruction in the affine stream.
    """

    kind: str
    queue_id: int

    def __post_init__(self) -> None:
        if self.kind not in ("data", "addr", "pred"):
            raise ValueError(f"bad deq kind: {self.kind}")

    def __str__(self) -> str:
        return f"deq.{self.kind}"


Operand = Register | PredReg | Immediate | SpecialReg | Param | MemRef | DeqToken


def is_readonly(op: Operand) -> bool:
    """Whether the operand reads state that no instruction can write.

    Special registers and parameters are immutable for the whole kernel
    launch, which is what lets the affine warp run ahead of the non-affine
    warps (paper §4, "the affine warp operates on read-only data").
    """
    return isinstance(op, (Immediate, SpecialReg, Param))
