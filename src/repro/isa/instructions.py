"""Instruction definitions for the mini PTX-like ISA."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from .operands import (
    DeqToken,
    MemRef,
    Operand,
    PredReg,
    Register,
)


class Opcode(enum.Enum):
    """All opcodes understood by the simulator.

    The set mirrors the subset of PTX used by the paper's examples (Fig. 4b,
    Fig. 7) plus the additional affine-eligible operations called out in
    §3/§4.4/§4.6 (``mod``, ``min``, ``max``, ``abs``).
    """

    # Data movement / ALU.
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"          # d = a * b + c
    DIV = "div"
    REM = "rem"          # modulo; affine mod-type tuples, paper §4.4
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SELP = "selp"        # d = p ? a : b
    # Transcendental-ish ops (modeled on the SFU pipe, never affine).
    RCP = "rcp"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    # Predicate computation.
    SETP = "setp"
    # Control flow.
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"
    # Memory.
    LD = "ld"
    ST = "st"
    ATOM = "atom"        # atomic add; models histogram-style scatter updates
    # DAC enqueue forms (affine stream only; paper Fig. 7a).
    ENQ_DATA = "enq.data"
    ENQ_ADDR = "enq.addr"
    ENQ_PRED = "enq.pred"


class CmpOp(enum.Enum):
    """Comparison operators for ``setp``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class MemSpace(enum.Enum):
    """Memory spaces.  ``GLOBAL`` and ``LOCAL`` traverse the cache hierarchy
    and are the spaces the AEU prefetches (paper §4.2); ``SHARED`` is on-chip
    scratchpad with fixed latency."""

    GLOBAL = "global"
    LOCAL = "local"
    SHARED = "shared"


#: Simple two-source ALU ops with an affine-tuple evaluation rule.
ALU_BINARY = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.MIN, Opcode.MAX, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR,
}

ALU_UNARY = {Opcode.MOV, Opcode.ABS, Opcode.NEG, Opcode.NOT}

SFU_OPS = {Opcode.RCP, Opcode.SQRT, Opcode.EXP, Opcode.LOG, Opcode.SIN,
           Opcode.COS}

#: Opcodes that affine computation supports at all (paper §3 Eq. 2-3 plus the
#: §4.4/§4.6 extensions).  ``setp`` is affine-eligible as a predicate
#: computation; SFU and atomic ops never are.
AFFINE_CAPABLE_OPS = (
    ALU_BINARY | ALU_UNARY | {Opcode.MAD, Opcode.SELP, Opcode.SETP}
) - {Opcode.DIV}

#: Subset handled by the prior-work CAE baseline (Kim et al. [13]): basic
#: linear ops only — no mod, min/max/abs divergence-folding extensions.
CAE_CAPABLE_OPS = {
    Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MAD,
    Opcode.SHL, Opcode.SHR, Opcode.SETP,
}

ENQ_OPS = {Opcode.ENQ_DATA, Opcode.ENQ_ADDR, Opcode.ENQ_PRED}

_id_counter = itertools.count()


@dataclass
class Instruction:
    """One machine instruction.

    ``guard``/``guard_negated`` implement predicated execution (``@p0`` /
    ``@!p0``).  A guard of a :class:`DeqToken` with kind ``pred`` is the
    decoupled form ``@deq.pred bra`` from paper Fig. 7b.
    """

    opcode: Opcode
    dsts: tuple[Operand, ...] = ()
    srcs: tuple[Operand, ...] = ()
    guard: PredReg | DeqToken | None = None
    guard_negated: bool = False
    cmp: CmpOp | None = None
    space: MemSpace | None = None
    target: str | None = None          # branch target label
    dtype: str = "s32"                 # cosmetic type suffix
    queue_id: int | None = None        # enq: matching deq queue (DAC)
    source_line: int | None = None     # 1-based line in the assembly source
    uid: int = field(default_factory=lambda: next(_id_counter))

    # ---- classification helpers -------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_barrier(self) -> bool:
        return self.opcode is Opcode.BAR

    @property
    def is_exit(self) -> bool:
        return self.opcode is Opcode.EXIT

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.ST, Opcode.ATOM)

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.ST, Opcode.ATOM)

    @property
    def is_enq(self) -> bool:
        return self.opcode in ENQ_OPS

    @property
    def is_sfu(self) -> bool:
        return self.opcode in SFU_OPS

    @property
    def category(self) -> str:
        """Coarse category used by Fig. 6: arithmetic / memory / branch."""
        if self.is_memory:
            return "memory"
        if self.opcode in (Opcode.BRA, Opcode.SETP, Opcode.BAR, Opcode.EXIT):
            return "branch"
        return "arithmetic"

    def mem_ref(self) -> MemRef | None:
        """The memory reference of a load/store, if any."""
        for op in self.srcs + self.dsts:
            if isinstance(op, MemRef):
                return op
        return None

    # ---- dataflow helpers -------------------------------------------

    def reads(self) -> tuple[Operand, ...]:
        """Every operand whose value this instruction consumes, with MemRef
        unwrapped to its address operand."""
        out: list[Operand] = []
        for op in self.srcs:
            if isinstance(op, MemRef):
                out.append(op.address)
            else:
                out.append(op)
        for op in self.dsts:
            if isinstance(op, MemRef):    # store address is a *read*
                out.append(op.address)
        if isinstance(self.guard, PredReg):
            out.append(self.guard)
        return tuple(out)

    def read_regs(self) -> tuple[Register | PredReg, ...]:
        return tuple(op for op in self.reads()
                     if isinstance(op, (Register, PredReg)))

    def written_regs(self) -> tuple[Register | PredReg, ...]:
        return tuple(op for op in self.dsts
                     if isinstance(op, (Register, PredReg)))

    # ---- printing -----------------------------------------------------

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            neg = "!" if self.guard_negated else ""
            parts.append(f"@{neg}{self.guard}")
        op = self.opcode.value
        if self.cmp is not None:
            op += f".{self.cmp.value}"
        if self.space is not None:
            op += f".{self.space.value}"
        parts.append(op)
        operand_strs = [str(o) for o in self.dsts + self.srcs]
        if self.target is not None:
            operand_strs.append(self.target)
        head = " ".join(parts)
        if operand_strs:
            return f"{head} {', '.join(operand_strs)};"
        return f"{head};"

    def __repr__(self) -> str:
        loc = "" if self.source_line is None else f", line={self.source_line}"
        return f"Instruction({str(self)!r}{loc})"

    def clone(self, **changes) -> "Instruction":
        """Copy with a fresh uid (and optional field overrides)."""
        changes.setdefault("uid", next(_id_counter))
        return replace(self, **changes)


class Decoded:
    """Statically decoded issue-path facts for one :class:`Instruction`.

    The timing models consult instruction classification on every dynamic
    issue attempt; deriving it from the operand tuples each time allocates
    and branches in the hottest loop of the simulator.  A ``Decoded`` record
    is computed once per static instruction and carries plain attributes the
    issue path reads directly.  It holds no dynamic state, so one record per
    kernel serves every warp and every SM.
    """

    __slots__ = (
        "inst", "opcode", "scoreboard", "nregs", "stat_key", "counts_alu",
        "is_sfu", "is_exit", "is_barrier", "is_branch", "is_memory",
        "is_load", "is_shared", "is_enq", "needs_lsu", "mem_ref",
        "guard_pred", "guard_negated", "deq_token", "deq_kind", "dst_name",
        "affine_stat_key",
        "vop",                     # compiled vector-datapath ALU micro-op
    )

    def __init__(self, inst: Instruction):
        self.inst = inst
        self.opcode = inst.opcode
        names: list[str] = []
        for op in inst.read_regs() + inst.written_regs():
            if op.name not in names:
                names.append(op.name)
        self.scoreboard = tuple(names)
        self.nregs = len(inst.read_regs()) + len(inst.written_regs())
        category = inst.category
        self.stat_key = "inst." + category
        self.affine_stat_key = "affine_inst." + category
        self.counts_alu = (category == "arithmetic"
                           or inst.opcode is Opcode.SETP)
        self.is_sfu = inst.is_sfu
        self.is_exit = inst.is_exit
        self.is_barrier = inst.is_barrier
        self.is_branch = inst.is_branch
        self.is_memory = inst.is_memory
        self.is_load = inst.is_load
        self.is_shared = inst.space is MemSpace.SHARED
        self.is_enq = inst.is_enq
        self.needs_lsu = self.is_memory and not self.is_shared
        self.mem_ref = inst.mem_ref()
        self.guard_pred = inst.guard if isinstance(inst.guard, PredReg) \
            else None
        self.guard_negated = inst.guard_negated
        token = None
        for op in inst.srcs + inst.dsts:
            if isinstance(op, DeqToken):
                token = op
                break
        if token is None and isinstance(inst.guard, DeqToken):
            token = inst.guard
        self.deq_token = token
        self.deq_kind = token.kind if token is not None else None
        self.dst_name = inst.dsts[0].name \
            if inst.dsts and isinstance(inst.dsts[0], (Register, PredReg)) \
            else None
        # Lazily compiled by the vector datapath (repro.sim.vector); one
        # closure per static instruction, shared by every warp and SM.
        self.vop = None

    def __repr__(self) -> str:
        return f"Decoded({self.inst!r})"

    # Every field is derived from ``inst``, and ``vop`` may hold a closure
    # (unpicklable) — so pickling reduces to the instruction and re-derives.
    # The decode cache travels with kernels into worker processes
    # (harness/parallel.py); workers recompile micro-ops lazily.
    def __getstate__(self):
        return self.inst

    def __setstate__(self, inst) -> None:
        self.__init__(inst)  # type: ignore[misc]


def decoded_of(kernel) -> list[Decoded]:
    """The kernel's decode cache, aligned with ``kernel.instructions``.

    Attached to the kernel object itself (kernels are unhashable dataclass
    instances, so an external ``id()``-keyed map would risk stale hits after
    garbage collection — the same defect the CFG cache had).  The cache is
    invalidated when the instruction list is replaced or resized.
    """
    cached = getattr(kernel, "_decoded", None)
    if cached is not None and cached[0] is kernel.instructions \
            and len(cached[1]) == len(kernel.instructions):
        return cached[1]
    code = [Decoded(inst) for inst in kernel.instructions]
    kernel._decoded = (kernel.instructions, code)
    return code


def _operand_counts(opcode: Opcode) -> tuple[int, int]:
    """(num_dsts, num_srcs) for validation."""
    if opcode in ALU_BINARY:
        return 1, 2
    if opcode in ALU_UNARY or opcode in SFU_OPS:
        return 1, 1
    if opcode is Opcode.MAD:
        return 1, 3
    if opcode is Opcode.SELP:
        return 1, 3
    if opcode is Opcode.SETP:
        return 1, 2
    if opcode is Opcode.LD:
        return 1, 1
    if opcode in (Opcode.ST, Opcode.ATOM):
        return 1, 1     # dst = memref, src = value
    if opcode in ENQ_OPS:
        return 0, 1
    return 0, 0


def validate(inst: Instruction) -> None:
    """Raise ``ValueError`` if the instruction is malformed."""
    ndst, nsrc = _operand_counts(inst.opcode)
    if len(inst.dsts) != ndst or len(inst.srcs) != nsrc:
        raise ValueError(
            f"{inst.opcode.value} expects {ndst} dst / {nsrc} src operands, "
            f"got {len(inst.dsts)} / {len(inst.srcs)}: {inst}")
    if inst.opcode is Opcode.SETP and inst.cmp is None:
        raise ValueError(f"setp requires a comparison modifier: {inst}")
    if inst.opcode is Opcode.BRA and inst.target is None:
        raise ValueError(f"bra requires a target label: {inst}")
    if inst.is_memory and inst.space is None:
        raise ValueError(f"memory op requires a space modifier: {inst}")
    if inst.opcode is Opcode.LD and not isinstance(inst.srcs[0],
                                                   (MemRef, DeqToken)):
        raise ValueError(f"ld source must be a memory reference: {inst}")
    if inst.opcode in (Opcode.ST, Opcode.ATOM) and not isinstance(
            inst.dsts[0], (MemRef, DeqToken)):
        raise ValueError(f"st destination must be a memory reference: {inst}")
