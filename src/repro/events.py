"""A minimal discrete-event core shared by the timing models."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """Time-ordered callback queue.

    Components schedule ``callback(time)`` at absolute cycle times; the GPU's
    main loop interleaves per-cycle SM work with draining events due at the
    current cycle.  A monotonically increasing sequence number makes the
    ordering of same-cycle events deterministic (insertion order).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._seq = itertools.count()

    def schedule(self, time: int, callback: Callable[[int], None]) -> None:
        heapq.heappush(self._heap, (int(time), next(self._seq), callback))

    def run_until(self, time: int) -> None:
        """Fire every event due at or before ``time``."""
        heap = self._heap
        while heap and heap[0][0] <= time:
            due, _, callback = heapq.heappop(heap)
            callback(due)

    def next_time(self) -> int | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)
