"""repro: reproduction of "Decoupled Affine Computation for SIMT GPUs"
(Wang & Lin, ISCA 2017).

Public API highlights:

* :class:`repro.sim.GPUConfig` — the Table 1 machine configuration;
* :func:`repro.sim.simulate` — run a kernel launch on the baseline, CAE,
  or MTA machine;
* :func:`repro.core.run_dac` — decouple a kernel and run it under DAC;
* :func:`repro.compiler.decouple.decouple` — just the compiler pass;
* :mod:`repro.workloads` — the 29 Table 2 benchmarks;
* :mod:`repro.harness` — per-figure experiment drivers.
"""

__version__ = "1.1.0"
